"""Dispatch capture: record one executor pass as a compiled graph.

The simulator analogue of CUDA stream capture
(``cudaStreamBeginCapture``): a :class:`GraphCapture` wraps a
:class:`repro.gpusim.engine.GPU` and shims its dispatch entry points
(``launch``, ``synchronize``, ``record_event``, ``wait_event``) so the
capture pass *executes normally* — nothing is deferred, the warmup
semantics of the pass are unchanged — while every operation is also
recorded as a :class:`repro.graphs.compiled.GraphNode`.

Capture needs a memory-effect oracle: the hazard validator requires each
kernel's abstract read/write region sets, which the engine does not know.
:class:`KernelEffects` supplies them, built either from the net's blob
wiring (:func:`effects_from_net`, via the PR-5 access derivation) or
synthetically from the chain structure of net-less works
(:func:`synthetic_effects`).  A kernel with no known effect makes the
capture unusable (:class:`~repro.errors.GraphCaptureError` at
:meth:`GraphCapture.build` time — never mid-pass, so the eager pass
always completes); executors treat that as a capture miss and stay eager.

Stream and event handles are renumbered densely in first-use order
(default stream -> 0), producing process-portable graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analyze.access import derive_accesses
from repro.errors import GraphCaptureError
from repro.gpusim.engine import GPU
from repro.gpusim.kernel import KernelSpec
from repro.graphs.compiled import CompiledGraph, GraphNode
from repro.kernels.ir import LayerWork

#: Sentinel for a (name, tag) pair that maps to conflicting effects.
_CONFLICT = object()


@dataclass(frozen=True)
class Effect:
    """Memory effect of one kernel plus its provenance labels."""

    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    layer: str = ""
    chain: int = -1


@dataclass
class KernelEffects:
    """Effect oracle: kernel spec -> abstract read/write regions.

    Lookup is by spec ``uid`` first (exact object identity across passes —
    works are lowered once per session, so dispatch re-launches the same
    spec objects), with a ``(name, tag)`` fallback for transformed works
    whose specs are rebuilt per pass (e.g. the fusion prepass).  A
    ``(name, tag)`` pair registered with two different effects is marked
    conflicting and never resolves — soundness over coverage: an
    unresolvable kernel fails capture, it never gets a guessed effect.
    """

    by_uid: dict = field(default_factory=dict)
    by_name_tag: dict = field(default_factory=dict)

    def add(self, spec: KernelSpec, effect: Effect) -> None:
        self.by_uid[spec.uid] = effect
        key = (spec.name, spec.tag)
        prior = self.by_name_tag.get(key)
        if prior is None:
            self.by_name_tag[key] = effect
        elif prior is not _CONFLICT and prior != effect:
            self.by_name_tag[key] = _CONFLICT

    def lookup(self, spec: KernelSpec) -> Optional[Effect]:
        eff = self.by_uid.get(spec.uid)
        if eff is not None:
            return eff
        eff = self.by_name_tag.get((spec.name, spec.tag))
        return None if eff is _CONFLICT else eff


def effects_from_net(net, works: Sequence[LayerWork],
                     transform: Optional[Callable] = None) -> KernelEffects:
    """Derive the effect oracle from the net's blob wiring.

    Reuses the PR-5 per-sample access derivation
    (:func:`repro.analyze.access.derive_accesses`).  ``transform`` is the
    executor's work rewrite (e.g. fusion), applied here so the oracle
    describes the kernels the dispatcher will actually launch.
    """
    if transform is not None:
        works = [transform(w) for w in works]
    effects = KernelEffects()
    for work, wa in zip(works, derive_accesses(net, works)):
        for ci, chain in enumerate(work.parallel_chains):
            for spec, acc in zip(chain, wa.chains[ci]):
                effects.add(spec, Effect(acc.reads, acc.writes,
                                         layer=work.key, chain=ci))
        for spec, acc in zip(work.serial_kernels, wa.serial):
            effects.add(spec, Effect(acc.reads, acc.writes,
                                     layer=work.key, chain=-1))
    return effects


def synthetic_effects(works: Sequence[LayerWork]) -> KernelEffects:
    """Chain-structural effects for works with no backing net.

    Models exactly the dependence structure :mod:`repro.kernels.ir`
    documents: kernels inside one chain are pipelined through private
    temporaries, chains of one layer are independent, and the serial tail
    reads every chain's result.  Layers are chained through
    ``{layer}:in``/``{layer}:out`` regions so a standalone works list
    still exercises inter-layer ordering.
    """
    effects = KernelEffects()
    prev_out = ""
    for work, out_region in zip(works, (f"{w.key}:out" for w in works)):
        in_regions = {prev_out} if prev_out else set()
        chain_outs = set()
        for ci, chain in enumerate(work.parallel_chains):
            chain_out = f"{work.key}[c{ci}]"
            chain_outs.add(chain_out)
            for j, spec in enumerate(chain):
                reads = set(in_regions)
                if j > 0:
                    reads.add(f"{work.key}.c{ci}.t{j - 1}")
                writes = ({f"{work.key}.c{ci}.t{j}"}
                          if j < len(chain) - 1 else {chain_out})
                effects.add(spec, Effect(frozenset(reads),
                                         frozenset(writes),
                                         layer=work.key, chain=ci))
        for j, spec in enumerate(work.serial_kernels):
            reads = set(in_regions) | chain_outs
            if j > 0:
                reads.add(f"{work.key}.s.t{j - 1}")
            writes = ({f"{work.key}.s.t{j}"}
                      if j < len(work.serial_kernels) - 1 else {out_region})
            effects.add(spec, Effect(frozenset(reads), frozenset(writes),
                                     layer=work.key, chain=-1))
        prev_out = out_region
    return effects


def poisoned_effects(works: Sequence[LayerWork]) -> KernelEffects:
    """An intentionally hazardous oracle: every kernel writes one region.

    Test/CI hook (``repro graph --inject-hazard``): any multi-stream
    capture validated against this oracle carries unordered WAW pairs, so
    hazard admission must reject it and the runtime must fall back to
    eager dispatch.
    """
    effects = KernelEffects()
    shared = frozenset({"poison:shared"})
    for work in works:
        for ci, chain in enumerate(work.parallel_chains):
            for spec in chain:
                effects.add(spec, Effect(frozenset(), shared,
                                         layer=work.key, chain=ci))
        for spec in work.serial_kernels:
            effects.add(spec, Effect(frozenset(), shared,
                                     layer=work.key, chain=-1))
    return effects


class GraphCapture:
    """Context manager recording one eager pass on ``gpu`` as a graph.

    Dispatch inside the ``with`` block executes normally *and* appends
    nodes; :meth:`build` then assembles the :class:`CompiledGraph` (or
    raises :class:`~repro.errors.GraphCaptureError` for an empty capture
    or unknown kernel effects).  Nested captures on one device are
    refused, mirroring ``cudaErrorStreamCaptureUnsupported``.
    """

    def __init__(self, gpu: GPU, effects: KernelEffects,
                 name: str = "graph", network: str = "",
                 pool_size: int = 0, batch: int = 0, seed: int = 0) -> None:
        self.gpu = gpu
        self.effects = effects
        self.name = name
        self.network = network
        self.pool_size = pool_size
        self.batch = batch
        self.seed = seed
        self.nodes: list[GraphNode] = []
        self.problems: list[str] = []
        self._stream_ids: dict[int, int] = {}
        self._event_ids: dict[int, int] = {}
        self._saved: dict = {}

    # -- dense renumbering ---------------------------------------------
    def _stream_of(self, stream) -> int:
        engine_id = (0 if stream is None or stream.is_default
                     else stream.stream_id)
        if engine_id == 0:
            return 0
        return self._stream_ids.setdefault(engine_id,
                                           len(self._stream_ids) + 1)

    def _event_of(self, event) -> int:
        return self._event_ids.setdefault(event.event_id,
                                          len(self._event_ids))

    # -- shims ---------------------------------------------------------
    def _on_launch(self, spec: KernelSpec, stream=None, enqueue_at=None):
        result = self._saved["launch"](spec, stream=stream,
                                       enqueue_at=enqueue_at)
        eff = self.effects.lookup(spec)
        if eff is None:
            self.problems.append(
                f"no memory effect known for kernel {spec.name!r} "
                f"(tag {spec.tag!r})")
            eff = Effect()
        lc = spec.launch
        self.nodes.append(GraphNode(
            kind="launch", stream=self._stream_of(stream),
            kernel=spec.name, grid=lc.grid, block=lc.block,
            shared_mem_static=lc.shared_mem_static,
            shared_mem_dynamic=lc.shared_mem_dynamic,
            registers_per_thread=lc.registers_per_thread,
            flops_per_thread=spec.flops_per_thread,
            bytes_per_thread=spec.bytes_per_thread,
            tag=spec.tag, duration_us=spec.duration_us,
            reads=tuple(sorted(eff.reads)),
            writes=tuple(sorted(eff.writes)),
            layer=eff.layer, chain=eff.chain,
        ))
        return result

    def _on_synchronize(self):
        result = self._saved["synchronize"]()
        self.nodes.append(GraphNode(kind="barrier"))
        return result

    def _on_record_event(self, event, stream=None):
        result = self._saved["record_event"](event, stream=stream)
        self.nodes.append(GraphNode(kind="record",
                                    stream=self._stream_of(stream),
                                    event=self._event_of(event)))
        return result

    def _on_wait_event(self, event, stream=None):
        result = self._saved["wait_event"](event, stream=stream)
        self.nodes.append(GraphNode(kind="wait",
                                    stream=self._stream_of(stream),
                                    event=self._event_of(event)))
        return result

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "GraphCapture":
        if getattr(self.gpu, "_graph_capture_active", False):
            raise GraphCaptureError(
                f"device {self.gpu.props.name} is already capturing; "
                f"nested captures are not supported")
        self._saved = {
            "launch": self.gpu.launch,
            "synchronize": self.gpu.synchronize,
            "record_event": self.gpu.record_event,
            "wait_event": self.gpu.wait_event,
        }
        self.gpu.launch = self._on_launch                # type: ignore
        self.gpu.synchronize = self._on_synchronize      # type: ignore
        self.gpu.record_event = self._on_record_event    # type: ignore
        self.gpu.wait_event = self._on_wait_event        # type: ignore
        self.gpu._graph_capture_active = True            # type: ignore
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for attr, fn in self._saved.items():
            setattr(self.gpu, attr, fn)
        self.gpu._graph_capture_active = False           # type: ignore

    def build(self) -> CompiledGraph:
        """Assemble the captured graph; the capture-miss choke point."""
        if self.problems:
            raise GraphCaptureError(
                f"capture {self.name!r} unusable: " +
                "; ".join(sorted(set(self.problems))))
        if not any(n.kind == "launch" for n in self.nodes):
            raise GraphCaptureError(
                f"capture {self.name!r} recorded no kernel launches")
        return CompiledGraph(
            name=self.name, network=self.network,
            device=self.gpu.props.name,
            pool_size=max((len(self._stream_ids), self.pool_size)),
            batch=self.batch, seed=self.seed, nodes=list(self.nodes),
        )


def capture_works(executor, works: Sequence[LayerWork],
                  effects: KernelEffects, name: str = "graph",
                  network: str = "", batch: int = 0, seed: int = 0,
                  warmup: bool = True) -> CompiledGraph:
    """Capture one eager pass of ``works`` through ``executor``.

    With ``warmup`` (default), an uncaptured eager pass runs first so
    one-time work — GLP4NN profiling, MILP solves, pool creation — lands
    outside the capture and the recorded dispatch is the steady-state
    schedule.  The captured pass itself still executes eagerly.
    """
    if warmup:
        for w in works:
            executor.run(w)
    cap = GraphCapture(executor.gpu, effects, name=name, network=network,
                       batch=batch, seed=seed)
    with cap:
        for w in works:
            executor.run(w)
    return cap.build()
