"""Compiled-graph cache: persist captures across processes, safely.

Capture costs a full warmup + recorded pass per works list; like GLP4NN's
profiling/analysis cost, that is one-time *per process* unless persisted.
This cache mirrors the decision cache (:mod:`repro.core.persistence`)
exactly:

* entries are keyed by the works fingerprint
  (:func:`repro.graphs.compiled.works_fingerprint` — shape/net/device
  identity, the same notion of identity the runtime decision cache uses);
* each entry carries a canonical-JSON SHA-256 fingerprint of its graph,
  so tampered or stale entries are detectable;
* the whole document is guarded by a format version and the device name;
* :func:`load_graphs_safe` never raises on bad cache contents — anything
  untrustworthy is *quarantined* and reported, and the affected works
  simply re-capture on next execution, exactly as if the cache had never
  existed.

A loaded graph still goes through hazard admission before replay; the
cache shortcuts capture, never validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.faults.hooks import fault_poll
from repro.graphs.compiled import CompiledGraph

FORMAT_VERSION = 1


@dataclass
class GraphCacheLoadReport:
    """Outcome of a resilient graph-cache load."""

    path: str
    graphs: dict[str, CompiledGraph] = field(default_factory=dict)
    #: ``(works_key_or_"*", reason)`` per rejected entry; ``"*"`` means
    #: the whole document was unusable.
    quarantined: list[tuple[str, str]] = field(default_factory=list)

    @property
    def loaded(self) -> int:
        return len(self.graphs)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def describe(self) -> str:
        lines = [f"graph cache {self.path}: {self.loaded} graph(s) loaded"]
        for key, reason in self.quarantined:
            lines.append(f"  quarantined {key}: {reason}")
        return "\n".join(lines)


def save_graphs(graphs: dict[str, CompiledGraph],
                path: Union[str, Path], device: str) -> int:
    """Write ``graphs`` (works-fingerprint keyed) to ``path``."""
    entries = []
    for key in sorted(graphs):
        graph = graphs[key]
        entries.append({
            "works_key": key,
            "graph": graph.to_dict(),
            "fingerprint": graph.fingerprint(),
        })
    doc = {
        "format": FORMAT_VERSION,
        "device": device,
        "graphs": entries,
    }
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return len(entries)


def _entry_problem(entry) -> Union[str, None]:
    """Reason an entry is unusable, or ``None`` if it validates."""
    if not isinstance(entry, dict):
        return f"entry is not an object: {entry!r}"
    if not entry.get("works_key"):
        return "missing works key"
    fingerprint = entry.get("fingerprint")
    if not fingerprint:
        return "missing graph fingerprint"
    try:
        graph = CompiledGraph.from_dict(entry["graph"])
    except Exception as e:  # malformed payloads take many shapes
        return f"malformed graph: {e!r}"
    if graph.fingerprint() != fingerprint:
        return "fingerprint mismatch (tampered or stale entry)"
    return None


def load_graphs_safe(path: Union[str, Path],
                     device: str) -> GraphCacheLoadReport:
    """Resilient cache load: quarantine what cannot be trusted, keep going.

    Shares the ``cache_load`` fault-injection site with the decision
    cache — a fired fault models unreadable cache bytes and quarantines
    the whole document.
    """
    report = GraphCacheLoadReport(path=str(path))
    if fault_poll("cache_load", str(path)) is not None:
        report.quarantined.append(("*", "injected fault: cache unreadable"))
        return report
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as e:
        report.quarantined.append(("*", f"unreadable: {e}"))
        return report
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        report.quarantined.append(("*", f"corrupt JSON: {e}"))
        return report
    if not isinstance(doc, dict):
        report.quarantined.append(("*", "document is not an object"))
        return report
    if doc.get("format") != FORMAT_VERSION:
        report.quarantined.append(
            ("*", f"unsupported format {doc.get('format')!r}"))
        return report
    if doc.get("device") != device:
        report.quarantined.append(
            ("*", f"recorded on {doc.get('device')!r}, not {device!r}"))
        return report
    entries = doc.get("graphs")
    if not isinstance(entries, list):
        report.quarantined.append(("*", "'graphs' is not a list"))
        return report
    for entry in entries:
        problem = _entry_problem(entry)
        key = (entry.get("works_key", "?") if isinstance(entry, dict)
               else "?")
        if problem is not None:
            report.quarantined.append((str(key), problem))
            continue
        report.graphs[str(key)] = CompiledGraph.from_dict(entry["graph"])
    return report
