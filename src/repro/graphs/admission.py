"""Hazard admission: no graph replays unless the race detector signs off.

Replaying a graph skips the host dispatch that originally ordered its
kernels, so the convergence-invariance guarantee now rests entirely on
the *recorded* stream/event structure.  Admission closes that loop with
the PR-5 machinery: the captured graph lowers to a
:class:`repro.analyze.program.DispatchProgram` and
:func:`repro.analyze.hazards.detect` must certify that every conflicting
kernel pair (RAW/WAR/WAW on the capture's memory effects) is ordered by
happens-before — under *all* interleavings the engine could produce, not
just the one the capture happened to observe.

A rejected graph raises :class:`~repro.errors.GraphValidationError`
carrying the full :class:`~repro.analyze.hazards.ProgramVerdict`
(two-kernel witnesses included); the graph-mode runtime turns that into a
permanent eager fallback for the works in question.
"""

from __future__ import annotations

from repro.analyze.hazards import ProgramVerdict, verdict_for
from repro.errors import GraphValidationError
from repro.graphs.compiled import CompiledGraph


def validate_graph(graph: CompiledGraph) -> ProgramVerdict:
    """Run the stream-hazard detector over ``graph``'s program."""
    return verdict_for(graph.program(), network=graph.network,
                       plan="graph-capture")


def admit(graph: CompiledGraph) -> ProgramVerdict:
    """Validate ``graph``; raise :class:`GraphValidationError` if unsafe."""
    verdict = validate_graph(graph)
    if not verdict.ok:
        first = verdict.hazards[0]
        raise GraphValidationError(
            f"graph {graph.name!r} refused admission: "
            f"{len(verdict.hazards)} hazard(s), first: {first.describe()}",
            verdict=verdict,
        )
    return verdict
