"""Hazard admission: no graph replays unless the race detector signs off.

Replaying a graph skips the host dispatch that originally ordered its
kernels, so the convergence-invariance guarantee now rests entirely on
the *recorded* stream/event structure.  Admission closes that loop with
the PR-5 machinery: the captured graph lowers to a
:class:`repro.analyze.program.DispatchProgram` and
:func:`repro.analyze.hazards.detect` must certify that every conflicting
kernel pair (RAW/WAR/WAW on the capture's memory effects) is ordered by
happens-before — under *all* interleavings the engine could produce, not
just the one the capture happened to observe.

A rejected graph raises :class:`~repro.errors.GraphValidationError`
carrying the full :class:`~repro.analyze.hazards.ProgramVerdict`
(two-kernel witnesses included); the graph-mode runtime turns that into a
permanent eager fallback for the works in question.
"""

from __future__ import annotations

from repro.analyze.deadlock import DeadlockVerdict, deadlock_verdict_for
from repro.analyze.hazards import ProgramVerdict, verdict_for
from repro.errors import GraphValidationError
from repro.graphs.compiled import CompiledGraph


def validate_graph(graph: CompiledGraph) -> ProgramVerdict:
    """Run the stream-hazard detector over ``graph``'s program."""
    return verdict_for(graph.program(), network=graph.network,
                       plan="graph-capture")


def validate_deadlocks(graph: CompiledGraph) -> DeadlockVerdict:
    """Run the deadlock detector over ``graph``'s program.

    Replay is where a mis-ordered record/wait pair does the most damage:
    the whole program launches in one host call, so a lost edge cannot
    even be observed as a stall — it silently weakens the ordering the
    capture promised.  Admission therefore requires the strict-semantics
    deadlock certificate alongside the hazard one.
    """
    return deadlock_verdict_for(graph.program(), network=graph.network,
                                plan="graph-capture")


def admit(graph: CompiledGraph) -> ProgramVerdict:
    """Validate ``graph``; raise :class:`GraphValidationError` if unsafe.

    Checks deadlocks first (a cyclic or mis-ordered wait structure makes
    the hazard verdict itself unreliable — happens-before edges the
    author intended are missing), then data hazards.
    """
    dl = validate_deadlocks(graph)
    if not dl.ok:
        first = dl.findings[0]
        raise GraphValidationError(
            f"graph {graph.name!r} refused admission: "
            f"{len(dl.findings)} deadlock finding(s), first: "
            f"{first.describe()}",
            verdict=dl,
        )
    verdict = validate_graph(graph)
    if not verdict.ok:
        first = verdict.hazards[0]
        raise GraphValidationError(
            f"graph {graph.name!r} refused admission: "
            f"{len(verdict.hazards)} hazard(s), first: {first.describe()}",
            verdict=verdict,
        )
    return verdict
