"""Compiled graphs: the serializable artifact of dispatch capture.

A :class:`CompiledGraph` is a device-independent record of one executor
pass — every kernel launch with its launch configuration, per-thread work,
memory effect (abstract read/write region sets) and *dense* stream id,
plus the barriers and event edges that ordered them.  It is the bridge
between the three phases of the graph-launch lifecycle:

* **capture** (:mod:`repro.graphs.capture`) produces one from a live
  executor run;
* **validation** (:mod:`repro.graphs.admission`) lowers it to a
  :class:`repro.analyze.program.DispatchProgram` — the PR-5 hazard IR —
  and refuses admission unless the race detector certifies it;
* **replay** (:mod:`repro.graphs.replay`) instantiates it back onto a
  :class:`repro.gpusim.engine.GPU` as a single amortized graph launch.

Stream ids inside a graph are *program-relative*: 0 is the legacy default
stream (barrier semantics), pool streams are renumbered densely in
first-use order.  That makes graphs portable across processes — engine
stream handles are process-global — and is exactly the numbering
:func:`repro.analyze.program.happens_before` assumes.

Graphs serialize to canonical JSON with a SHA-256 fingerprint, mirroring
the decision cache (:mod:`repro.core.persistence`), so the on-disk cache
can quarantine tampered or stale entries instead of replaying them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analyze.program import DispatchProgram
from repro.errors import GraphError
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.kernels.ir import LayerWork

#: Node kinds, mirroring :mod:`repro.analyze.program` op-for-op.
NODE_KINDS = ("launch", "barrier", "record", "wait")


@dataclass(frozen=True)
class GraphNode:
    """One captured dispatch operation, fully self-describing.

    ``launch`` nodes carry the whole :class:`KernelSpec` (flattened so the
    graph round-trips through JSON) plus the kernel's memory effect;
    ``record``/``wait`` nodes carry a graph-relative event id; ``barrier``
    nodes record a captured host ``synchronize``.
    """

    kind: str
    stream: int = 0
    # -- launch payload ------------------------------------------------
    kernel: str = ""
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    shared_mem_static: int = 0
    shared_mem_dynamic: int = 0
    registers_per_thread: int = 32
    flops_per_thread: float = 1.0
    bytes_per_thread: float = 4.0
    tag: str = ""
    duration_us: Optional[float] = None
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    layer: str = ""
    chain: int = -1
    # -- record/wait payload -------------------------------------------
    event: int = -1

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise GraphError(
                f"unknown graph node kind {self.kind!r}; expected one of "
                f"{', '.join(NODE_KINDS)}"
            )
        if self.kind == "launch" and not self.kernel:
            raise GraphError("launch node needs a kernel name")
        if self.kind in ("record", "wait") and self.event < 0:
            raise GraphError(f"{self.kind} node needs an event id")

    def spec(self) -> KernelSpec:
        """Materialize the kernel spec (fresh uid) for replay."""
        if self.kind != "launch":
            raise GraphError(f"{self.kind} node has no kernel spec")
        return KernelSpec(
            name=self.kernel,
            launch=LaunchConfig(
                grid=tuple(self.grid), block=tuple(self.block),
                shared_mem_static=self.shared_mem_static,
                shared_mem_dynamic=self.shared_mem_dynamic,
                registers_per_thread=self.registers_per_thread,
            ),
            flops_per_thread=self.flops_per_thread,
            bytes_per_thread=self.bytes_per_thread,
            tag=self.tag,
            duration_us=self.duration_us,
        )

    def to_dict(self) -> dict:
        if self.kind == "barrier":
            return {"kind": self.kind}
        if self.kind in ("record", "wait"):
            return {"kind": self.kind, "stream": self.stream,
                    "event": self.event}
        return {
            "kind": self.kind, "stream": self.stream,
            "kernel": self.kernel,
            "grid": list(self.grid), "block": list(self.block),
            "shared_mem_static": self.shared_mem_static,
            "shared_mem_dynamic": self.shared_mem_dynamic,
            "registers_per_thread": self.registers_per_thread,
            "flops_per_thread": self.flops_per_thread,
            "bytes_per_thread": self.bytes_per_thread,
            "tag": self.tag,
            "duration_us": self.duration_us,
            "reads": sorted(self.reads), "writes": sorted(self.writes),
            "layer": self.layer, "chain": self.chain,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GraphNode":
        kind = d.get("kind", "")
        if kind == "barrier":
            return cls(kind="barrier")
        if kind in ("record", "wait"):
            return cls(kind=kind, stream=int(d["stream"]),
                       event=int(d["event"]))
        return cls(
            kind=kind, stream=int(d["stream"]), kernel=d["kernel"],
            grid=tuple(int(x) for x in d["grid"]),
            block=tuple(int(x) for x in d["block"]),
            shared_mem_static=int(d["shared_mem_static"]),
            shared_mem_dynamic=int(d["shared_mem_dynamic"]),
            registers_per_thread=int(d["registers_per_thread"]),
            flops_per_thread=float(d["flops_per_thread"]),
            bytes_per_thread=float(d["bytes_per_thread"]),
            tag=d.get("tag", ""),
            duration_us=(None if d.get("duration_us") is None
                         else float(d["duration_us"])),
            reads=tuple(d.get("reads", ())),
            writes=tuple(d.get("writes", ())),
            layer=d.get("layer", ""), chain=int(d.get("chain", -1)),
        )


@dataclass
class CompiledGraph:
    """A captured dispatch program, ready for validation and replay."""

    name: str
    network: str = ""
    device: str = ""
    pool_size: int = 0
    batch: int = 0
    seed: int = 0
    nodes: list[GraphNode] = field(default_factory=list)

    # -- queries -------------------------------------------------------
    @property
    def launches(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "launch")

    def streams_used(self) -> set[int]:
        return {n.stream for n in self.nodes
                if n.kind in ("launch", "record", "wait")}

    def __len__(self) -> int:
        return len(self.nodes)

    # -- lowering to the hazard IR -------------------------------------
    def program(self) -> DispatchProgram:
        """Lower to the PR-5 hazard IR for race-detector validation."""
        prog = DispatchProgram(name=self.name)
        for n in self.nodes:
            if n.kind == "launch":
                prog.launch(n.kernel, n.stream, reads=n.reads,
                            writes=n.writes, layer=n.layer, chain=n.chain)
            elif n.kind == "barrier":
                prog.sync()
            elif n.kind == "record":
                prog.record(n.event, n.stream)
            else:
                prog.wait(n.event, n.stream)
        return prog

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name, "network": self.network,
            "device": self.device, "pool_size": self.pool_size,
            "batch": self.batch, "seed": self.seed,
            "nodes": [n.to_dict() for n in self.nodes],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CompiledGraph":
        return cls(
            name=d["name"], network=d.get("network", ""),
            device=d.get("device", ""),
            pool_size=int(d.get("pool_size", 0)),
            batch=int(d.get("batch", 0)), seed=int(d.get("seed", 0)),
            nodes=[GraphNode.from_dict(n) for n in d["nodes"]],
        )

    def fingerprint(self) -> str:
        """Canonical-JSON SHA-256 over the graph's full content.

        The cache stores this next to each entry so load can detect
        tampering or staleness, exactly like the decision cache's
        per-entry fingerprint.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def works_fingerprint(works: Sequence[LayerWork], device: str = "",
                      extra: str = "") -> str:
    """Content digest identifying a works list on one device.

    This is the graph-cache key: two works lists with the same layer keys,
    chain structure and kernel signatures (code + geometry + footprint +
    per-thread work) describe the same dispatch stream, whatever process
    lowered them.  ``extra`` folds in caller context (e.g. the executor
    kind) when the same works can be dispatched differently.
    """
    h = hashlib.sha256()
    h.update(device.encode("utf-8"))
    h.update(extra.encode("utf-8"))
    for work in works:
        h.update(work.key.encode("utf-8"))
        for chain in work.parallel_chains:
            h.update(b"c")
            for k in chain:
                h.update(repr(_kernel_identity(k)).encode("utf-8"))
        h.update(b"s")
        for k in work.serial_kernels:
            h.update(repr(_kernel_identity(k)).encode("utf-8"))
    return h.hexdigest()


def _kernel_identity(spec: KernelSpec) -> tuple:
    """The content identity of one kernel (no uid — uids are per-object)."""
    lc = spec.launch
    return (spec.name, lc.grid, lc.block, lc.shared_mem_static,
            lc.shared_mem_dynamic, lc.registers_per_thread,
            spec.flops_per_thread, spec.bytes_per_thread, spec.tag,
            spec.duration_us)
