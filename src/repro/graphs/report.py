"""Graph session driver + report: what ``python -m repro graph`` runs.

One entry point, :func:`run_graph_session`, covers the three CLI actions:

* ``capture`` — warmup + capture + hazard admission; optionally persist
  the admitted graphs to a quarantine-safe cache file;
* ``replay``  — the full lifecycle over several passes, measuring
  graph-replay latency and launch overhead against the eager passes;
* ``report``  — capture + validation verdict only (no replay), the
  "would this dispatch be graph-safe?" query.

The :class:`GraphReport` it returns follows the repo-wide reporting
protocol (``render``/``to_dict``/``to_json``/``save``) so the CLI's
``--format json|text`` plumbing in :mod:`repro.reporting` applies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.graphs.admission import validate_graph
from repro.graphs.cache import load_graphs_safe, save_graphs
from repro.graphs.capture import poisoned_effects
from repro.graphs.runtime import GraphModeRuntime, WARMUP_PASSES
from repro.runtime.lowering import lower_net
from repro.serve.engine import make_executor, resolve_device, resolve_net

#: CLI actions, in lifecycle order.
GRAPH_ACTIONS = ("capture", "replay", "report")

#: Phases a graph session can lower.
GRAPH_PHASES = ("forward", "backward", "both")


@dataclass
class PhaseOutcome:
    """Per-phase result: one works list through the graph lifecycle."""

    phase: str
    nodes: int = 0
    launches: int = 0
    streams: int = 0
    ok: bool = False
    status: str = ""              # "admitted" | "capture miss: ..." | ...
    hazards: int = 0
    warmup_us: float = 0.0        # first pass (profiling + analysis)
    eager_us: float = 0.0         # steady-state eager pass (the capture
                                  # pass executes eagerly; recording the
                                  # nodes costs no simulated time)
    replay_us: float = 0.0        # mean replay pass
    replays: int = 0
    eager_overhead_us: float = 0.0   # host launch overhead, eager pass
    graph_overhead_us: float = 0.0   # host launch overhead, replay pass

    @property
    def overhead_reduction(self) -> float:
        """Fraction of per-pass host launch overhead removed by replay."""
        if self.eager_overhead_us <= 0 or not self.replays:
            return 0.0
        return 1.0 - self.graph_overhead_us / self.eager_overhead_us

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "nodes": self.nodes,
            "launches": self.launches, "streams": self.streams,
            "ok": self.ok, "status": self.status, "hazards": self.hazards,
            "warmup_us": round(self.warmup_us, 3),
            "eager_us": round(self.eager_us, 3),
            "replay_us": round(self.replay_us, 3),
            "replays": self.replays,
            "eager_overhead_us": round(self.eager_overhead_us, 3),
            "graph_overhead_us": round(self.graph_overhead_us, 3),
            "overhead_reduction": round(self.overhead_reduction, 4),
        }


@dataclass
class GraphReport:
    """Outcome of one ``repro graph`` session."""

    action: str
    network: str
    device: str
    batch: int
    seed: int
    executor: str
    iterations: int
    inject_hazard: bool = False
    phases: list[PhaseOutcome] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    cache_path: str = ""
    cache_saved: int = 0
    cache_quarantined: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        # --inject-hazard *expects* rejection + eager fallback: the
        # session is OK iff every phase was refused admission and still
        # completed its passes eagerly.
        if self.inject_hazard:
            return all(not p.ok for p in self.phases)
        return all(p.ok for p in self.phases)

    def to_dict(self) -> dict:
        return {
            "kind": "graph-report",
            "action": self.action, "network": self.network,
            "device": self.device, "batch": self.batch, "seed": self.seed,
            "executor": self.executor, "iterations": self.iterations,
            "inject_hazard": self.inject_hazard, "ok": self.ok,
            "phases": [p.to_dict() for p in self.phases],
            "stats": dict(self.stats),
            "cache": {"path": self.cache_path, "saved": self.cache_saved,
                      "quarantined": list(self.cache_quarantined)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        lines = [
            f"graph {self.action}: {self.network} on {self.device} "
            f"(batch {self.batch}, seed {self.seed}, "
            f"executor {self.executor})"
        ]
        for p in self.phases:
            lines.append(
                f"  {p.phase:8s} {p.launches:4d} launch(es) over "
                f"{p.nodes} node(s), {p.streams} stream(s) — {p.status}")
            if p.replays and p.eager_us > 0:
                speedup = (p.eager_us / p.replay_us
                           if p.replay_us > 0 else float("inf"))
                lines.append(
                    f"           eager {p.eager_us:.1f}us -> replay "
                    f"{p.replay_us:.1f}us ({speedup:.2f}x); host launch "
                    f"overhead {p.eager_overhead_us:.1f}us -> "
                    f"{p.graph_overhead_us:.1f}us "
                    f"(-{100 * p.overhead_reduction:.1f}%)")
            elif p.replays:
                lines.append(
                    f"           {p.replays} replay(s) at "
                    f"{p.replay_us:.1f}us (cache hit: no eager passes "
                    f"to compare)")
        if self.cache_path:
            lines.append(f"  cache: {self.cache_path} "
                         f"({self.cache_saved} graph(s) saved, "
                         f"{len(self.cache_quarantined)} quarantined)")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"graph: {verdict}"
                     + (" (hazard injection: rejection exercised)"
                        if self.inject_hazard and self.ok else ""))
        return "\n".join(lines)


def run_graph_session(action: str = "replay",
                      network: str = "cifar10",
                      device: str = "p100",
                      phase: str = "both",
                      batch: int = 8,
                      seed: int = 0,
                      executor: str = "glp4nn",
                      streams: int = 4,
                      iterations: int = 4,
                      inject_hazard: bool = False,
                      cache: Optional[str] = None,
                      load_cache: bool = False) -> GraphReport:
    """Run one graph capture/replay session and report it.

    ``iterations`` counts total passes per phase (warmup + capture +
    replays); ``replay`` needs at least ``WARMUP_PASSES + 2`` to reach a
    replay, and is clamped up to that.  ``cache`` persists admitted
    graphs after the run (``action="capture"``) or, with ``load_cache``,
    seeds the runtime from disk first (quarantine-safe).
    """
    if action not in GRAPH_ACTIONS:
        raise ReproError(
            f"unknown graph action {action!r}; expected one of "
            f"{', '.join(GRAPH_ACTIONS)}")
    if phase not in GRAPH_PHASES:
        raise ReproError(
            f"unknown phase {phase!r}; expected one of "
            f"{', '.join(GRAPH_PHASES)}")
    props = resolve_device(device)
    builder = resolve_net(network)
    reset_handle_ids()
    net = builder(batch=batch, seed=seed)
    gpu = GPU(props)
    ex = make_executor(executor, gpu, fixed_streams=streams)

    report = GraphReport(action=action, network=network,
                         device=props.name, batch=batch, seed=seed,
                         executor=executor, iterations=iterations,
                         inject_hazard=inject_hazard)
    seeded = None
    if cache and load_cache:
        cache_report = load_graphs_safe(cache, props.name)
        seeded = cache_report.graphs
        report.cache_path = str(cache)
        report.cache_quarantined = [list(q)
                                    for q in cache_report.quarantined]
    runtime = ex.enable_graph_mode(
        net=net, network=network,
        effects_fn=poisoned_effects if inject_hazard else None,
        graphs=seeded)

    phases = (["forward", "backward"] if phase == "both" else [phase])
    min_passes = WARMUP_PASSES + (2 if action == "replay" else 1)
    passes = max(iterations, min_passes)
    for ph in phases:
        works = lower_net(net, ph)
        outcome = PhaseOutcome(phase=ph)
        per_pass: list[tuple[float, float]] = []   # (elapsed, overhead)
        for _ in range(passes if action == "replay" else min_passes):
            o0 = gpu.launch_overhead_total
            elapsed = ex.run_pass(works)
            per_pass.append((elapsed, gpu.launch_overhead_total - o0))
        key = _works_key(works, gpu)
        graph = runtime.admitted.get(key)
        if graph is not None:
            verdict = validate_graph(graph)
            outcome.nodes = len(graph)
            outcome.launches = graph.launches
            outcome.streams = len(graph.streams_used())
            outcome.hazards = len(verdict.hazards)
            outcome.ok = verdict.ok
            outcome.status = "admitted"
        else:
            outcome.ok = False
            outcome.status = runtime.stats.rejected.get(
                key, "not captured")
            if inject_hazard:
                rejected = runtime.stats.rejected.get(key, "")
                outcome.hazards = 1 if rejected else 0
        modes = runtime.modes_for(works, gpu.props.name)
        by_mode: dict[str, list[tuple[float, float]]] = {}
        for mode, sample in zip(modes, per_pass):
            by_mode.setdefault(mode, []).append(sample)
        if "eager" in by_mode:
            outcome.warmup_us = by_mode["eager"][0][0]
        # The capture pass runs eagerly (recording is free on the
        # simulated clock): the fair steady-state eager baseline.  Fall
        # back to later eager passes (rejected graphs have no capture).
        steady_eager = (by_mode.get("capture")
                        or by_mode.get("eager", [])[1:]
                        or by_mode.get("eager", []))
        if steady_eager:
            outcome.eager_us = steady_eager[-1][0]
            outcome.eager_overhead_us = steady_eager[-1][1]
        replay_passes = by_mode.get("replay", [])
        if graph is not None and replay_passes:
            outcome.replays = len(replay_passes)
            outcome.replay_us = (sum(e for e, _ in replay_passes)
                                 / len(replay_passes))
            outcome.graph_overhead_us = (sum(o for _, o in replay_passes)
                                         / len(replay_passes))
        report.phases.append(outcome)

    report.stats = runtime.stats.to_dict()
    if cache and not load_cache:
        report.cache_path = str(cache)
        report.cache_saved = save_graphs(runtime.admitted, cache,
                                         props.name)
    return report


def _works_key(works, gpu) -> str:
    from repro.graphs.compiled import works_fingerprint
    return works_fingerprint(list(works), gpu.props.name)
