"""Graph instantiation and replay: one host launch per pass.

The simulator analogue of ``cudaGraphInstantiate`` + ``cudaGraphLaunch``:
:func:`instantiate` binds a validated :class:`CompiledGraph` to a device
— creating the pool streams and events its dense ids name — and the
resulting :class:`GraphExec` replays the whole program through
:meth:`repro.gpusim.engine.GPU.launch_graph` for a single amortized
``T_launch``, however many kernels the graph holds.

Binding is one-time: streams and events are created at instantiation and
reused by every replay, so steady-state replay touches the host clock
exactly once per pass (plus the closing ``synchronize`` the training
loop needs anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.gpusim.engine import GPU
from repro.gpusim.graph import GraphLaunchResult, GraphOp
from repro.gpusim.stream import Event, Stream
from repro.graphs.compiled import CompiledGraph


@dataclass
class GraphExec:
    """A compiled graph bound to one device, ready to launch."""

    graph: CompiledGraph
    gpu: GPU
    ops: list[GraphOp] = field(default_factory=list)
    streams: dict[int, Stream] = field(default_factory=dict)
    events: dict[int, Event] = field(default_factory=dict)
    launch_count: int = 0

    def launch(self) -> GraphLaunchResult:
        """Enqueue the whole graph with one host-side launch."""
        result = self.gpu.launch_graph(self.ops, name=self.graph.name)
        self.launch_count += 1
        return result

    def run(self) -> float:
        """Launch and synchronize; returns elapsed host µs."""
        start = self.gpu.host_time
        self.launch()
        self.gpu.synchronize()
        return self.gpu.host_time - start


def instantiate(graph: CompiledGraph, gpu: GPU) -> GraphExec:
    """Bind ``graph`` to ``gpu``: allocate streams/events, build the ops.

    Dense stream id 0 maps to the device's legacy default stream
    (preserving its barrier semantics); ids >= 1 get fresh pool streams.
    Event ids get fresh events, private to this executable.
    """
    if not graph.nodes:
        raise GraphError(f"graph {graph.name!r} has no nodes")
    exec_ = GraphExec(graph=graph, gpu=gpu)
    for sid in sorted(graph.streams_used()):
        if sid == 0:
            exec_.streams[0] = gpu.default_stream
        else:
            exec_.streams[sid] = gpu.create_stream(
                name=f"{graph.name}.s{sid}")
    for node in graph.nodes:
        if node.kind == "launch":
            exec_.ops.append(GraphOp("launch", spec=node.spec(),
                                     stream=exec_.streams[node.stream]))
        elif node.kind == "barrier":
            exec_.ops.append(GraphOp("barrier"))
        else:
            event = exec_.events.setdefault(
                node.event, Event(name=f"{graph.name}.e{node.event}"))
            exec_.ops.append(GraphOp(node.kind, event=event,
                                     stream=exec_.streams[node.stream]))
    return exec_
