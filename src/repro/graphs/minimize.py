"""Certified sync-elision over compiled graphs.

A captured graph's nodes lower one-for-one to the ops of its hazard-IR
program (:meth:`repro.graphs.compiled.CompiledGraph.program`), so the
whole-program elision pass (:mod:`repro.analyze.elide`) transfers
directly: minimize the program, then drop exactly the graph nodes whose
op indices were elided.  The result is a smaller graph that replays the
same launches in the same certified order for strictly less event
bookkeeping per replay.

The minimized graph goes back through full admission at the call site
(:class:`repro.graphs.runtime.GraphModeRuntime` re-admits it before the
first replay) — elision's closure certificate already implies the
verdict carries over, but admission is cheap and the invariant "no graph
replays unsigned" stays unconditional.
"""

from __future__ import annotations

from repro.analyze.elide import ElisionResult, certified_minimize
from repro.graphs.compiled import CompiledGraph


def minimize_graph(graph: CompiledGraph
                   ) -> tuple[CompiledGraph, ElisionResult]:
    """Elide redundant sync nodes; returns ``(minimized, certificate)``.

    When nothing is removable the input graph is returned unchanged
    (same object), so fingerprint-keyed caches are undisturbed.
    """
    result = certified_minimize(graph.program())
    dropped = {r.op_index for r in result.removed}
    if not dropped:
        return graph, result
    mini = CompiledGraph(
        name=graph.name, network=graph.network, device=graph.device,
        pool_size=graph.pool_size, batch=graph.batch, seed=graph.seed,
        nodes=[n for i, n in enumerate(graph.nodes) if i not in dropped],
    )
    return mini, result
