"""Graph-mode runtime: the warmup -> capture -> replay lifecycle.

:class:`GraphModeRuntime` sits between an executor and its works and
decides, per pass, whether to dispatch eagerly or replay a compiled
graph.  Per works list (identified by content fingerprint, so the same
lowered works hit the same state across sessions):

1. **warmup** — the first pass runs eagerly, untouched, so GLP4NN's
   one-time profiling + MILP analysis happens outside any capture;
2. **capture** — the second pass runs eagerly *under capture*, then the
   recorded graph goes through hazard admission
   (:mod:`repro.graphs.admission`) and, if admitted, is instantiated for
   replay;
3. **replay** — every later pass launches the graph once
   (:meth:`repro.gpusim.engine.GPU.launch_graph`) and synchronizes: one
   host ``T_launch`` for the whole program.

Every failure degrades to eager dispatch, never to an error — the same
graceful-degradation contract the runtime scheduler keeps:

* capture miss (unknown kernel effects, empty capture) or validation
  rejection (hazardous graph) permanently pins the works to eager
  dispatch, with the reason recorded in :class:`GraphModeStats`;
* an injected ``graph_launch`` fault fails only the *current* pass over
  to eager dispatch (the site fires before any engine state changes);
  the admitted graph replays again on the next pass.

Numerics are untouched either way — the executor only meters simulated
time — and the ``repro.verify`` graph-replay harness holds the bit-exact
equivalence of the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import (
    AnalyzeError,
    FaultInjected,
    GraphCaptureError,
    GraphValidationError,
)
from repro.graphs.admission import admit
from repro.graphs.capture import (
    GraphCapture,
    KernelEffects,
    effects_from_net,
    synthetic_effects,
)
from repro.graphs.compiled import CompiledGraph, works_fingerprint
from repro.graphs.replay import GraphExec, instantiate
from repro.kernels.ir import LayerWork
from repro.obs.metrics import counter_inc
from repro.obs.spans import span

#: Eager passes before capture (pass 1 pays profiling/analysis).
WARMUP_PASSES = 1


@dataclass
class GraphModeStats:
    """Observable outcome counters of one graph-mode runtime."""

    eager_passes: int = 0
    captures: int = 0
    replays: int = 0
    capture_misses: int = 0
    validation_rejects: int = 0
    launch_fallbacks: int = 0
    waits_elided: int = 0
    records_elided: int = 0
    #: works fingerprint -> reason it is pinned to eager dispatch.
    rejected: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "eager_passes": self.eager_passes,
            "captures": self.captures,
            "replays": self.replays,
            "capture_misses": self.capture_misses,
            "validation_rejects": self.validation_rejects,
            "launch_fallbacks": self.launch_fallbacks,
            "waits_elided": self.waits_elided,
            "records_elided": self.records_elided,
            "rejected": dict(self.rejected),
        }


@dataclass
class _WorksState:
    """Per-works lifecycle state, keyed by works fingerprint."""

    passes: int = 0
    exec: Optional[GraphExec] = None
    graph: Optional[CompiledGraph] = None
    dead_reason: str = ""
    #: How each pass actually dispatched, in order:
    #: "eager" | "capture" | "replay" | "fallback".
    modes: list[str] = field(default_factory=list)


class GraphModeRuntime:
    """Transparent graph dispatch for an executor's ``run_pass``.

    Parameters
    ----------
    net:
        The network backing the works, used to derive capture memory
        effects from its blob wiring (the sound per-sample model).  When
        ``None``, chain-structural synthetic effects are used.
    effects_fn:
        Override: ``works -> KernelEffects``.  Takes precedence over
        ``net``; the ``--inject-hazard`` CI hook passes
        :func:`repro.graphs.capture.poisoned_effects` here.
    graphs:
        Pre-captured graphs (works fingerprint -> graph), e.g. from
        :func:`repro.graphs.cache.load_graphs_safe`.  A cache hit skips
        warmup and capture — but never admission: cached graphs are
        re-validated before their first replay.
    minimize:
        Run every admitted graph through certified sync-elision
        (:mod:`repro.graphs.minimize`) before its first replay; the
        minimized graph is re-admitted and the elided op counts land in
        ``stats.waits_elided``/``records_elided``.  An elision failure
        (deadlocked capture, broken certificate) keeps the un-minimized
        admitted graph — elision is an optimization, never a gate.
    """

    def __init__(self, net=None,
                 effects_fn: Optional[Callable[..., KernelEffects]] = None,
                 graphs: Optional[dict[str, CompiledGraph]] = None,
                 network: str = "", minimize: bool = False) -> None:
        self.net = net
        self.effects_fn = effects_fn
        self.network = network
        self.minimize = minimize
        self.seeded = dict(graphs) if graphs else {}
        self.stats = GraphModeStats()
        #: Admitted graphs by works fingerprint (for cache persistence).
        self.admitted: dict[str, CompiledGraph] = {}
        self._states: dict[str, _WorksState] = {}

    # ------------------------------------------------------------------
    def run_pass(self, executor, works: Sequence[LayerWork]) -> float:
        """Dispatch one pass of ``works``, eagerly or as a graph replay."""
        works = list(works)
        key = works_fingerprint(works, executor.gpu.props.name)
        state = self._states.setdefault(key, _WorksState())
        state.passes += 1

        if state.dead_reason:
            return self._eager(executor, works, state)
        if state.graph is not None:
            return self._replay(executor, works, state)
        if key in self.seeded:
            # Cache hit: adopt the pre-captured graph, skipping warmup
            # and capture — but not admission, which gates every graph
            # before its first replay.
            state.graph = self.seeded.pop(key)
            self._admit(key, state)
            if state.dead_reason:
                return self._eager(executor, works, state)
            return self._replay(executor, works, state)
        if state.passes <= WARMUP_PASSES:
            return self._eager(executor, works, state)
        return self._capture(executor, works, key, state)

    # ------------------------------------------------------------------
    def modes_for(self, works: Sequence[LayerWork], device: str
                  ) -> list[str]:
        """Dispatch mode of each recorded pass over ``works``."""
        state = self._states.get(works_fingerprint(list(works), device))
        return list(state.modes) if state else []

    def _eager(self, executor, works: Sequence[LayerWork],
               state: Optional[_WorksState] = None,
               mode: str = "eager") -> float:
        self.stats.eager_passes += 1
        if state is not None:
            state.modes.append(mode)
        return executor._eager_run_pass(works)

    def _effects(self, executor, works: Sequence[LayerWork]
                 ) -> KernelEffects:
        if self.effects_fn is not None:
            return self.effects_fn(works)
        if self.net is not None:
            return effects_from_net(
                self.net, works,
                transform=executor.scheduler.work_transform)
        return synthetic_effects(works)

    def _capture(self, executor, works: Sequence[LayerWork], key: str,
                 state: _WorksState) -> float:
        start = executor.gpu.host_time
        name = (works[0].phase if works else "pass")
        ran = False
        with span("graph.capture", cat="graph", works=len(works)) as h:
            try:
                effects = self._effects(executor, works)
                cap = GraphCapture(executor.gpu, effects,
                                   name=f"graph.{name}",
                                   network=self.network)
                with cap:
                    ran = True
                    for w in works:
                        executor.run(w)
                state.graph = cap.build()
                state.modes.append("capture")
                self.stats.captures += 1
                counter_inc("graph.captures")
                h.set(nodes=len(state.graph),
                      launches=state.graph.launches)
            except (GraphCaptureError, AnalyzeError) as e:
                # Capture miss: pin these works to eager dispatch.  If
                # the pass already executed (eagerly, under recording),
                # only the recording is discarded; if the miss struck
                # before dispatch, run the pass eagerly now.
                state.graph = None
                state.dead_reason = f"capture miss: {e}"
                self.stats.capture_misses += 1
                self.stats.rejected[key] = state.dead_reason
                counter_inc("graph.capture_misses")
                h.set(miss=str(e))
                if not ran:
                    return self._eager(executor, works, state)
                self.stats.eager_passes += 1
                state.modes.append("eager")
                return executor.gpu.host_time - start
        self._admit(key, state)
        return executor.gpu.host_time - start

    def _admit(self, key: str, state: _WorksState) -> None:
        assert state.graph is not None
        try:
            admit(state.graph)
        except GraphValidationError as e:
            state.dead_reason = f"validation rejected: {e}"
            self.stats.validation_rejects += 1
            self.stats.rejected[key] = state.dead_reason
            counter_inc("graph.validation_rejects")
            state.graph = None
            return
        if self.minimize:
            state.graph = self._minimize(key, state.graph)
        self.admitted[key] = state.graph

    def _minimize(self, key: str, graph: CompiledGraph) -> CompiledGraph:
        """Certified sync-elision of an admitted graph; never a gate."""
        from repro.graphs.minimize import minimize_graph
        try:
            mini, result = minimize_graph(graph)
            if mini is not graph:
                admit(mini)     # re-sign the smaller program
        except (AnalyzeError, GraphValidationError) as e:
            counter_inc("graph.minimize_skips")
            with span("graph.minimize", cat="graph") as h:
                h.set(skipped=str(e))
            return graph
        self.stats.waits_elided += result.waits_removed
        self.stats.records_elided += result.records_removed
        counter_inc("graph.waits_elided", result.waits_removed)
        return mini

    def _replay(self, executor, works: Sequence[LayerWork],
                state: _WorksState) -> float:
        assert state.graph is not None
        if state.exec is None:
            state.exec = instantiate(state.graph, executor.gpu)
        with span("graph.replay", cat="graph",
                  launches=state.graph.launches) as h:
            try:
                elapsed = state.exec.run()
            except FaultInjected as e:
                # The graph-launch fault site fires before any engine
                # state changes: fall back to eager for this pass only.
                self.stats.launch_fallbacks += 1
                counter_inc("graph.launch_fallbacks")
                h.set(fallback=str(e))
                return self._eager(executor, works, state,
                                   mode="fallback")
            state.modes.append("replay")
            self.stats.replays += 1
            counter_inc("graph.replays")
            h.set(elapsed_us=elapsed)
        return elapsed
