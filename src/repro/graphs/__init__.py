"""Graph-launch compilation: capture, validate, and replay dispatch.

The CUDA-Graphs analogue for the simulated runtime, built to remove the
paper's own reported loss cases: layers whose kernels are shorter than
the host launch latency (CIFAR10 conv1, Siamese conv1) are bound by the
launch pipeline (Eq. 7's ``ceil(T_Ki / T_launch)`` term), so dispatching
them kernel-by-kernel costs more than the concurrency wins back.  This
package captures a layer's (or whole net's) dispatch once, certifies it
hazard-free, and thereafter replays it with a *single* host launch:

* :mod:`repro.graphs.compiled` — :class:`CompiledGraph`, the serializable
  capture artifact with dense stream ids and per-kernel memory effects;
* :mod:`repro.graphs.capture` — stream-capture shims over the engine plus
  the memory-effect oracles (net-derived, synthetic, poisoned);
* :mod:`repro.graphs.admission` — hazard validation via the PR-5 race
  detector; no graph replays without a clean
  :class:`~repro.analyze.hazards.ProgramVerdict`;
* :mod:`repro.graphs.cache` — quarantine-safe persistence keyed by works
  fingerprint, mirroring the decision cache;
* :mod:`repro.graphs.replay` — instantiation onto a device and the
  one-``T_launch`` replay through ``GPU.launch_graph``;
* :mod:`repro.graphs.runtime` — the warmup -> capture -> replay
  lifecycle behind ``Executor.enable_graph_mode``, with transparent
  eager fallback on capture miss, validation rejection, or an injected
  ``graph_launch`` fault;
* :mod:`repro.graphs.report` — the ``python -m repro graph`` driver.

Convergence invariance is preserved twice over: statically (admission
proves every conflicting kernel pair ordered under all legal
interleavings) and dynamically (the ``repro.verify`` graph-replay
harness holds replay bit-identical to eager dispatch across seeds).
"""

from repro.graphs.admission import admit, validate_graph
from repro.graphs.cache import (
    FORMAT_VERSION,
    GraphCacheLoadReport,
    load_graphs_safe,
    save_graphs,
)
from repro.graphs.capture import (
    Effect,
    GraphCapture,
    KernelEffects,
    capture_works,
    effects_from_net,
    poisoned_effects,
    synthetic_effects,
)
from repro.graphs.compiled import (
    CompiledGraph,
    GraphNode,
    works_fingerprint,
)
from repro.graphs.replay import GraphExec, instantiate
from repro.graphs.report import (
    GRAPH_ACTIONS,
    GRAPH_PHASES,
    GraphReport,
    PhaseOutcome,
    run_graph_session,
)
from repro.graphs.runtime import (
    GraphModeRuntime,
    GraphModeStats,
    WARMUP_PASSES,
)

__all__ = [
    "CompiledGraph",
    "Effect",
    "FORMAT_VERSION",
    "GRAPH_ACTIONS",
    "GRAPH_PHASES",
    "GraphCacheLoadReport",
    "GraphCapture",
    "GraphExec",
    "GraphModeRuntime",
    "GraphModeStats",
    "GraphNode",
    "GraphReport",
    "KernelEffects",
    "PhaseOutcome",
    "WARMUP_PASSES",
    "admit",
    "capture_works",
    "effects_from_net",
    "instantiate",
    "load_graphs_safe",
    "poisoned_effects",
    "run_graph_session",
    "save_graphs",
    "synthetic_effects",
    "validate_graph",
    "works_fingerprint",
]
