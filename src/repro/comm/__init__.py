"""Inter-GPU communication substrate (for the distributed future-work item).

The paper's third future-work direction is "a distributed implementation of
the proposed framework".  This package provides the cost models needed to
explore that on the simulator:

* :mod:`repro.comm.interconnect` — link models (PCIe 3.0, NVLink) with
  bandwidth + latency;
* :mod:`repro.comm.allreduce` — gradient-synchronization algorithms (ring
  all-reduce as in NCCL, and a parameter-server reduce+broadcast baseline).

:mod:`repro.runtime.data_parallel` builds data-parallel training on top.
"""

from repro.comm.interconnect import Interconnect, PCIE3, NVLINK1, NVLINK2
from repro.comm.allreduce import (
    ring_allreduce_time_us,
    parameter_server_time_us,
    AllReduceModel,
)

__all__ = [
    "Interconnect",
    "PCIE3",
    "NVLINK1",
    "NVLINK2",
    "ring_allreduce_time_us",
    "parameter_server_time_us",
    "AllReduceModel",
]
