"""Gradient-synchronization cost models.

Ring all-reduce (NCCL's algorithm): each of ``n`` workers sends and receives
``2 (n-1) / n`` of the payload in ``2 (n-1)`` pipelined steps::

    T = 2 (n-1) * latency + 2 (n-1)/n * bytes / bandwidth

Parameter-server baseline: workers push gradients to one root and pull the
averaged parameters back; the root's link is the bottleneck::

    T = 2 * (n-1) * (latency + bytes / bandwidth)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.interconnect import Interconnect
from repro.errors import ReproError


def ring_allreduce_time_us(nbytes: float, workers: int,
                           link: Interconnect) -> float:
    """Time for one ring all-reduce of ``nbytes`` over ``workers`` GPUs."""
    if workers < 1:
        raise ReproError("workers must be >= 1")
    if workers == 1:
        return 0.0
    steps = 2 * (workers - 1)
    payload = 2.0 * (workers - 1) / workers * nbytes
    return steps * link.latency_us + payload / (link.bandwidth_gbps * 1e3)


def parameter_server_time_us(nbytes: float, workers: int,
                             link: Interconnect) -> float:
    """Time for a central reduce + broadcast of ``nbytes``."""
    if workers < 1:
        raise ReproError("workers must be >= 1")
    if workers == 1:
        return 0.0
    one_way = link.transfer_time_us(nbytes)
    return 2.0 * (workers - 1) * one_way


@dataclass(frozen=True)
class AllReduceModel:
    """A chosen algorithm + link, queried per gradient exchange."""

    link: Interconnect
    algorithm: str = "ring"    # "ring" or "ps"

    def time_us(self, nbytes: float, workers: int) -> float:
        if self.algorithm == "ring":
            return ring_allreduce_time_us(nbytes, workers, self.link)
        if self.algorithm == "ps":
            return parameter_server_time_us(nbytes, workers, self.link)
        raise ReproError(f"unknown all-reduce algorithm {self.algorithm!r}")
