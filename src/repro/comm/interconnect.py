"""Inter-GPU link models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class Interconnect:
    """A point-to-point GPU link.

    ``bandwidth_gbps`` is the effective unidirectional payload bandwidth in
    GB/s; ``latency_us`` the per-message setup cost.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0 or self.latency_us < 0:
            raise ReproError(f"invalid interconnect {self}")

    def transfer_time_us(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across the link once."""
        if nbytes < 0:
            raise ReproError("cannot transfer a negative number of bytes")
        return self.latency_us + nbytes / (self.bandwidth_gbps * 1e3)


#: PCIe 3.0 x16: ~16 GB/s theoretical, ~12 GB/s effective.
PCIE3 = Interconnect("PCIe3 x16", bandwidth_gbps=12.0, latency_us=5.0)
#: NVLink 1.0 (P100): 4 bricks, ~20 GB/s effective per direction per pair.
NVLINK1 = Interconnect("NVLink 1.0", bandwidth_gbps=18.0, latency_us=2.0)
#: NVLink 2.0 (V100): ~24 GB/s effective per brick, commonly 2 bricks/pair.
NVLINK2 = Interconnect("NVLink 2.0", bandwidth_gbps=45.0, latency_us=2.0)
