"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``devices``
    Print the simulated GPU catalog (paper Table 3 + extras).
``networks``
    Print the evaluation networks and their Table 5 convolution layers.
``experiments``
    List every reproducible table/figure experiment.
``run <experiment> [...]``
    Run experiments by id (e.g. ``run fig9 table6``) and print their
    result tables.  ``run all`` runs everything (slow: tens of minutes).
    ``--faults plan.json`` runs them under a deterministic fault-injection
    plan (see ``docs/fault_injection.md``) and prints the fault summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro._version import __version__


def _experiment_registry() -> dict[str, Callable]:
    # imported lazily: most bench modules pull the full stack
    from repro.bench.table1 import run_table1
    from repro.bench.fig2 import run_fig2
    from repro.bench.fig3 import run_fig3
    from repro.bench.fig4 import run_fig4
    from repro.bench.fig7 import run_fig7
    from repro.bench.fig8 import run_fig8
    from repro.bench.fig9 import run_fig9
    from repro.bench.fig10 import run_fig10
    from repro.bench.fig11 import run_fig11
    from repro.bench.table6 import run_table6
    from repro.bench.ablations import run_ablations
    from repro.bench.fusion_ablation import run_fusion_ablation
    from repro.bench.graph_ablation import run_graph_ablation
    from repro.bench.analyzer_comparison import run_analyzer_comparison
    from repro.bench.mps_comparison import run_mps_comparison

    return {
        "table1": run_table1,
        "fig2": run_fig2,
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "table6": run_table6,
        "ablations": run_ablations,
        "fusion": run_fusion_ablation,
        "graph": run_graph_ablation,
        "analyzers": run_analyzer_comparison,
        "mps": run_mps_comparison,
    }


def cmd_devices(_args) -> int:
    from repro.gpusim.device import DEVICE_CATALOG, PAPER_DEVICES
    for name, props in DEVICE_CATALOG.items():
        marker = "*" if name in PAPER_DEVICES else " "
        print(f" {marker} {props.describe()}")
    print(" (* = used in the paper's evaluation)")
    return 0


def cmd_networks(_args) -> int:
    from repro.nn.zoo import NETWORKS, NETWORK_ORDER
    for name in NETWORK_ORDER:
        entry = NETWORKS[name]
        print(f"{name} (batch {entry.batch}, dataset {entry.dataset}):")
        for cfg in entry.convs:
            print(f"    {cfg.describe()}")
    return 0


def cmd_selftest(args) -> int:
    from repro.gpusim.device import DEVICE_CATALOG, get_device
    from repro.gpusim.selftest import run_selftest
    names = args.device or list(DEVICE_CATALOG)
    for name in names:
        print(run_selftest(get_device(name)).render())
    return 0


def cmd_experiments(_args) -> int:
    for key, fn in _experiment_registry().items():
        doc = (fn.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {key:10s} {summary}")
    return 0


def cmd_run(args) -> int:
    from contextlib import nullcontext

    registry = _experiment_registry()
    targets = list(args.experiment)
    if targets == ["all"]:
        targets = list(registry)
    unknown = [t for t in targets if t not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    chaos = nullcontext(None)
    if getattr(args, "faults", None):
        from repro.errors import FaultPlanError
        from repro.faults import FaultPlan, chaos_session
        try:
            plan = FaultPlan.load(args.faults)
        except FaultPlanError as e:
            print(f"bad fault plan: {e}", file=sys.stderr)
            return 2
        chaos = chaos_session(plan)
    with chaos as injector:
        for target in targets:
            t0 = time.perf_counter()
            result = registry[target]()
            elapsed = time.perf_counter() - t0
            print(result.render())
            print(f"  [{target} regenerated in {elapsed:.1f}s]\n")
        if injector is not None:
            summary = injector.summary() or "none fired"
            print(f"  [fault injection: {summary}; "
                  f"{injector.fires} fault(s) over "
                  f"{sum(injector.site_calls.values())} site calls]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GLP4NN reproduction (ICPP 2018) — simulated-GPU "
                    "experiment runner",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("devices", help="list the simulated GPU catalog"
                   ).set_defaults(fn=cmd_devices)
    sub.add_parser("networks", help="list evaluation networks (Table 5)"
                   ).set_defaults(fn=cmd_networks)
    sub.add_parser("experiments", help="list reproducible experiments"
                   ).set_defaults(fn=cmd_experiments)
    run = sub.add_parser("run", help="run experiments by id")
    run.add_argument("experiment", nargs="+",
                     help="experiment ids (or 'all')")
    run.add_argument("--faults", metavar="PLAN.json", default=None,
                     help="run under a deterministic fault-injection plan "
                          "(docs/fault_injection.md)")
    run.set_defaults(fn=cmd_run)
    selftest = sub.add_parser(
        "selftest", help="micro-benchmark a simulated device"
    )
    selftest.add_argument("device", nargs="*",
                          help="device names (default: whole catalog)")
    selftest.set_defaults(fn=cmd_selftest)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
