"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``devices``
    Print the simulated GPU catalog (paper Table 3 + extras).
``networks``
    Print the evaluation networks and their Table 5 convolution layers.
``experiments``
    List every reproducible table/figure experiment.
``run <experiment> [...]``
    Run experiments by id (e.g. ``run fig9 table6``) and print their
    result tables.  ``run all`` runs everything (slow: tens of minutes).
    ``--faults plan.json`` runs them under a deterministic fault-injection
    plan (see ``docs/fault_injection.md``) and prints the fault summary.
``serve``
    Simulated inference serving: generate an open-loop arrival trace and
    serve it through one or all executors with dynamic batching and
    SLO-aware admission control (see ``docs/serving.md``), e.g.
    ``serve --net cifar10 --device titan-xp --rps 500 --slo-ms 10``.
``fleet``
    Fault-tolerant multi-replica serving: sweep replica counts over one
    arrival trace, clean and under a chaos fault plan, and report the
    fleet-wide p99 vs. replica count (see ``docs/fleet.md``), e.g.
    ``fleet --net lenet --replicas 1,2,4 --hedge-ms 1.5``.
``trace <scenario> [-o trace.json]``
    Run a canned deterministic scenario with span/metrics recording on and
    export a merged host + device Chrome/Perfetto trace (see
    ``docs/observability.md``).  ``trace`` with no scenario lists the
    available ones.
``verify [--network N --seed S --rounds R --replay FILE]``
    Convergence-invariance verification (see ``docs/verification.md``):
    differential equivalence across every executor, schedule fuzzing with
    witness shrinking, and fault-plan fuzzing.  ``--replay witness.json``
    re-executes a saved witness and exits 1 if it still reproduces.
    ``verify --only engine`` replays the engine-equivalence goldens
    (see ``docs/engine_perf.md``) and exits 1 on any bit divergence.
``bench <target>``
    Wall-clock simulator benchmarks (see ``docs/engine_perf.md``):
    ``bench engine`` measures events/sec on synthetic DAG and conv
    workloads plus serving, fuzzing and certification throughput with
    warmup and median-of-N repetition, e.g.
    ``bench engine --out BENCH_9.json --repeats 5``.
``graph [capture|replay|report]``
    Graph-launch compilation (see ``docs/graph_launch.md``): capture a
    network's dispatch into a compiled graph, certify it hazard-free, and
    replay it with one amortized host launch per pass, e.g.
    ``graph replay --net cifar10 --device p100``.  ``--cache`` persists
    admitted graphs; ``--inject-hazard`` proves the eager fallback.
``interop [plan|run|report]``
    Opara-mode inter-operator stream planning (see ``docs/inter_op.md``):
    plan a GoogLeNet inception unit under layer-serial, round-robin,
    chain-affine and opara policies, certify every plan hazard-free, and
    execute it eagerly and as one graph launch, e.g.
    ``interop run --unit 5b --policy opara``.  ``--inject-hazard`` proves
    the chain-affine fallback.
``analyze [hazards|lint|all]``
    Static analysis (see ``docs/static_analysis.md``): certify dispatch
    plans free of stream hazards (RAW/WAR/WAW pairs not ordered by
    happens-before) and lint the source tree for determinism bugs.
    ``--mutate-seed S`` plants a seeded sync-deletion mutant, reports its
    two-kernel witness, and saves a replayable schedule witness for the
    ``verify --replay`` cross-check.
``selftest [device ...]``
    Micro-benchmark simulated devices against their spec sheets.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro._version import __version__


def _experiment_registry() -> dict[str, Callable]:
    # imported lazily: most bench modules pull the full stack
    from repro.bench.table1 import run_table1
    from repro.bench.fig2 import run_fig2
    from repro.bench.fig3 import run_fig3
    from repro.bench.fig4 import run_fig4
    from repro.bench.fig7 import run_fig7
    from repro.bench.fig8 import run_fig8
    from repro.bench.fig9 import run_fig9
    from repro.bench.fig10 import run_fig10
    from repro.bench.fig11 import run_fig11
    from repro.bench.table6 import run_table6
    from repro.bench.ablations import run_ablations
    from repro.bench.fusion_ablation import run_fusion_ablation
    from repro.bench.graph_ablation import run_graph_ablation
    from repro.bench.interop_plans import run_interop_plans_bench
    from repro.bench.sync_elision import run_sync_elision_bench
    from repro.bench.analyzer_comparison import run_analyzer_comparison
    from repro.bench.mps_comparison import run_mps_comparison

    return {
        "table1": run_table1,
        "fig2": run_fig2,
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "table6": run_table6,
        "ablations": run_ablations,
        "fusion": run_fusion_ablation,
        "graph": run_graph_ablation,
        "interop": run_interop_plans_bench,
        "elision": run_sync_elision_bench,
        "analyzers": run_analyzer_comparison,
        "mps": run_mps_comparison,
    }


def cmd_devices(_args) -> int:
    from repro.gpusim.device import DEVICE_CATALOG, PAPER_DEVICES
    for name, props in DEVICE_CATALOG.items():
        marker = "*" if name in PAPER_DEVICES else " "
        print(f" {marker} {props.describe()}")
    print(" (* = used in the paper's evaluation)")
    return 0


def cmd_networks(_args) -> int:
    from repro.nn.zoo import NETWORKS, NETWORK_ORDER
    for name in NETWORK_ORDER:
        entry = NETWORKS[name]
        print(f"{name} (batch {entry.batch}, dataset {entry.dataset}):")
        for cfg in entry.convs:
            print(f"    {cfg.describe()}")
    return 0


def cmd_selftest(args) -> int:
    from repro.gpusim.device import DEVICE_CATALOG, get_device
    from repro.gpusim.selftest import run_selftest
    names = args.device or list(DEVICE_CATALOG)
    for name in names:
        print(run_selftest(get_device(name)).render())
    return 0


def cmd_experiments(_args) -> int:
    for key, fn in _experiment_registry().items():
        doc = (fn.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {key:10s} {summary}")
    return 0


def cmd_run(args) -> int:
    from contextlib import nullcontext

    registry = _experiment_registry()
    targets = list(args.experiment)
    if targets == ["all"]:
        targets = list(registry)
    unknown = [t for t in targets if t not in registry]
    if unknown:
        import difflib
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        suggestions = sorted({
            match
            for t in unknown
            for match in difflib.get_close_matches(t, registry, n=3,
                                                   cutoff=0.5)
        })
        if suggestions:
            print(f"did you mean: {', '.join(suggestions)}?",
                  file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    chaos = nullcontext(None)
    if getattr(args, "faults", None):
        from repro.errors import FaultPlanError
        from repro.faults import FaultPlan, chaos_session
        try:
            plan = FaultPlan.load(args.faults)
        except FaultPlanError as e:
            print(f"bad fault plan: {e}", file=sys.stderr)
            return 2
        chaos = chaos_session(plan)
    with chaos as injector:
        for target in targets:
            t0 = time.perf_counter()
            result = registry[target]()
            elapsed = time.perf_counter() - t0
            print(result.render())
            print(f"  [{target} regenerated in {elapsed:.1f}s]\n")
        if injector is not None:
            summary = injector.summary() or "none fired"
            print(f"  [fault injection: {summary}; "
                  f"{injector.fires} fault(s) over "
                  f"{sum(injector.site_calls.values())} site calls]")
    return 0


def cmd_serve(args) -> int:
    from contextlib import nullcontext

    from repro.errors import ReproError
    from repro.serve import (
        EXECUTOR_KINDS,
        comparison_table,
        make_trace,
        serve_trace,
    )
    from repro.serve.queue import OverflowPolicy, QueueOrder

    kinds = (list(EXECUTOR_KINDS) if args.executor == "all"
             else [args.executor])
    chaos = nullcontext(None)
    if args.faults:
        from repro.errors import FaultPlanError
        from repro.faults import FaultPlan, chaos_session
        try:
            plan = FaultPlan.load(args.faults)
        except FaultPlanError as e:
            print(f"bad fault plan: {e}", file=sys.stderr)
            return 2
        chaos = chaos_session(plan)
    injector = None
    try:
        trace = make_trace(args.trace, rps=args.rps,
                           duration_us=args.duration_ms * 1e3,
                           slo_us=args.slo_ms * 1e3, seed=args.seed)
        reports = []
        with chaos as injector:
            for kind in kinds:
                reports.append(serve_trace(
                    args.net, args.device, kind, trace,
                    fixed_streams=args.streams,
                    max_batch=args.max_batch,
                    max_wait_us=args.max_wait_us,
                    queue_capacity=args.queue_capacity,
                    overflow=OverflowPolicy(args.overflow),
                    order=QueueOrder(args.order),
                    slo_admission=not args.no_admission,
                    seed=args.seed,
                    warmup=not args.no_warmup,
                ))
    except ReproError as e:
        print(f"serve failed: {e}", file=sys.stderr)
        return 2
    fmt = "json" if args.json else args.format
    if fmt == "json":
        for report in reports:
            print(report.to_json())
    else:
        for report in reports:
            print(report.render())
            print()
        if len(reports) > 1:
            print(comparison_table(reports))
    if injector is not None:
        summary = injector.summary() or "none fired"
        print(f"  [fault injection: {summary}; {injector.fires} fault(s) "
              f"over {sum(injector.site_calls.values())} site calls]")
    return 0


def cmd_fleet(args) -> int:
    import difflib
    from pathlib import Path

    from repro.errors import FaultPlanError, ReproError
    from repro.fleet import fleet_sweep
    from repro.gpusim.device import DEVICE_CATALOG
    from repro.reporting import emit
    from repro.serve.engine import SERVE_NETS, resolve_device, resolve_net
    from repro.serve.request import make_trace

    try:
        resolve_net(args.net)
    except ReproError as e:
        print(f"fleet failed: {e}", file=sys.stderr)
        matches = difflib.get_close_matches(args.net.lower(), SERVE_NETS,
                                            n=3, cutoff=0.5)
        if matches:
            print(f"did you mean: {', '.join(matches)}?", file=sys.stderr)
        return 2
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    if not devices:
        print("fleet failed: no devices given", file=sys.stderr)
        return 2
    for dev in devices:
        try:
            resolve_device(dev)
        except ReproError as e:
            print(f"fleet failed: {e}", file=sys.stderr)
            matches = difflib.get_close_matches(
                dev.lower(), [k.lower() for k in DEVICE_CATALOG],
                n=3, cutoff=0.5)
            if matches:
                print(f"did you mean: {', '.join(matches)}?",
                      file=sys.stderr)
            return 2
    try:
        counts = sorted({int(x) for x in args.replicas.split(",")
                         if x.strip()})
    except ValueError:
        print(f"fleet failed: bad --replicas {args.replicas!r} "
              "(expected e.g. '1,2,4')", file=sys.stderr)
        return 2
    if not counts:
        print("fleet failed: no replica counts given", file=sys.stderr)
        return 2
    chaos_plan = None
    if args.faults:
        from repro.faults import FaultPlan
        try:
            chaos_plan = FaultPlan.load(args.faults)
        except FaultPlanError as e:
            print(f"bad fault plan: {e}", file=sys.stderr)
            return 2
    try:
        trace = make_trace(args.trace, rps=args.rps,
                           duration_us=args.duration_ms * 1e3,
                           slo_us=args.slo_ms * 1e3, seed=args.seed)
        report = fleet_sweep(
            args.net, devices, args.executor, counts, trace,
            chaos=not args.no_chaos, chaos_plan=chaos_plan,
            router_policy=args.router, seed=args.seed,
            max_batch=args.max_batch,
            hedge_after_us=(None if args.hedge_ms is None
                            else args.hedge_ms * 1e3),
        )
    except ReproError as e:
        print(f"fleet failed: {e}", file=sys.stderr)
        return 2
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n",
                                     encoding="utf-8")
    print(emit(report, args.format))
    return 0


def cmd_trace(args) -> int:
    from repro.errors import ReproError
    from repro.obs.scenarios import TRACE_SCENARIOS, run_scenario

    def _list() -> None:
        for name, fn in TRACE_SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"  {name:8s} {doc[0] if doc else ''}")

    if args.experiment is None:
        _list()
        return 0
    try:
        capture = run_scenario(args.experiment)
    except ReproError as e:
        print(f"trace failed: {e}", file=sys.stderr)
        _list()
        return 2
    capture.write(args.out)
    print(f"{capture.scenario}: {len(capture.spans)} host span(s) + "
          f"{len(capture.timeline)} device slice(s) -> {args.out}")
    print("  open in https://ui.perfetto.dev or chrome://tracing")
    return 0


#: ``bench`` wall-clock benchmark targets.
BENCH_TARGETS = ("engine",)


def cmd_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.bench.engine_throughput import write_bench

    if args.target not in BENCH_TARGETS:
        print(f"unknown bench target: {args.target}", file=sys.stderr)
        print(f"available: {', '.join(BENCH_TARGETS)}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = json.loads(
                Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench failed: bad --baseline {args.baseline!r}: {e}",
                  file=sys.stderr)
            return 2
    path = write_bench(args.out, repeats=args.repeats, quick=args.quick,
                       baseline=baseline)
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    for name, entry in doc["metrics"].items():
        line = f"  {name:26s} {entry['median']:>12,.2f} {entry['unit']}"
        speedup = doc.get("speedup_vs_baseline", {}).get(name)
        if speedup is not None:
            line += f"   ({speedup}x vs baseline)"
        print(line)
    print(f"  [written to {path}]")
    return 0


def cmd_verify(args) -> int:
    from repro.errors import ReproError
    from repro.verify import (
        VerifyReport,
        fuzz_faults,
        fuzz_schedules,
        replay_witness,
        run_differential,
        verify_elision,
        verify_graph_replay,
    )
    from repro.verify.graph_replay import DEFAULT_ITERATIONS

    if args.replay:
        try:
            replay = replay_witness(args.replay)
        except ReproError as e:
            print(f"replay failed: {e}", file=sys.stderr)
            return 2
        print(replay.render())
        return 1 if replay.reproduced else 0

    if args.only == "engine":
        # Engine-equivalence mode: bit-identity of the optimized engine
        # against the recorded goldens, independent of the network args.
        from repro.verify.engine_equiv import run_engine_equivalence
        try:
            equiv = run_engine_equivalence()
        except ReproError as e:
            print(f"verify failed: {e}", file=sys.stderr)
            return 2
        print(equiv.render())
        return 0 if equiv.ok else 1

    parts = (["differential", "schedule", "faults", "graph", "elision"]
             if args.only == "all" else [args.only])
    report = VerifyReport(network=args.network, device=args.device,
                          seed=args.seed)
    try:
        if "differential" in parts:
            report.differential = run_differential(
                network=args.network, device=args.device, seed=args.seed,
                iterations=args.iterations, batch=args.batch,
            )
        if "schedule" in parts:
            report.schedule = fuzz_schedules(
                network=args.network, device=args.device, seed=args.seed,
                rounds=args.rounds, batch=args.batch,
                witness_path=args.witness,
            )
        if "faults" in parts:
            report.faults = fuzz_faults(
                network=args.network, device=args.device, seed=args.seed,
                rounds=args.fault_rounds, batch=args.batch,
                iterations=args.iterations,
            )
        if "graph" in parts:
            # Graph replay needs warmup + capture + replays per seed.
            report.graph = verify_graph_replay(
                network=args.network, device=args.device,
                seeds=(args.seed, args.seed + 1),
                iterations=max(args.iterations, DEFAULT_ITERATIONS),
                batch=args.batch,
            )
        if "elision" in parts:
            # Minimized programs must replay exactly like the originals.
            report.elision = verify_elision(
                network=args.network, device=args.device,
                seeds=(args.seed, args.seed + 1),
                iterations=max(args.iterations, DEFAULT_ITERATIONS),
                batch=args.batch,
            )
    except ReproError as e:
        print(f"verify failed: {e}", file=sys.stderr)
        return 2
    finally:
        # Write the report even on failure paths: CI publishes it as the
        # divergence artifact.
        if args.report:
            report.save(args.report)
    from repro.reporting import emit
    print(emit(report, "json" if args.json else args.format))
    return 0 if report.ok else 1


def cmd_graph(args) -> int:
    import difflib

    from repro.errors import ReproError
    from repro.graphs import run_graph_session
    from repro.reporting import emit
    from repro.serve.engine import SERVE_NETS, resolve_net

    try:
        resolve_net(args.net)
    except ReproError as e:
        print(f"graph failed: {e}", file=sys.stderr)
        matches = difflib.get_close_matches(args.net.lower(), SERVE_NETS,
                                            n=3, cutoff=0.5)
        if matches:
            print(f"did you mean: {', '.join(matches)}?", file=sys.stderr)
        return 2
    try:
        report = run_graph_session(
            action=args.action, network=args.net, device=args.device,
            phase=args.phase, batch=args.batch, seed=args.seed,
            executor=args.executor, streams=args.streams,
            iterations=args.iters, inject_hazard=args.inject_hazard,
            cache=args.cache, load_cache=args.load_cache,
        )
    except ReproError as e:
        print(f"graph failed: {e}", file=sys.stderr)
        return 2
    if args.report:
        report.save(args.report)
    print(emit(report, "json" if args.json else args.format))
    return 0 if report.ok else 1


def cmd_interop(args) -> int:
    import difflib

    from repro.errors import ReproError
    from repro.interop import PLAN_POLICIES, run_interop_session
    from repro.interop.workloads import INCEPTION_UNITS
    from repro.reporting import emit

    if args.policy != "all" and args.policy not in PLAN_POLICIES:
        print(f"unknown policy: {args.policy}", file=sys.stderr)
        matches = difflib.get_close_matches(args.policy, PLAN_POLICIES,
                                            n=3, cutoff=0.5)
        if matches:
            print(f"did you mean: {', '.join(matches)}?", file=sys.stderr)
        print(f"available: {', '.join(PLAN_POLICIES)}, all",
              file=sys.stderr)
        return 2
    if args.unit not in INCEPTION_UNITS:
        print(f"unknown inception unit: {args.unit}", file=sys.stderr)
        print(f"available: {', '.join(sorted(INCEPTION_UNITS))}",
              file=sys.stderr)
        return 2
    try:
        report = run_interop_session(
            action=args.action, unit=args.unit, batch=args.batch,
            device=args.device, streams=args.streams, policy=args.policy,
            inject_hazard=args.inject_hazard,
        )
    except ReproError as e:
        print(f"interop failed: {e}", file=sys.stderr)
        return 2
    if args.report:
        report.save(args.report)
    print(emit(report, args.format))
    return 0 if report.ok else 1


#: ``analyze`` sub-analyses, in run order.
ANALYZE_KINDS = ("hazards", "deadlock", "minimize", "lint", "all")


def _analyze_mutant(args) -> int:
    """The seeded cross-check probe: plant, flag, and save a mutant."""
    from repro.analyze import (
        AnalyzeReport,
        HazardReport,
        ProgramVerdict,
        derive_accesses,
        find_flagged_mutant,
        program_from_schedule_plan,
    )
    from repro.reporting import emit
    from repro.serve.engine import resolve_net
    from repro.verify.schedule import (
        ScheduleRunner,
        identity_plan,
        works_for,
    )
    from repro.verify.witness import ScheduleWitness

    network = "cifar10" if args.network == "all" else args.network
    net = resolve_net(network)(batch=args.batch, seed=args.seed)
    works = works_for(network, args.batch, args.seed)
    accesses = derive_accesses(net, works)
    plan = identity_plan(works, network, args.device, args.batch,
                         args.seed, pool_size=args.pool)
    runner = ScheduleRunner(works, pool_size=args.pool)
    dynamic: dict = {}

    def confirm(cand) -> bool:
        result = runner.run(cand, device=args.device)
        if result.violations:
            dynamic["violations"] = list(result.violations)
            return True
        return False

    mutant, hazards = find_flagged_mutant(
        works, accesses, plan, seed=args.mutate_seed, confirm=confirm)
    program = program_from_schedule_plan(works, accesses, mutant)
    verdict = ProgramVerdict(
        program=program.name, network=network, plan="mutant",
        ops=len(program), launches=len(program.launches()),
        hazards=hazards)
    report = AnalyzeReport(hazards=HazardReport(
        device=args.device, pool_size=args.pool, batch=args.batch,
        seed=args.seed, entries=[verdict]))
    witness_path = (args.witness
                    or f"analyze_mutant_{network}_s{args.mutate_seed}.json")
    ScheduleWitness(
        plan=mutant, violations=dynamic.get("violations", []),
        original_layers=len(plan.layers),
    ).save(witness_path)
    if args.sarif:
        report.save_sarif(args.sarif)
    if args.report:
        report.save(args.report)
    print(emit(report, args.format))
    print(f"  [mutant witness -> {witness_path}; replay with "
          f"'python -m repro verify --replay {witness_path}']",
          file=sys.stderr)
    # A planted mutant *should* be flagged: exit 1, like any hazard.
    return 0 if report.ok else 1


def cmd_analyze(args) -> int:
    from repro.errors import ReproError

    if args.what not in ANALYZE_KINDS:
        import difflib
        print(f"unknown analysis: {args.what}", file=sys.stderr)
        suggestions = difflib.get_close_matches(args.what, ANALYZE_KINDS,
                                                n=3, cutoff=0.5)
        if suggestions:
            print(f"did you mean: {', '.join(suggestions)}?",
                  file=sys.stderr)
        print(f"available: {', '.join(ANALYZE_KINDS)}", file=sys.stderr)
        return 2

    from repro.analyze import (
        PLAN_KINDS,
        ZOO_NETWORKS,
        AnalyzeReport,
        analyze_deadlocks,
        analyze_networks,
        lint_paths,
        minimize_networks,
    )
    from repro.analyze.report import (
        check_baseline,
        load_baseline,
        save_baseline,
    )
    from repro.reporting import emit

    try:
        if args.mutate_seed is not None:
            return _analyze_mutant(args)
        report = AnalyzeReport()
        networks = (list(ZOO_NETWORKS) if args.network == "all"
                    else [args.network])
        plans = (list(PLAN_KINDS) if args.plan == "all"
                 else [args.plan])
        if args.what in ("hazards", "all"):
            report.hazards = analyze_networks(
                networks, plans=plans, device=args.device,
                pool_size=args.pool, batch=args.batch, seed=args.seed)
        if args.what in ("deadlock", "all"):
            report.deadlock = analyze_deadlocks(
                networks, plans=plans, device=args.device,
                pool_size=args.pool, batch=args.batch, seed=args.seed,
                include_interop=not args.no_interop)
        if args.what in ("minimize", "all"):
            report.elision = minimize_networks(
                networks, plans=plans, device=args.device,
                pool_size=args.pool, batch=args.batch, seed=args.seed,
                include_interop=not args.no_interop)
        if args.cross_check:
            from repro.analyze.inject import default_cross_check
            report.crosscheck = default_cross_check(
                seed=args.seed, device=args.device,
                networks=[n for n in networks if n in ZOO_NETWORKS][:1]
                or ["cifar10"],
                pool_size=args.pool, batch=min(args.batch, 2))
        if args.what in ("lint", "all"):
            import repro
            from pathlib import Path
            paths = args.paths or [Path(repro.__file__).parent]
            report.lint = lint_paths(paths)
    except ReproError as e:
        print(f"analyze failed: {e}", file=sys.stderr)
        return 2
    if args.sarif:
        report.save_sarif(args.sarif)
    if args.report:
        report.save(args.report)
    print(emit(report, args.format))
    if args.update_baseline:
        target = args.baseline or "results/analyze_baseline.json"
        print(f"  [baseline -> {save_baseline(report, target)}]",
              file=sys.stderr)
    elif args.baseline:
        try:
            problems = check_baseline(report, load_baseline(args.baseline))
        except ReproError as e:
            print(f"analyze failed: {e}", file=sys.stderr)
            return 2
        if problems:
            print("baseline gate FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        # The gate is the verdict: recorded findings are waived.
        print(f"  [baseline gate OK vs {args.baseline}]", file=sys.stderr)
        return 0
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GLP4NN reproduction (ICPP 2018) — simulated-GPU "
                    "experiment runner",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("devices", help="list the simulated GPU catalog"
                   ).set_defaults(fn=cmd_devices)
    sub.add_parser("networks", help="list evaluation networks (Table 5)"
                   ).set_defaults(fn=cmd_networks)
    sub.add_parser("experiments", help="list reproducible experiments"
                   ).set_defaults(fn=cmd_experiments)
    run = sub.add_parser("run", help="run experiments by id")
    run.add_argument("experiment", nargs="+",
                     help="experiment ids (or 'all')")
    run.add_argument("--faults", metavar="PLAN.json", default=None,
                     help="run under a deterministic fault-injection plan "
                          "(docs/fault_injection.md)")
    run.set_defaults(fn=cmd_run)
    serve = sub.add_parser(
        "serve",
        help="simulated inference serving (dynamic batching + SLOs)",
    )
    serve.add_argument("--net", default="cifar10",
                       help="network to serve (default: cifar10)")
    serve.add_argument("--device", default="titan-xp",
                       help="simulated GPU (default: titan-xp)")
    serve.add_argument("--executor", default="all",
                       choices=["all", "naive", "fixed", "glp4nn"],
                       help="executor(s) to serve with (default: all)")
    serve.add_argument("--rps", type=float, default=500.0,
                       help="offered arrival rate, requests/s (default: 500)")
    serve.add_argument("--slo-ms", type=float, default=10.0,
                       help="per-request latency SLO, ms (default: 10)")
    serve.add_argument("--duration-ms", type=float, default=50.0,
                       help="trace duration, ms of simulated time "
                            "(default: 50)")
    serve.add_argument("--trace", default="poisson",
                       choices=["poisson", "bursty"],
                       help="arrival process (default: poisson)")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace / lowering seed (default: 0)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="dynamic batching: max batch size (default: 8)")
    serve.add_argument("--max-wait-us", type=float, default=200.0,
                       help="dynamic batching: max queue wait before a "
                            "partial batch fires, µs (default: 200)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="admission queue capacity (default: 64)")
    serve.add_argument("--overflow", default="reject-newest",
                       choices=["reject-newest", "drop-oldest"],
                       help="full-queue policy (default: reject-newest)")
    serve.add_argument("--order", default="fifo", choices=["fifo", "edf"],
                       help="batch formation order (default: fifo)")
    serve.add_argument("--streams", type=int, default=4,
                       help="stream count for the fixed executor "
                            "(default: 4)")
    serve.add_argument("--no-admission", action="store_true",
                       help="disable SLO-aware admission control")
    serve.add_argument("--no-warmup", action="store_true",
                       help="charge profiling/lowering to the first "
                            "requests instead of warming up")
    serve.add_argument("--json", action="store_true",
                       help="print reports as JSON (alias for "
                            "--format json)")
    serve.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="serve under a deterministic fault-injection "
                            "plan (docs/fault_injection.md)")
    from repro.reporting import add_format_argument
    add_format_argument(serve)
    serve.set_defaults(fn=cmd_serve)
    fleet = sub.add_parser(
        "fleet",
        help="fault-tolerant multi-replica serving fleet "
             "(p99 vs. replica count, clean + chaos)",
    )
    fleet.add_argument("--net", default="lenet",
                       help="network to serve (default: lenet)")
    fleet.add_argument("--devices", default="titan-xp",
                       help="comma-separated catalog devices, cycled "
                            "across replicas (default: titan-xp)")
    fleet.add_argument("--executor", default="fixed",
                       choices=["naive", "fixed", "glp4nn"],
                       help="per-replica executor (default: fixed)")
    fleet.add_argument("--replicas", default="1,2,4",
                       help="comma-separated replica counts to sweep "
                            "(default: 1,2,4)")
    fleet.add_argument("--router", default="least-loaded",
                       choices=["least-loaded", "p2c"],
                       help="front-end routing policy "
                            "(default: least-loaded)")
    fleet.add_argument("--rps", type=float, default=4000.0,
                       help="offered arrival rate, requests/s "
                            "(default: 4000)")
    fleet.add_argument("--slo-ms", type=float, default=3.0,
                       help="per-request latency SLO, ms (default: 3)")
    fleet.add_argument("--duration-ms", type=float, default=6.0,
                       help="trace duration, ms of simulated time "
                            "(default: 6)")
    fleet.add_argument("--trace", default="poisson",
                       choices=["poisson", "bursty"],
                       help="arrival process (default: poisson)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="trace / fleet seed (default: 0)")
    fleet.add_argument("--max-batch", type=int, default=8,
                       help="per-replica max batch size (default: 8)")
    fleet.add_argument("--hedge-ms", type=float, default=None,
                       metavar="MS",
                       help="hedge requests still unfinished after MS ms "
                            "(off by default)")
    fleet.add_argument("--no-chaos", action="store_true",
                       help="clean sweep only: skip the chaos runs")
    fleet.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="chaos fault plan to use instead of the "
                            "default (docs/fault_injection.md)")
    fleet.add_argument("--report", metavar="OUT.json", default=None,
                       help="write the sweep report as JSON (CI artifact)")
    add_format_argument(fleet)
    fleet.set_defaults(fn=cmd_fleet)
    trace = sub.add_parser(
        "trace",
        help="export a merged host+device Perfetto trace of a scenario",
    )
    trace.add_argument("experiment", nargs="?", default=None,
                       help="scenario name (omit to list the available "
                            "scenarios)")
    trace.add_argument("-o", "--out", default="trace.json",
                       help="output path (default: trace.json)")
    trace.set_defaults(fn=cmd_trace)
    verify = sub.add_parser(
        "verify",
        help="convergence-invariance verification (differential + fuzzing)",
    )
    verify.add_argument("--network", default="cifar10",
                        help="zoo network to verify (default: cifar10)")
    verify.add_argument("--device", default="p100",
                        help="simulated GPU (default: p100)")
    verify.add_argument("--seed", type=int, default=0,
                        help="network / batch / fuzz seed (default: 0)")
    verify.add_argument("--rounds", type=int, default=25,
                        help="schedule-fuzz rounds (default: 25)")
    verify.add_argument("--fault-rounds", type=int, default=10,
                        help="fault-fuzz rounds (default: 10)")
    verify.add_argument("--iterations", type=int, default=2,
                        help="training iterations per path (default: 2)")
    verify.add_argument("--batch", type=int, default=8,
                        help="verification batch size (default: 8)")
    verify.add_argument("--only", default="all",
                        choices=["all", "differential", "schedule",
                                 "faults", "graph", "elision", "engine"],
                        help="run a single component (default: all); "
                             "'elision' checks minimized programs replay "
                             "identically; 'engine' checks the engine-"
                             "equivalence goldens (docs/engine_perf.md)")
    verify.add_argument("--replay", metavar="WITNESS.json", default=None,
                        help="replay a saved schedule witness; exit 1 if "
                             "it reproduces")
    verify.add_argument("--witness", metavar="OUT.json", default=None,
                        help="where to save a shrunk failure witness "
                             "(default: schedule_witness_<net>_...json)")
    verify.add_argument("--report", metavar="OUT.json", default=None,
                        help="write the combined report as JSON (written "
                             "even when verification fails)")
    verify.add_argument("--json", action="store_true",
                        help="print the report as JSON (alias for "
                             "--format json)")
    add_format_argument(verify)
    verify.set_defaults(fn=cmd_verify)
    graph = sub.add_parser(
        "graph",
        help="graph-launch compilation: capture, validate, replay "
             "dispatch programs",
    )
    graph.add_argument("action", nargs="?", default="replay",
                       choices=["capture", "replay", "report"],
                       help="capture (+ optionally persist), replay "
                            "(full lifecycle + timing), or report "
                            "(admission verdict only; default: replay)")
    graph.add_argument("--net", default="cifar10",
                       help="zoo network to capture (default: cifar10)")
    graph.add_argument("--device", default="p100",
                       help="simulated GPU (default: p100)")
    graph.add_argument("--phase", default="both",
                       choices=["forward", "backward", "both"],
                       help="which pass(es) to graph (default: both)")
    graph.add_argument("--batch", type=int, default=8,
                       help="batch size (default: 8)")
    graph.add_argument("--seed", type=int, default=0,
                       help="network seed (default: 0)")
    graph.add_argument("--executor", default="glp4nn",
                       help="executor kind to wrap (default: glp4nn)")
    graph.add_argument("--streams", type=int, default=4,
                       help="stream count for fixed executors "
                            "(default: 4)")
    graph.add_argument("--iters", type=int, default=4,
                       help="passes per phase: warmup + capture + "
                            "replays (default: 4)")
    graph.add_argument("--cache", metavar="GRAPHS.json", default=None,
                       help="graph cache file: written after capture, "
                            "read with --load-cache")
    graph.add_argument("--load-cache", action="store_true",
                       help="seed the runtime from --cache "
                            "(quarantine-safe load) instead of writing")
    graph.add_argument("--inject-hazard", action="store_true",
                       help="poison capture effects so admission must "
                            "reject and dispatch falls back to eager "
                            "(the CI fallback probe; report is OK iff "
                            "rejection happened)")
    graph.add_argument("--report", metavar="OUT.json", default=None,
                       help="also write the report as JSON")
    graph.add_argument("--json", action="store_true",
                       help="print the report as JSON (alias for "
                            "--format json)")
    add_format_argument(graph)
    graph.set_defaults(fn=cmd_graph)
    interop = sub.add_parser(
        "interop",
        help="Opara-mode inter-operator stream planning on inception "
             "units (plan, certify, execute)",
    )
    interop.add_argument("action", nargs="?", default="report",
                         choices=["plan", "run", "report"],
                         help="plan (certify only), run (eager + graph "
                              "launch), or report (run + resource "
                              "summary; default: report)")
    interop.add_argument("--unit", default="5b",
                         help="GoogLeNet inception unit: 5a or 5b "
                              "(default: 5b)")
    interop.add_argument("--batch", type=int, default=4,
                         help="batch size (default: 4)")
    interop.add_argument("--device", default="p100",
                         help="simulated GPU (default: p100)")
    interop.add_argument("--streams", type=int, default=0,
                         help="stream-pool size; 0 lets the kernel "
                              "analyzer size it (default: 0)")
    interop.add_argument("--policy", default="all",
                         help="planning policy: layer-serial, round-robin, "
                              "chain-affine, opara, or 'all' "
                              "(default: all)")
    interop.add_argument("--inject-hazard", action="store_true",
                         help="poison the requested plans' lowerings so "
                              "certification must reject them and fall "
                              "back to chain-affine (the CI fallback "
                              "probe; report is OK iff fallback happened)")
    interop.add_argument("--report", metavar="OUT.json", default=None,
                         help="also write the report as JSON")
    add_format_argument(interop)
    interop.set_defaults(fn=cmd_interop)
    analyze = sub.add_parser(
        "analyze",
        help="static analysis: stream-hazard detection + determinism lint",
    )
    analyze.add_argument("what", nargs="?", default="all",
                         help="analysis to run: hazards, deadlock, "
                              "minimize, lint, or all (default: all)")
    analyze.add_argument("--network", default="all",
                         help="zoo network(s) to certify, or 'all' "
                              "(default: all)")
    analyze.add_argument("--plan", default="round-robin",
                         help="executor plan(s): round-robin, multithread, "
                              "fused, data-parallel, or 'all' "
                              "(default: round-robin)")
    analyze.add_argument("--device", default="p100",
                         help="simulated GPU for lowering (default: p100)")
    analyze.add_argument("--pool", type=int, default=4,
                         help="stream pool size (default: 4)")
    analyze.add_argument("--batch", type=int, default=4,
                         help="batch size to lower (default: 4)")
    analyze.add_argument("--seed", type=int, default=0,
                         help="network / lowering seed (default: 0)")
    analyze.add_argument("--mutate-seed", type=int, default=None,
                         metavar="S",
                         help="plant a seeded sync-deletion mutant instead "
                              "of certifying; saves a replayable witness")
    analyze.add_argument("--witness", metavar="OUT.json", default=None,
                         help="where to save the mutant's schedule witness "
                              "(default: analyze_mutant_<net>_s<seed>.json)")
    analyze.add_argument("--paths", nargs="*", default=None,
                         help="files/directories to lint (default: the "
                              "installed repro package)")
    analyze.add_argument("--no-interop", action="store_true",
                         help="skip the interop plan producers in the "
                              "deadlock/minimize passes")
    analyze.add_argument("--cross-check", action="store_true",
                         help="also run the seeded fault-injection "
                              "cross-check: plant wait cycles and "
                              "redundant syncs; the detector/elider must "
                              "catch 100%% of them")
    analyze.add_argument("--baseline", metavar="BASELINE.json",
                         default=None,
                         help="findings-baseline file to gate against "
                              "(e.g. results/analyze_baseline.json); any "
                              "finding beyond the recorded counts fails, "
                              "recorded ones are waived")
    analyze.add_argument("--update-baseline", action="store_true",
                         help="rewrite --baseline (default: "
                              "results/analyze_baseline.json) from this "
                              "run instead of gating")
    analyze.add_argument("--sarif", metavar="OUT.sarif", default=None,
                         help="write a SARIF 2.1.0 log (CI artifact)")
    analyze.add_argument("--report", metavar="OUT.json", default=None,
                         help="write the combined report as JSON")
    add_format_argument(analyze)
    analyze.set_defaults(fn=cmd_analyze)
    bench = sub.add_parser(
        "bench",
        help="wall-clock simulator benchmarks (events/sec and friends)",
    )
    bench.add_argument("target", nargs="?", default="engine",
                       help="benchmark target: engine (default: engine)")
    bench.add_argument("--out", default="BENCH_9.json",
                       help="output JSON path (default: BENCH_9.json)")
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed samples per metric, median reported "
                            "(default: 5)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads for CI smoke runs")
    bench.add_argument("--baseline", metavar="BASELINE.json", default=None,
                       help="pre-optimization bench file to embed and "
                            "compute speedups against (default: keep the "
                            "baseline already recorded in --out)")
    bench.set_defaults(fn=cmd_bench)
    selftest = sub.add_parser(
        "selftest", help="micro-benchmark a simulated device"
    )
    selftest.add_argument("device", nargs="*",
                          help="device names (default: whole catalog)")
    selftest.set_defaults(fn=cmd_selftest)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
