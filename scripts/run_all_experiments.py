"""Run every experiment fresh and dump results/ (used to build EXPERIMENTS.md)."""
import os, time
os.environ["REPRO_RESULTS_DIR"] = "/root/repo/results"
t0 = time.time()

from repro.bench.table1 import run_table1
from repro.bench.fig2 import run_fig2
from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4
from repro.bench.fig7 import run_fig7
from repro.bench.fig8 import run_fig8
from repro.bench.fig9 import run_fig9
from repro.bench.fig10 import run_fig10
from repro.bench.fig11 import run_fig11
from repro.bench.table6 import run_table6
from repro.bench.ablations import run_ablations
from repro.bench.fusion_ablation import run_fusion_ablation
from repro.bench.graph_ablation import run_graph_ablation

for fn in (run_table1, run_fig3, run_fig9, run_fig8, run_fig10, run_table6,
           run_ablations, run_fusion_ablation, run_graph_ablation,
           run_fig2, run_fig4, run_fig11, run_fig7):
    r = fn()
    print(r.render())
    print(f"[{r.experiment} done at {time.time()-t0:.0f}s]\n", flush=True)
