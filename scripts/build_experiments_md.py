"""Assemble EXPERIMENTS.md from the dumped results/ tables."""

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on the
simulated substrate (`pytest benchmarks/ --benchmark-only`, or
`python -m repro run all`).  Absolute numbers are simulator time — the
authors measured real GPUs — so the record below compares *shapes*: who
wins, where the crossovers are, and rough magnitudes.  Raw outputs live in
`results/`.

| id | paper content | paper's finding | reproduced? |
|---|---|---|---|
| Table 1 | GPU architecture features | concurrency degrees 1/16/32/16/128/128 | exact |
| Fig. 2 | CaffeNet conv speedups vs #streams (P100) | speedup grows, then plateaus; layer-dependent | yes (peaks ~1.2-3.9x) |
| Fig. 3 | multi-stream kernel timeline (MNIST conv) | kernels of different streams overlap | yes (+ the conv1 no-overlap case that explains Fig. 9) |
| Fig. 4 | best #streams per layer per GPU | optimum varies across devices and layers | yes |
| Fig. 7 | per-iteration speedup, 4 nets x 3 GPUs | GLP4NN-Caffe wins everywhere | yes (1.0-1.9x per iteration) |
| Fig. 8 | streams chosen by the model | per-layer, per-device configurations | yes |
| Fig. 9 | layer times incl. degradations | ~2 ms layers lose slightly; totals still win | yes (conv1 ~0.97x, totals >1x) |
| Fig. 10 | tracker memory | mem_cupti >> mem_tt + mem_K; per-kernel scaling | yes |
| Fig. 11 | convergence | same convergence; only shuffle differs | yes — bit-identical with same shuffle |
| Table 6 | one-time overhead | T_total/training < 0.1% | yes (worst case well below) |

The three future-work ablations (not in the paper's evaluation) are at the
bottom.

---
"""

ORDER = [
    ("table1", "Table 1 — GPU architecture features"),
    ("fig2", "Fig. 2 — CaffeNet conv speedups vs stream count (P100)"),
    ("fig3", "Fig. 3 — multi-stream kernel timeline"),
    ("fig4", "Fig. 4 — best observed stream count per layer per GPU"),
    ("fig7", "Fig. 7 — per-iteration speedup of GLP4NN-Caffe over Caffe"),
    ("fig8", "Fig. 8 — stream-pool size chosen by the analytical model"),
    ("fig9", "Fig. 9 — layer elapsed times and the degradation cases"),
    ("fig10", "Fig. 10 — memory consumption of GLP4NN"),
    ("fig11", "Fig. 11 — convergence invariance (CIFAR10 on P100)"),
    ("table6", "Table 6 — one-time overhead of GLP4NN"),
    ("ablations", "Ablation — launch bound / greedy analyzer / max streams"),
    ("fusion_ablation", "Ablation — kernel fusion (paper future work #2)"),
    ("graph_ablation", "Ablation — DAG dispatch (paper future work #1)"),
    ("analyzer_comparison", "Ablation — occupancy MILP vs time-predictive analyzer"),
    ("mps_comparison", "Ablation — stream pool (1 thread) vs multi-threaded dispatch"),
]

NOTES = {
    "fig3": "The paper captions its timeline 'conv1'; our simulated conv1 "
            "(MNIST) kernels are shorter than the launch pipeline and never "
            "overlap — the very property behind their Fig. 9 degradation — "
            "so the timeline uses the MNIST net's conv2, and the bench "
            "asserts conv1's no-overlap behaviour separately.",
    "fusion_ablation": "Paper future work #2, validated: fusing "
                       "sub-launch-latency kernels turns the Fig. 9 "
                       "degradation layers (~0.98x) into ~3x wins and "
                       "leaves compute-heavy layers untouched.",
    "graph_ablation": "Paper future work #1: dispatching inception "
                      "branches as a dataflow graph (event edges, one "
                      "final barrier) beats per-unit device barriers.",
    "analyzer_comparison": "The analyzer is pluggable by design; the "
                           "time-predictive alternative avoids the conv1 "
                           "loss with lean pools but under-provisions "
                           "saturated layers — the occupancy MILP and it "
                           "win in different regimes.",
    "mps_comparison": "The paper's critique of thread/process-based "
                      "concurrency, quantified: k-thread dispatch lifts "
                      "the launch-pipeline bound (beating GLP4NN on "
                      "launch-bound layers) but only by consuming k CPU "
                      "threads and paying driver-lock contention; GLP4NN "
                      "(and GLP4NN+fusion) get their wins from one thread.",
    "fig2": "Paper expectation: concurrent kernel execution accelerates "
            "most conv layers with a per-layer plateau (its motivation "
            "experiment).  Measured: every layer peaks above 1x, the "
            "fastest near 4x, and no layer keeps improving at 32 streams.",
    "fig7": "Paper expectation: GLP4NN-Caffe is faster per training "
            "iteration on all four networks and three GPUs, with "
            "device-dependent magnitude ('up to 4X' is the per-layer "
            "peak).  Measured: all 12 cells >= 1.0; CIFAR10 benefits most "
            "(many medium-size per-sample kernels), CaffeNet on K40C the "
            "least (its big grids already saturate 15 SMs).",
    "fig9": "Paper: 'conv1 in CIFAR10 and conv1/conv1_p in Siamese ... "
            "can be finished within about 2ms, which may be too short for "
            "launching much concurrent kernels', yet totals improve.  "
            "Measured: exactly that shape.",
    "fig11": "Stronger than the paper's visual overlap: with the same "
             "shuffle seed our loss curves are bit-identical "
             "(max gap 0.0), because scheduling never touches the math.  "
             "A different shuffle seed reproduces the paper's residual "
             "difference.",
    "table6": "T_p is simulated CUPTI overhead (proportional to kernels "
              "collected — CaffeNet's N=256 dominates, matching the "
              "paper's 9-14 ms); T_a is the *measured wall time* of our "
              "MILP solve, the analogue of the paper's GLPK times.",
}


def main() -> None:
    parts = [HEADER]
    for key, title in ORDER:
        path = RESULTS / f"{key}.txt"
        parts.append(f"## {title}\n")
        if key in NOTES:
            parts.append(NOTES[key] + "\n")
        if path.exists():
            parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
        else:
            parts.append(f"*(missing: run `python -m repro run {key}`)*\n")
    parts.append(
        "---\n\nRegenerate any single entry with "
        "`python -m repro run <id>`.\n"
    )
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts), encoding="utf-8")
    print("wrote", ROOT / "EXPERIMENTS.md")


if __name__ == "__main__":
    main()
