#!/usr/bin/env python
"""Check documentation for broken links and stale code references.

Scans every tracked markdown file (top level + ``docs/``) and verifies:

* **relative markdown links** — ``[text](path)`` resolved against the
  containing file must exist (``#anchors``, ``http(s)://`` and
  ``mailto:`` targets are skipped);
* **backticked path references** — `` `docs/x.md` ``-style mentions of
  files under the repository's known top-level directories must exist;
* **dotted module references** — `` `repro.x.y` `` mentions must resolve
  to a package/module under ``src/repro`` (attribute suffixes are
  tolerated: the longest resolving prefix wins, but at least one
  component beyond the bare ``repro`` must resolve);
* **CLI subcommand references** — every ``python -m repro <cmd>``
  invocation (fenced usage examples included) must name a real
  subcommand, read by regex from ``src/repro/cli.py`` so this script
  keeps working in the docs CI job where nothing is installed;
* **bench target references** — every ``python -m repro bench <target>``
  invocation must name a target in ``cli.py``'s ``BENCH_TARGETS`` tuple
  (scraped the same import-free way).

Exits non-zero listing every failure, so CI catches docs drifting away
from the code (renamed modules, moved pages, deleted examples).

Usage::

    python scripts/check_docs.py [repo-root]
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Directories whose mention as a backticked path implies "this should
#: exist in the repository".
KNOWN_TOP_DIRS = ("docs", "src", "examples", "tests", "scripts",
                  "benchmarks", "results")

MD_LINK = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
DOTTED = re.compile(r"^repro(?:\.\w+)+$")
#: Path-looking backticked text: no spaces, contains a slash or a known
#: file suffix.
PATHLIKE_SUFFIXES = (".py", ".md", ".json", ".yml", ".yaml", ".toml",
                     ".cfg", ".txt")


def iter_markdown(root: pathlib.Path) -> list[pathlib.Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks (shell transcripts are full of ``->``)."""
    return re.sub(r"```.*?```", "", text, flags=re.S)


def check_md_links(path: pathlib.Path, text: str,
                   root: pathlib.Path) -> list[str]:
    problems = []
    for match in MD_LINK.finditer(text):
        target = match.group(2)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link "
                f"[{match.group(1)}]({match.group(2)})"
            )
    return problems


def _resolves_as_module(dotted: str, src: pathlib.Path) -> bool:
    """True when some prefix beyond bare ``repro`` maps to src/repro/...

    ``repro.obs.spans.span`` is fine (the ``repro.obs.spans`` prefix is a
    module); ``repro.nosuch.thing`` is not (nothing beyond ``repro``
    resolves).
    """
    parts = dotted.split(".")
    deepest = 1                      # bare "repro" always resolves
    for i in range(2, len(parts) + 1):
        rel = pathlib.Path(*parts[:i])
        if (src / rel).is_dir() or (src / rel).with_suffix(".py").is_file():
            deepest = i
    return deepest >= 2


#: ``python -m repro <token>`` mentions anywhere in a doc, including
#: fenced code blocks (that is where usage examples live).  The token
#: may be a subcommand, an option (``--help``), or a dotted module
#: runner (``repro.bench.x`` via ``-m`` directly) — only bare
#: subcommand-shaped tokens are validated.
CLI_INVOCATION = re.compile(r"python\s+-m\s+repro\s+([\w.-]+)")
ADD_PARSER = re.compile(r"add_parser\(\s*\"([\w-]+)\"")

#: ``python -m repro bench <target>`` mentions; the target token is
#: validated against the ``BENCH_TARGETS`` tuple in ``cli.py``.
BENCH_INVOCATION = re.compile(r"python\s+-m\s+repro\s+bench\s+([\w.-]+)")
BENCH_TARGETS_TUPLE = re.compile(r"BENCH_TARGETS\s*=\s*\(([^)]*)\)")


def known_subcommands(root: pathlib.Path) -> frozenset[str]:
    """Subcommand names scraped from ``src/repro/cli.py`` (no import)."""
    cli = root / "src" / "repro" / "cli.py"
    if not cli.is_file():
        return frozenset()
    return frozenset(ADD_PARSER.findall(cli.read_text(encoding="utf-8")))


def known_bench_targets(root: pathlib.Path) -> frozenset[str]:
    """Bench target names scraped from ``BENCH_TARGETS`` in ``cli.py``."""
    cli = root / "src" / "repro" / "cli.py"
    if not cli.is_file():
        return frozenset()
    match = BENCH_TARGETS_TUPLE.search(cli.read_text(encoding="utf-8"))
    if match is None:
        return frozenset()
    return frozenset(re.findall(r"\"([\w-]+)\"", match.group(1)))


def check_bench_refs(path: pathlib.Path, text: str, root: pathlib.Path,
                     targets: frozenset[str]) -> list[str]:
    if not targets:            # no bench subcommand in this checkout
        return []
    problems = []
    for match in BENCH_INVOCATION.finditer(text):
        token = match.group(1)
        if token.startswith("-"):
            continue           # ``python -m repro bench --help``
        if token not in targets:
            problems.append(
                f"{path.relative_to(root)}: unknown bench target in "
                f"`python -m repro bench {token}`"
            )
    return problems


def check_cli_refs(path: pathlib.Path, text: str, root: pathlib.Path,
                   subcommands: frozenset[str]) -> list[str]:
    if not subcommands:        # no CLI in this repo checkout; nothing to do
        return []
    problems = []
    for match in CLI_INVOCATION.finditer(text):
        token = match.group(1)
        if token.startswith("-") or "." in token:
            continue           # an option, or a module run like repro.bench.x
        if token not in subcommands:
            problems.append(
                f"{path.relative_to(root)}: unknown CLI subcommand in "
                f"`python -m repro {token}`"
            )
    return problems


def check_code_refs(path: pathlib.Path, text: str,
                    root: pathlib.Path) -> list[str]:
    problems = []
    src = root / "src"
    for match in BACKTICK.finditer(text):
        ref = match.group(1).strip()
        if DOTTED.match(ref):
            if not _resolves_as_module(ref, src):
                problems.append(
                    f"{path.relative_to(root)}: unresolved module `{ref}`"
                )
            continue
        if " " in ref or ref.startswith(("-", "--")):
            continue
        ref = ref.split("::", 1)[0]      # pytest node ids
        first = ref.split("/", 1)[0]
        looks_pathy = "/" in ref or ref.endswith(PATHLIKE_SUFFIXES)
        if not looks_pathy or first not in KNOWN_TOP_DIRS:
            continue
        if "*" in ref:
            if not any(root.glob(ref)):
                problems.append(
                    f"{path.relative_to(root)}: glob `{ref}` matches "
                    "nothing"
                )
            continue
        if not (root / ref).exists():
            problems.append(
                f"{path.relative_to(root)}: missing path `{ref}`"
            )
    return problems


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    files = iter_markdown(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 2
    subcommands = known_subcommands(root)
    bench_targets = known_bench_targets(root)
    problems: list[str] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        problems.extend(check_md_links(path, text, root))
        problems.extend(check_code_refs(path, strip_code_blocks(text), root))
        problems.extend(check_cli_refs(path, text, root, subcommands))
        problems.extend(check_bench_refs(path, text, root, bench_targets))
    if problems:
        print(f"{len(problems)} documentation problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"docs OK: {len(files)} markdown file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
