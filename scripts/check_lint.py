#!/usr/bin/env python
"""Run the repo's own determinism lint over ``src/repro``.

Thin wrapper around ``python -m repro analyze lint`` for pre-commit /
local use — same rules, same suppression syntax, same exit code as the
CI gate (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str]) -> int:
    from repro.analyze import lint_paths

    targets = [Path(a) for a in argv] or [REPO / "src" / "repro"]
    report = lint_paths(targets)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
