"""Tests for the observability layer: spans, metrics, trace export."""

import json

import pytest

from repro.gpusim.engine import GPU
from repro.gpusim.device import get_device
from repro.gpusim.timeline import Timeline, TraceRecord
from repro.obs import export, metrics, spans
from repro.obs.scenarios import TRACE_SCENARIOS, run_scenario
from repro.runtime.executor import FixedStreamExecutor
from repro.runtime.lowering import lower_conv_forward
from repro.nn.zoo.table5 import SIAMESE_CONVS


@pytest.fixture(autouse=True)
def _clean_slots():
    """Every test starts and ends with no recorder/registry installed."""
    spans.uninstall()
    metrics.uninstall()
    yield
    spans.uninstall()
    metrics.uninstall()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_span_records_interval_and_args(self):
        t = [0.0]
        rec = spans.SpanRecorder(clock=lambda: t[0])
        with rec.span("work", cat="runtime", layer="conv1") as h:
            t[0] = 12.5
            h.set(streams=4)
        (s,) = rec.spans
        assert (s.name, s.cat) == ("work", "runtime")
        assert (s.start_us, s.end_us) == (0.0, 12.5)
        assert s.args == {"layer": "conv1", "streams": 4}
        assert s.duration_us == pytest.approx(12.5)
        assert not s.is_instant

    def test_nesting_records_parent_ids(self):
        rec = spans.SpanRecorder(clock=lambda: 0.0)
        with rec.span("outer"):
            with rec.span("mid"):
                with rec.span("inner"):
                    pass
            rec.instant("tick")
        by_name = {s.name: s for s in rec.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["mid"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["mid"].span_id
        assert by_name["tick"].parent_id == by_name["outer"].span_id

    def test_ids_assigned_in_open_order_from_one(self):
        rec = spans.SpanRecorder(clock=lambda: 0.0)
        with rec.span("a"):
            with rec.span("b"):
                pass
        rec.instant("c")
        by_name = {s.name: s for s in rec.spans}
        assert by_name["a"].span_id == 1
        assert by_name["b"].span_id == 2
        assert by_name["c"].span_id == 3

    def test_span_recorded_when_body_raises(self):
        t = [0.0]
        rec = spans.SpanRecorder(clock=lambda: t[0])
        with pytest.raises(RuntimeError):
            with rec.span("failing"):
                t[0] = 3.0
                raise RuntimeError("boom")
        (s,) = rec.spans
        assert s.name == "failing"
        assert s.end_us == 3.0
        assert not rec._stack     # stack unwound

    def test_clock_regression_clamped(self):
        t = [10.0]
        rec = spans.SpanRecorder(clock=lambda: t[0])
        with rec.span("weird"):
            t[0] = 5.0
        (s,) = rec.spans
        assert s.end_us == s.start_us == 10.0
        assert s.is_instant

    def test_module_hooks_are_noops_without_recorder(self):
        assert spans.active_recorder() is None
        with spans.span("ignored") as h:
            h.set(anything=1)        # must not raise
        spans.instant("ignored")

    def test_recording_installs_and_restores(self):
        with spans.recording(lambda: 1.0) as rec:
            assert spans.active_recorder() is rec
            with spans.span("seen"):
                pass
        assert spans.active_recorder() is None
        assert [s.name for s in rec.spans] == ["seen"]

    def test_recording_restores_previous_recorder(self):
        outer = spans.SpanRecorder(clock=lambda: 0.0)
        spans.install(outer)
        with spans.recording(lambda: 0.0):
            pass
        assert spans.active_recorder() is outer

    def test_traced_decorator(self):
        @spans.traced("step.run", cat="scenario")
        def step(x):
            return x + 1

        with spans.recording(lambda: 0.0) as rec:
            assert step(1) == 2
        assert rec.spans[0].name == "step.run"
        assert rec.spans[0].cat == "scenario"

    def test_sorted_spans_by_start_then_id(self):
        t = [5.0]
        rec = spans.SpanRecorder(clock=lambda: t[0])
        rec.instant("late")
        t[0] = 1.0
        rec.instant("early")
        t[0] = 5.0
        rec.instant("late2")
        assert [s.name for s in rec.sorted_spans()] == [
            "early", "late", "late2"]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        with metrics.collecting() as reg:
            metrics.counter_inc("c")
            metrics.counter_inc("c", 4)
            metrics.gauge_set("g", 3.0)
            metrics.gauge_max("hw", 2.0)
            metrics.gauge_max("hw", 7.0)
            metrics.gauge_max("hw", 4.0)
            for v in (1.0, 2.0, 3.0, 4.0):
                metrics.observe("h", v)
        assert reg.counter("c").value == 5
        assert reg.gauge("g").value == 3.0
        assert reg.gauge("hw").value == 7.0
        assert reg.histogram("h").count == 4
        assert reg.histogram("h").percentile(50) == pytest.approx(2.5)

    def test_counter_rejects_negative(self):
        reg = metrics.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_percentile_matches_timing_summary(self):
        from repro.runtime.metrics import TimingSummary
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        h = metrics.Histogram("x")
        for s in samples:
            h.observe(s)
        for q in (50, 95, 99):
            assert h.percentile(q) == TimingSummary.of(samples).percentile(q)

    def test_hooks_are_noops_without_registry(self):
        metrics.counter_inc("nope")
        metrics.gauge_set("nope", 1.0)
        metrics.gauge_max("nope", 1.0)
        metrics.observe("nope", 1.0)
        assert metrics.active_registry() is None

    def test_snapshot_sorted_and_json_safe(self):
        with metrics.collecting() as reg:
            metrics.counter_inc("b.two")
            metrics.counter_inc("a.one")
            metrics.observe("lat", 10.0)
            reg.histogram("empty")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["histograms"]["empty"] == {"count": 0}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)    # must be serializable as-is

    def test_collecting_restores_previous_registry(self):
        outer = metrics.MetricsRegistry()
        metrics.install(outer)
        with metrics.collecting():
            pass
        assert metrics.active_registry() is outer


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def _device_timeline():
    t = Timeline("P100")
    t.add(TraceRecord(
        name="sgemm", tag="conv1/s0", stream_id=1, enqueue_us=0.0,
        start_us=1.0, end_us=5.0, grid=(4, 1, 1), block=(256, 1, 1),
        registers=32, shared_mem=0))
    return t


class TestExport:
    def test_span_events_complete_and_instant(self):
        t = [2.0]
        rec = spans.SpanRecorder(clock=lambda: t[0])
        with rec.span("phase", cat="runtime"):
            t[0] = 6.0
        rec.instant("mark", cat="serve", rid=7)
        complete, instant_ev = export.span_events(rec.spans)
        assert complete["ph"] == "X" and complete["dur"] == 4.0
        assert complete["pid"] == "host" and complete["tid"] == "runtime"
        assert instant_ev["ph"] == "i" and instant_ev["s"] == "t"
        assert instant_ev["args"]["rid"] == 7

    def test_merged_doc_has_host_and_device_tracks(self):
        rec = spans.SpanRecorder(clock=lambda: 0.0)
        with rec.span("runtime.layer", cat="runtime"):
            pass
        doc = json.loads(export.to_perfetto_json(
            rec.spans, _device_timeline(), metrics={"counters": {}},
            meta={"scenario": "t"}))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {"host", "P100"}
        assert doc["meta"] == {"scenario": "t"}
        assert doc["metrics"] == {"counters": {}}

    def test_output_is_byte_deterministic(self):
        rec = spans.SpanRecorder(clock=lambda: 0.0)
        rec.instant("z", b=2, a=1)
        a = export.to_perfetto_json(rec.spans, _device_timeline())
        b = export.to_perfetto_json(rec.spans, _device_timeline())
        assert a == b
        assert a.endswith("\n")

    def test_empty_inputs_export_cleanly(self):
        doc = json.loads(export.to_perfetto_json())
        assert doc == {"traceEvents": []}


# ----------------------------------------------------------------------
# Instrumentation integration
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_fixed_executor_emits_spans_and_metrics(self):
        gpu = GPU(get_device("P100"), record_timeline=True)
        ex = FixedStreamExecutor(gpu, 4)
        work = lower_conv_forward(SIAMESE_CONVS[1])
        with metrics.collecting() as reg:
            with spans.recording(lambda: gpu.host_time) as rec:
                ex.run(work)
        names = {s.name for s in rec.spans}
        assert {"runtime.layer", "runtime.dispatch",
                "runtime.sync"} <= names
        assert reg.counter("runtime.layers").value == 1
        assert reg.histogram("runtime.layer_us").count == 1
        layer = next(s for s in rec.spans if s.name == "runtime.layer")
        assert layer.args["layer"] == work.key
        assert layer.duration_us > 0

    def test_instrumentation_does_not_change_timings(self):
        def run_once(observed: bool) -> float:
            from repro.gpusim.stream import reset_handle_ids
            reset_handle_ids()
            gpu = GPU(get_device("P100"))
            ex = FixedStreamExecutor(gpu, 4)
            work = lower_conv_forward(SIAMESE_CONVS[1])
            if observed:
                with metrics.collecting():
                    with spans.recording(lambda: gpu.host_time):
                        run = ex.run(work)
            else:
                run = ex.run(work)
            return run.elapsed_us

        assert run_once(True) == run_once(False)


# ----------------------------------------------------------------------
# Scenarios / round trip
# ----------------------------------------------------------------------
class TestScenarios:
    def test_unknown_scenario_lists_available(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="fig3"):
            run_scenario("nope")

    def test_fig3_roundtrip_is_byte_deterministic(self):
        a = run_scenario("fig3").to_json()
        b = run_scenario("fig3").to_json()
        assert a == b

    def test_fig3_capture_merges_host_and_device(self):
        cap = run_scenario("fig3")
        doc = json.loads(cap.to_json())
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert "host" in pids and "P100" in pids
        stream_tids = {e["tid"] for e in doc["traceEvents"]
                       if e["pid"] == "P100"}
        assert len(stream_tids) >= 4      # one track per stream
        assert doc["meta"]["scenario"] == "fig3"
        assert doc["metrics"]["counters"]["runtime.layers"] == 1

    def test_scenarios_leave_no_slots_installed(self):
        run_scenario("fig3")
        assert spans.active_recorder() is None
        assert metrics.active_registry() is None

    def test_all_scenarios_registered_and_documented(self):
        assert set(TRACE_SCENARIOS) == {"fig3", "conv5", "train", "serve",
                                        "verify", "fleet", "graph",
                                        "interop"}
        for fn in TRACE_SCENARIOS.values():
            assert fn.__doc__

    def test_write_roundtrips_cli_document(self, tmp_path):
        path = tmp_path / "trace.json"
        cap = run_scenario("fig3")
        text = cap.write(path)
        assert path.read_text(encoding="utf-8") == text == cap.to_json()
