"""Property-based tests of the discrete-event engine's invariants.

Random workloads (kernel shapes, stream assignments, interleavings) must
always satisfy:

* every launched kernel completes, with ``enqueue <= start < end``;
* kernels on one stream never overlap and retire in issue order;
* the device-wide concurrency never exceeds the architecture degree;
* simulation is deterministic;
* time-averaged utilization stays in ``[0, 1]``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gpusim import GPU, KernelSpec, LaunchConfig, get_device

_kernel = st.tuples(
    st.integers(1, 40),            # blocks
    st.sampled_from([32, 64, 128, 256, 512]),   # threads
    st.floats(10.0, 5e5),          # flops per thread
    st.sampled_from([0, 2048, 8192]),           # smem
    st.integers(0, 7),             # stream slot
)

_workload = st.lists(_kernel, min_size=1, max_size=25)


def _run(workload, device="P100", num_streams=4):
    gpu = GPU(get_device(device))
    streams = [gpu.create_stream() for _ in range(num_streams)]
    kes = []
    for i, (blocks, threads, flops, smem, slot) in enumerate(workload):
        spec = KernelSpec(
            name=f"k{i % 5}",
            launch=LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                                shared_mem_dynamic=smem),
            flops_per_thread=flops,
            bytes_per_thread=16.0,
            tag=str(i),
        )
        stream = None if slot == 0 else streams[slot % num_streams]
        kes.append((gpu.launch(spec, stream=stream), stream))
    gpu.synchronize()
    return gpu, kes


@settings(max_examples=40, deadline=None)
@given(_workload)
def test_all_kernels_complete_with_sane_timestamps(workload):
    gpu, kes = _run(workload)
    assert gpu.kernels_completed == len(workload)
    for ke, _ in kes:
        assert ke.is_complete
        assert ke.enqueue_time <= ke.start_time < ke.end_time


@settings(max_examples=40, deadline=None)
@given(_workload)
def test_streams_are_fifo_and_non_overlapping(workload):
    gpu, kes = _run(workload)
    by_stream: dict[int, list] = {}
    for ke, _ in kes:
        by_stream.setdefault(ke.stream_id, []).append(ke)
    for stream_kes in by_stream.values():
        for a, b in zip(stream_kes, stream_kes[1:]):
            assert b.start_time >= a.end_time - 1e-6


@settings(max_examples=30, deadline=None)
@given(_workload)
def test_concurrency_within_device_degree(workload):
    gpu, _ = _run(workload, device="GTX980")   # C = 16, easiest to violate
    assert gpu.timeline.max_concurrency() <= 16


@settings(max_examples=20, deadline=None)
@given(_workload)
def test_determinism(workload):
    g1, _ = _run(workload)
    g2, _ = _run(workload)
    assert g1.now == g2.now
    t1 = [(r.name, r.start_us, r.end_us) for r in g1.timeline.records]
    t2 = [(r.name, r.start_us, r.end_us) for r in g2.timeline.records]
    assert t1 == t2


@settings(max_examples=25, deadline=None)
@given(_workload)
def test_utilization_bounded(workload):
    gpu, _ = _run(workload)
    assert 0.0 <= gpu.utilization() <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(_workload)
def test_default_stream_barrier_semantics(workload):
    """Inject a default-stream kernel mid-workload: everything launched
    before it must finish first; everything after starts after it."""
    gpu = GPU(get_device("P100"))
    streams = [gpu.create_stream() for _ in range(3)]
    first, second = [], []
    half = len(workload) // 2
    bar = None
    for i, (blocks, threads, flops, smem, slot) in enumerate(workload):
        if i == half:
            bar = gpu.launch(KernelSpec(
                name="barrier",
                launch=LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1)),
            ))
        spec = KernelSpec(
            name="w",
            launch=LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                                shared_mem_dynamic=smem),
            flops_per_thread=flops, tag=str(i),
        )
        (first if i < half else second).append(
            gpu.launch(spec, stream=streams[slot % 3]))
    if bar is None:
        bar = gpu.launch(KernelSpec(
            name="barrier",
            launch=LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1)),
        ))
    gpu.synchronize()
    for ke in first:
        assert ke.end_time <= bar.start_time + 1e-6
    for ke in second:
        assert ke.start_time >= bar.end_time - 1e-6


# ----------------------------------------------------------------------
# Memoized occupancy == uncached recomputation (the lru_cache layers on
# repro.gpusim.occupancy must be observationally invisible), and record
# interning must never alias distinct shapes.

import pytest

from repro.errors import LaunchError
from repro.gpusim.engine import intern_block_req
from repro.gpusim.occupancy import (
    _max_active_blocks_cached,
    _validate_launch_cached,
    max_active_blocks_per_sm,
    occupancy,
    validate_launch,
)

_shape = st.tuples(
    st.integers(1, 4096),                                # blocks
    st.sampled_from([32, 64, 96, 128, 256, 512, 1024, 2048]),  # threads
    st.sampled_from([0, 1024, 4096, 16384, 1 << 20]),    # smem (incl. invalid)
    st.integers(16, 80),                                 # regs per thread
)


def _launch(blocks, threads, smem, regs):
    return LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                        shared_mem_dynamic=smem, registers_per_thread=regs)


@settings(max_examples=60, deadline=None)
@given(st.lists(_shape, min_size=1, max_size=10),
       st.sampled_from(["P100", "GTX980", "K40C"]))
def test_memoized_occupancy_matches_uncached(shapes, device_name):
    device = get_device(device_name)
    for blocks, threads, smem, regs in shapes:
        launch = _launch(blocks, threads, smem, regs)
        try:
            _validate_launch_cached.__wrapped__(device, launch)
        except LaunchError:
            # Invalid shapes must keep raising through the cached wrapper
            # every single time (lru_cache does not cache exceptions).
            with pytest.raises(LaunchError):
                validate_launch(device, launch)
            with pytest.raises(LaunchError):
                validate_launch(device, launch)
            continue
        cached = max_active_blocks_per_sm(device, launch)
        uncached = _max_active_blocks_cached.__wrapped__(device, launch)
        assert cached == uncached
        assert occupancy(device, launch) == occupancy.__wrapped__(
            device, launch)


@settings(max_examples=40, deadline=None)
@given(_shape, st.sampled_from(["P100", "GTX980"]))
def test_memo_hit_is_same_result_for_equal_shapes(shape, device_name):
    """Two distinct-but-equal LaunchConfigs hit one cache entry."""
    device = get_device(device_name)
    a, b = _launch(*shape), _launch(*shape)
    assert a is not b and a == b
    try:
        first = max_active_blocks_per_sm(device, a)
    except LaunchError:
        with pytest.raises(LaunchError):
            max_active_blocks_per_sm(device, b)
        return
    second = max_active_blocks_per_sm(device, b)
    assert first is second          # cache hit, not a recomputation
    assert occupancy(device, a) == occupancy(device, b)


_req = st.tuples(
    st.integers(1, 2048),           # threads per block
    st.integers(0, 1 << 16),        # shared mem per block
    st.integers(32, 1 << 16),       # registers per block
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_req, min_size=1, max_size=30))
def test_interning_never_aliases_distinct_records(reqs):
    interned = [intern_block_req(*r) for r in reqs]
    for req, tup in zip(reqs, interned):
        assert tup == req           # interning preserves the value exactly
    for r1, t1 in zip(reqs, interned):
        for r2, t2 in zip(reqs, interned):
            if r1 == r2:
                assert t1 is t2     # equal shapes share one canonical tuple
            else:
                assert t1 != t2     # distinct shapes never alias
