"""End-to-end integration tests reproducing the paper's headline claims."""

import numpy as np
import pytest

from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import (
    CAFFENET_CONVS,
    CIFAR10_CONVS,
    GOOGLENET_CONVS,
    SIAMESE_CONVS,
)
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import conv_works, lower_conv_forward


def fresh(name):
    return GPU(get_device(name), record_timeline=False)


def steady(executor, work):
    executor.run(work)
    return executor.run(work).elapsed_us


class TestPaperClaims:
    """Shape assertions against the evaluation section."""

    def test_glp4nn_wins_on_most_layers_p100(self):
        """Fig. 7/9: most conv layers accelerate under GLP4NN."""
        layers = (CIFAR10_CONVS[1:] + SIAMESE_CONVS[1:2]
                  + GOOGLENET_CONVS[:3])
        wins = 0
        for cfg in layers:
            work = lower_conv_forward(cfg)
            t_naive = steady(NaiveExecutor(fresh("P100")), work)
            t_glp = steady(GLP4NNExecutor(fresh("P100")), work)
            if t_glp < t_naive:
                wins += 1
        assert wins == len(layers)

    def test_speedup_reaches_multiples(self):
        """Abstract: 'a speedup of up to 4X' — our best layer exceeds 3x."""
        work = lower_conv_forward(CAFFENET_CONVS[4])
        t_naive = steady(NaiveExecutor(fresh("P100")), work)
        t_glp = steady(GLP4NNExecutor(fresh("P100")), work)
        assert t_naive / t_glp > 2.5

    def test_tiny_layers_degrade_slightly_not_catastrophically(self):
        """Fig. 9: ~2 ms layers lose a little under GLP4NN."""
        for cfg, device in ((CIFAR10_CONVS[0], "TitanXP"),
                            (SIAMESE_CONVS[0], "P100")):
            work = lower_conv_forward(cfg)
            t_naive = steady(NaiveExecutor(fresh(device)), work)
            t_glp = steady(GLP4NNExecutor(fresh(device)), work)
            assert 0.85 < t_naive / t_glp < 1.05

    def test_network_totals_still_improve(self):
        """Fig. 9: 'the overall performance of these two networks has
        still been improved'."""
        for convs, device in ((CIFAR10_CONVS, "TitanXP"),
                              (SIAMESE_CONVS, "P100")):
            t_naive = t_glp = 0.0
            for cfg in convs:
                work = lower_conv_forward(cfg)
                t_naive += steady(NaiveExecutor(fresh(device)), work)
                t_glp += steady(GLP4NNExecutor(fresh(device)), work)
            assert t_glp < t_naive

    def test_optimal_streams_vary_by_device(self):
        """Observation 2: the best stream count is device-dependent."""
        from repro.runtime.executor import FixedStreamExecutor
        work = lower_conv_forward(CAFFENET_CONVS[0])
        best = {}
        for device in ("K40C", "P100"):
            times = {}
            for s in (1, 2, 4, 8, 16):
                ex = FixedStreamExecutor(fresh(device), s)
                times[s] = steady(ex, work)
            best[device] = min(times, key=times.get)
        assert best["K40C"] != 1 or best["P100"] != 1

    def test_profiling_iteration_is_not_wasted(self):
        """The profiling pass executes the layer's kernels for real."""
        gpu = fresh("P100")
        ex = GLP4NNExecutor(gpu)
        work = lower_conv_forward(SIAMESE_CONVS[1])
        ex.run(work)
        assert gpu.kernels_completed == work.num_kernels

    def test_stream_pool_reuse_across_layers(self):
        """The pool is created once and shared by subsequent layers."""
        gpu = fresh("P100")
        ex = GLP4NNExecutor(gpu)
        works = conv_works(CIFAR10_CONVS, "forward")
        for w in works:
            ex.run(w)            # round 1: profiling (default stream only)
        for w in works:
            ex.run(w)            # round 2: pools created
        streams_after_dispatch_round = len(gpu.streams())
        assert streams_after_dispatch_round > 1
        for w in works:
            ex.run(w)            # round 3: pools reused, no new streams
        assert len(gpu.streams()) == streams_after_dispatch_round


class TestCrossDeviceShape:
    def test_faster_device_faster_everywhere(self):
        work = lower_conv_forward(CIFAR10_CONVS[1])
        t = {}
        for device in ("K40C", "P100"):
            t[device] = steady(NaiveExecutor(fresh(device)), work)
        assert t["P100"] < t["K40C"]

    def test_kepler_vs_pascal_concurrency_budget(self):
        """Pascal's deeper hardware queues admit larger pools."""
        gk = fresh("K40C")
        gp = fresh("P100")
        assert gp.props.max_concurrent_kernels > gk.props.max_concurrent_kernels
