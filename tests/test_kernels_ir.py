"""Tests for kernel chains and layer work units."""

import pytest

from repro.kernels.ir import KernelChain, LayerWork
from tests.conftest import small_kernel


class TestKernelChain:
    def test_iteration_order(self):
        ks = [small_kernel(n) for n in ("a", "b", "c")]
        chain = KernelChain(tuple(ks))
        assert [k.name for k in chain] == ["a", "b", "c"]
        assert len(chain) == 3

    def test_retagged_prefixes(self):
        chain = KernelChain((small_kernel("a", tag="x"),))
        out = chain.retagged("s0")
        assert out.kernels[0].tag == "s0/x"

    def test_retagged_empty_tag(self):
        chain = KernelChain((small_kernel("a"),))
        assert chain.retagged("s1").kernels[0].tag == "s1"


class TestLayerWork:
    def _work(self):
        chains = tuple(
            KernelChain((small_kernel("im2col", tag=f"s{i}"),
                         small_kernel("sgemm", tag=f"s{i}")),
                        label=f"s{i}")
            for i in range(3)
        )
        serial = (small_kernel("reduce"),)
        return LayerWork(layer="conv1", phase="forward",
                         parallel_chains=chains, serial_kernels=serial)

    def test_key(self):
        assert self._work().key == "conv1/forward"

    def test_num_kernels(self):
        assert self._work().num_kernels == 7

    def test_all_kernels_order(self):
        names = [k.name for k in self._work().all_kernels()]
        assert names == ["im2col", "sgemm"] * 3 + ["reduce"]

    def test_unique_signatures_deduplicates_samples(self):
        sigs = self._work().unique_signatures()
        assert [k.name for k in sigs] == ["im2col", "sgemm", "reduce"]

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            LayerWork(layer="x", phase="sideways")

    def test_empty_work_allowed(self):
        w = LayerWork(layer="x", phase="forward")
        assert w.num_kernels == 0
        assert w.unique_signatures() == []
