"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "K40C" in out and "P100" in out and "TitanXP" in out
        assert "*" in out

    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for net in ("CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"):
            assert net in out
        assert "227" in out   # CaffeNet conv1 geometry

    def test_experiments_listed(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for key in ("fig2", "fig7", "fig11", "table6", "fusion"):
            assert key in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Max Concurrent Kernels" in out
        assert "regenerated in" in out
