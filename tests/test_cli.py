"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "K40C" in out and "P100" in out and "TitanXP" in out
        assert "*" in out

    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for net in ("CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"):
            assert net in out
        assert "227" in out   # CaffeNet conv1 geometry

    def test_experiments_listed(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for key in ("fig2", "fig7", "fig11", "table6", "fusion"):
            assert key in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "available:" in err

    def test_run_unknown_experiment_suggests_close_match(self, capsys):
        assert main(["run", "fig77"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "fig7" in err

    def test_run_unknown_without_close_match_has_no_suggestion(self, capsys):
        assert main(["run", "zzzzzz"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "did you mean" not in err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Max Concurrent Kernels" in out
        assert "regenerated in" in out


class TestServeCommand:
    ARGS = ["serve", "--net", "lenet", "--device", "p100",
            "--rps", "2000", "--slo-ms", "5", "--duration-ms", "4",
            "--seed", "1"]

    def test_serve_all_executors(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        for kind in ("naive", "fixed", "glp4nn"):
            assert kind in out
        assert "goodput" in out

    def test_serve_single_executor_json(self, capsys):
        assert main(self.ARGS + ["--executor", "glp4nn", "--json"]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "glp4nn"
        assert payload["requests"] > 0

    def test_serve_unknown_net(self, capsys):
        assert main(["serve", "--net", "resnet152"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_serve_deterministic_output(self, capsys):
        args = self.ARGS + ["--executor", "naive"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestTraceCommand:
    def test_trace_without_scenario_lists_available(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "conv5", "train", "serve"):
            assert name in out

    def test_trace_unknown_scenario(self, capsys):
        assert main(["trace", "fig99"]) == 2
        captured = capsys.readouterr()
        assert "unknown trace scenario" in captured.err
        assert "fig3" in captured.out      # available list printed

    def test_trace_writes_merged_chrome_trace(self, capsys, tmp_path):
        import json
        out_path = tmp_path / "fig3.json"
        assert main(["trace", "fig3", "-o", str(out_path)]) == 0
        stdout = capsys.readouterr().out
        assert "host span(s)" in stdout and "device slice(s)" in stdout
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert "host" in pids and "P100" in pids
        assert doc["meta"]["scenario"] == "fig3"

    def test_trace_output_deterministic_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "fig3", "-o", str(a)]) == 0
        assert main(["trace", "fig3", "-o", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
