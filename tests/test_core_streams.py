"""Tests for the stream manager (pool + default stream)."""

import pytest

from repro.core.stream_manager import StreamManager, StreamPool
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device


class TestStreamPool:
    def test_ensure_creates_streams(self, p100):
        pool = StreamPool(p100)
        streams = pool.ensure(4)
        assert len(streams) == 4
        assert pool.size == 4
        assert all(not s.is_default for s in streams)

    def test_streams_are_persistent(self, p100):
        pool = StreamPool(p100)
        first = pool.ensure(3)
        again = pool.ensure(3)
        assert first == again            # same handles, no churn

    def test_grow_only(self, p100):
        pool = StreamPool(p100)
        pool.ensure(6)
        smaller = pool.ensure(2)
        assert len(smaller) == 2
        assert pool.size == 6            # never destroyed
        assert pool.high_water == 6

    def test_size_capped_by_device_degree(self):
        gpu = GPU(get_device("GTX980"))  # C = 16
        pool = StreamPool(gpu)
        with pytest.raises(SchedulingError, match="concurrency degree"):
            pool.ensure(17)

    def test_zero_size_rejected(self, p100):
        with pytest.raises(SchedulingError):
            StreamPool(p100).ensure(0)

    def test_default_stream(self, p100):
        pool = StreamPool(p100)
        assert pool.default.is_default

    def test_round_robin_cycles(self, p100):
        pool = StreamPool(p100)
        rr = pool.round_robin(3)
        seq = [next(rr) for _ in range(7)]
        assert seq[0] == seq[3] == seq[6]
        assert len({s.stream_id for s in seq}) == 3


class TestStreamManager:
    def test_pool_per_device(self, p100, k40c):
        mgr = StreamManager()
        p1 = mgr.pool(p100)
        p2 = mgr.pool(k40c)
        assert p1 is not p2
        assert len(mgr) == 2

    def test_same_device_same_pool(self, p100):
        mgr = StreamManager()
        assert mgr.pool(p100) is mgr.pool(p100)

    def test_fresh_gpu_object_gets_fresh_pool(self):
        mgr = StreamManager()
        g1 = GPU(get_device("P100"))
        pool1 = mgr.pool(g1)
        pool1.ensure(2)
        g2 = GPU(get_device("P100"))   # e.g. after reset
        pool2 = mgr.pool(g2)
        assert pool2 is not pool1
        assert pool2.size == 0

    def test_two_same_model_gpus_get_distinct_pools(self):
        # regression: pools used to be keyed by device *name*, so two
        # same-model GPUs silently shared (and cross-grew) one pool
        mgr = StreamManager()
        g1 = GPU(get_device("P100"))
        g2 = GPU(get_device("P100"))
        p1 = mgr.pool(g1)
        p2 = mgr.pool(g2)
        assert p1 is not p2
        assert len(mgr) == 2
        p1.ensure(4)
        assert p2.size == 0
        assert mgr.pool(g1) is p1
        assert mgr.pool(g2) is p2
        assert p1.gpu is g1 and p2.gpu is g2
