"""Stream-plan builders: policies, edge cases, determinism."""

import pytest

from repro.errors import SchedulingError
from repro.interop.planner import (
    PLAN_POLICIES,
    build_plan,
    plan_layer_serial,
    plan_opara,
    plan_round_robin,
    segments_of,
)
from repro.interop.resources import estimate_graph
from repro.interop.workloads import inception_unit, single_branch
from repro.serve.engine import resolve_device

P100 = resolve_device("p100")


@pytest.fixture(scope="module")
def unit():
    return inception_unit("5b", batch=2)


def _topological(graph, order):
    seen = set()
    for nid in order:
        if any(d not in seen for d in graph._nodes[nid].deps):
            return False
        seen.add(nid)
    return True


class TestAllPolicies:
    @pytest.mark.parametrize("policy", PLAN_POLICIES)
    def test_covers_every_node_in_topo_order(self, unit, policy):
        plan = build_plan(unit.graph, policy, 4, device=P100)
        assert set(plan.assignment) == {n.node_id for n in unit.graph.nodes}
        assert sorted(plan.order) == sorted(plan.assignment)
        assert _topological(unit.graph, plan.order)

    @pytest.mark.parametrize("policy", PLAN_POLICIES)
    def test_deterministic(self, unit, policy):
        a = build_plan(unit.graph, policy, 4, device=P100)
        b = build_plan(unit.graph, policy, 4, device=P100)
        assert a.assignment == b.assignment and a.order == b.order

    @pytest.mark.parametrize("policy", PLAN_POLICIES)
    def test_pool_of_one_forces_serial(self, unit, policy):
        plan = build_plan(unit.graph, policy, 1, device=P100)
        assert plan.streams_used() == 1
        assert plan.cross_edges(unit.graph) == 0
        assert plan.switches() == 0

    def test_unknown_policy_raises(self, unit):
        with pytest.raises(SchedulingError, match="unknown planning policy"):
            build_plan(unit.graph, "zigzag", 4)

    def test_opara_needs_device(self, unit):
        with pytest.raises(SchedulingError, match="device properties"):
            build_plan(unit.graph, "opara", 4)


class TestBaselines:
    def test_layer_serial_is_one_stream(self, unit):
        plan = plan_layer_serial(unit.graph)
        assert plan.streams_used() == 1
        assert plan.cross_edges(unit.graph) == 0

    def test_round_robin_spreads_maximally(self, unit):
        plan = plan_round_robin(unit.graph, 4)
        assert plan.streams_used() == 4
        # nearly every launch changes stream
        assert plan.switches() == len(plan.order) - 1


class TestOpara:
    def test_single_linear_chain_uses_one_stream(self):
        # batch=1 single branch: one linear pipeline, nothing to overlap
        wl = single_branch(batch=1)
        plan = plan_opara(wl.graph, 4, P100)
        assert plan.streams_used() == 1
        assert plan.cross_edges(wl.graph) == 0

    def test_pipelines_never_split_across_streams(self):
        # 3 independent per-sample pipelines on 3 streams: each pipeline
        # stays whole (zero cross-stream dependency edges).
        wl = single_branch(batch=3)
        plan = plan_opara(wl.graph, 3, P100)
        assert plan.streams_used() == 3
        assert plan.cross_edges(wl.graph) == 0

    def test_overlaps_inception_branches(self, unit):
        plan = plan_opara(unit.graph, 4, P100)
        assert plan.streams_used() > 1
        assert plan.makespan_us > 0

    def test_fewer_sync_edges_than_round_robin(self, unit):
        opara = plan_opara(unit.graph, 4, P100)
        rr = plan_round_robin(unit.graph, 4)
        assert opara.cross_edges(unit.graph) < rr.cross_edges(unit.graph)
        assert opara.switches() < rr.switches()

    def test_segments_are_maximal_linear_runs(self, unit):
        ests = estimate_graph(unit.graph, P100)
        segs = segments_of(unit.graph, ests)
        covered = [nid for s in segs for nid in s.nodes]
        assert sorted(covered) == sorted(n.node_id
                                         for n in unit.graph.nodes)
        deps_of = {n.node_id: n.deps for n in unit.graph.nodes}
        for seg in segs:
            for prev, nxt in zip(seg.nodes, seg.nodes[1:]):
                assert deps_of[nxt] == (prev,)

    def test_to_dict_includes_cross_edges_with_graph(self, unit):
        plan = plan_opara(unit.graph, 4, P100)
        d = plan.to_dict(unit.graph)
        assert d["cross_edges"] == plan.cross_edges(unit.graph)
        assert d["policy"] == "opara"


class TestValidation:
    def test_zero_streams_rejected(self, unit):
        with pytest.raises(SchedulingError, match="at least one stream"):
            plan_round_robin(unit.graph, 0)

    def test_empty_graph_rejected(self):
        from repro.runtime.graph import KernelGraph
        with pytest.raises(SchedulingError, match="no nodes"):
            plan_layer_serial(KernelGraph("empty"))
