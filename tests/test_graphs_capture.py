"""Dispatch capture: effect oracles, engine shims, dense renumbering."""

from __future__ import annotations

import pytest

from repro.errors import GraphCaptureError
from repro.graphs.capture import (
    Effect,
    GraphCapture,
    KernelEffects,
    capture_works,
    effects_from_net,
    poisoned_effects,
    synthetic_effects,
)
from repro.nn.zoo import build_lenet
from repro.runtime.executor import FixedStreamExecutor
from repro.runtime.lowering import lower_net
from tests.conftest import small_kernel


def _works(net=None):
    return lower_net(net or build_lenet(batch=4, seed=0), "forward")


class TestKernelEffects:
    def test_uid_lookup_wins(self):
        spec = small_kernel("a")
        eff = KernelEffects()
        eff.add(spec, Effect(writes=frozenset({"x"})))
        assert eff.lookup(spec).writes == frozenset({"x"})

    def test_name_tag_fallback_for_rebuilt_specs(self):
        eff = KernelEffects()
        eff.add(small_kernel("a", tag="t"),
                Effect(writes=frozenset({"x"})))
        rebuilt = small_kernel("a", tag="t")    # fresh uid, same identity
        assert eff.lookup(rebuilt).writes == frozenset({"x"})

    def test_conflicting_name_tag_never_resolves(self):
        eff = KernelEffects()
        eff.add(small_kernel("a", tag="t"),
                Effect(writes=frozenset({"x"})))
        eff.add(small_kernel("a", tag="t"),
                Effect(writes=frozenset({"y"})))
        assert eff.lookup(small_kernel("a", tag="t")) is None

    def test_unknown_spec_is_none(self):
        assert KernelEffects().lookup(small_kernel()) is None


class TestOracles:
    def test_net_derived_covers_every_kernel(self):
        net = build_lenet(batch=4, seed=0)
        works = _works(net)
        eff = effects_from_net(net, works)
        for w in works:
            for spec in w.all_kernels():
                assert eff.lookup(spec) is not None, spec.name

    def test_synthetic_chains_are_independent_but_layers_ordered(self):
        works = _works()
        eff = synthetic_effects(works)
        w = works[0]
        c0 = eff.lookup(w.parallel_chains[0].kernels[-1])
        c1 = eff.lookup(w.parallel_chains[1].kernels[-1])
        assert not (c0.writes & c1.writes)      # chain outputs disjoint
        # The next layer reads the previous layer's output region.
        nxt_spec = (works[1].parallel_chains[0].kernels[0]
                    if works[1].parallel_chains
                    else works[1].serial_kernels[0])
        assert f"{w.key}:out" in eff.lookup(nxt_spec).reads

    def test_poisoned_all_write_one_region(self):
        works = _works()
        eff = poisoned_effects(works)
        for w in works:
            for spec in w.all_kernels():
                assert eff.lookup(spec).writes == frozenset(
                    {"poison:shared"})


class TestGraphCapture:
    def _capture(self, p100, works, effects):
        ex = FixedStreamExecutor(p100, 2)
        return capture_works(ex, works, effects, name="t",
                             network="lenet")

    def test_capture_records_and_restores(self, p100):
        net = build_lenet(batch=4, seed=0)
        works = _works(net)
        saved = (p100.launch, p100.synchronize)
        graph = self._capture(p100, works, effects_from_net(net, works))
        assert (p100.launch, p100.synchronize) == saved   # shims removed
        assert graph.launches == sum(w.num_kernels for w in works)
        assert graph.device == p100.props.name
        # Dense ids: default stream is 0, pool streams renumbered from 1.
        sids = graph.streams_used()
        assert sids <= set(range(len(sids) + 1))

    def test_capture_pass_still_executes(self, p100):
        net = build_lenet(batch=4, seed=0)
        works = _works(net)
        self._capture(p100, works, effects_from_net(net, works))
        # warmup pass + captured pass both really dispatched
        assert p100.kernels_launched >= 2 * sum(w.num_kernels
                                                for w in works)

    def test_unknown_effect_is_a_capture_miss_not_a_crash(self, p100):
        works = _works()
        ex = FixedStreamExecutor(p100, 2)
        with pytest.raises(GraphCaptureError, match="no memory effect"):
            capture_works(ex, works, KernelEffects())   # empty oracle
        # The pass itself completed before build() raised.
        assert p100.kernels_launched > 0

    def test_empty_capture_rejected(self, p100):
        cap = GraphCapture(p100, KernelEffects())
        with cap:
            pass
        with pytest.raises(GraphCaptureError, match="no kernel launches"):
            cap.build()

    def test_nested_capture_refused(self, p100):
        with GraphCapture(p100, KernelEffects()):
            with pytest.raises(GraphCaptureError, match="nested"):
                GraphCapture(p100, KernelEffects()).__enter__()
        # ... and the refusal did not clobber the outer capture's shims.
        assert getattr(p100, "_graph_capture_active") is False
