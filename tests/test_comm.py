"""Tests for the interconnect and all-reduce cost models."""

import pytest

from repro.comm import (
    AllReduceModel,
    Interconnect,
    NVLINK1,
    PCIE3,
    parameter_server_time_us,
    ring_allreduce_time_us,
)
from repro.errors import ReproError


class TestInterconnect:
    def test_transfer_time(self):
        link = Interconnect("x", bandwidth_gbps=10.0, latency_us=2.0)
        # 10 GB/s = 10,000 B/us
        assert link.transfer_time_us(100_000) == pytest.approx(2.0 + 10.0)

    def test_zero_bytes_costs_latency(self):
        assert PCIE3.transfer_time_us(0) == PCIE3.latency_us

    def test_negative_bytes_rejected(self):
        with pytest.raises(ReproError):
            PCIE3.transfer_time_us(-1)

    def test_invalid_link_rejected(self):
        with pytest.raises(ReproError):
            Interconnect("bad", bandwidth_gbps=0.0, latency_us=1.0)

    def test_nvlink_faster_than_pcie(self):
        n = 100 * 1024 * 1024
        assert NVLINK1.transfer_time_us(n) < PCIE3.transfer_time_us(n)


class TestRingAllReduce:
    def test_single_worker_free(self):
        assert ring_allreduce_time_us(1e9, 1, PCIE3) == 0.0

    def test_formula(self):
        link = Interconnect("x", bandwidth_gbps=10.0, latency_us=1.0)
        t = ring_allreduce_time_us(1e6, 4, link)
        expected = 6 * 1.0 + (2 * 3 / 4) * 1e6 / 1e4
        assert t == pytest.approx(expected)

    def test_bandwidth_term_saturates_with_workers(self):
        """Ring all-reduce's payload term approaches 2x the data size."""
        big = 1e9
        t4 = ring_allreduce_time_us(big, 4, NVLINK1)
        t16 = ring_allreduce_time_us(big, 16, NVLINK1)
        assert t16 < 1.3 * t4

    def test_ps_scales_linearly(self):
        big = 1e8
        t2 = parameter_server_time_us(big, 2, PCIE3)
        t8 = parameter_server_time_us(big, 8, PCIE3)
        assert t8 == pytest.approx(7 * t2, rel=1e-6)

    def test_ring_beats_ps_at_scale(self):
        big = 1e8
        assert ring_allreduce_time_us(big, 8, PCIE3) \
            < parameter_server_time_us(big, 8, PCIE3)

    def test_invalid_worker_count(self):
        with pytest.raises(ReproError):
            ring_allreduce_time_us(1.0, 0, PCIE3)


class TestAllReduceModel:
    def test_ring_dispatch(self):
        m = AllReduceModel(PCIE3, "ring")
        assert m.time_us(1e6, 4) == ring_allreduce_time_us(1e6, 4, PCIE3)

    def test_ps_dispatch(self):
        m = AllReduceModel(PCIE3, "ps")
        assert m.time_us(1e6, 4) == parameter_server_time_us(1e6, 4, PCIE3)

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError):
            AllReduceModel(PCIE3, "butterfly").time_us(1.0, 2)
