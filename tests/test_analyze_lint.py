"""Tests for the determinism lint framework and its rule catalog."""

from pathlib import Path

import pytest

from repro.analyze import (
    DEFAULT_RULES,
    LintRule,
    MissingLayerSyncRule,
    UnorderedIterationRule,
    UnseededRngRule,
    WallClockRule,
    lint_file,
    lint_paths,
)
from repro.errors import AnalyzeError


def _lint_source(tmp_path, source, rules=None, name="mod.py"):
    f = tmp_path / name
    f.write_text(source)
    violations, suppressed = lint_file(f, rules or DEFAULT_RULES)
    return violations, suppressed


class TestUnseededRng:
    def test_flags_argless_constructors(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "import random\n"
            "import numpy as np\n"
            "r = random.Random()\n"
            "g = np.random.default_rng()\n"
        ), rules=[UnseededRngRule()])
        assert [x.line for x in v] == [3, 4]

    def test_flags_global_samplers(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "import random\n"
            "import numpy as np\n"
            "x = random.randint(0, 9)\n"
            "y = np.random.rand(3)\n"
            "np.random.shuffle(y)\n"
        ), rules=[UnseededRngRule()])
        assert [x.line for x in v] == [3, 4, 5]

    def test_seeded_is_clean(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "import random\n"
            "import numpy as np\n"
            "r = random.Random(0)\n"
            "g = np.random.default_rng(42)\n"
            "x = r.randint(0, 9)\n"
            "y = g.random(3)\n"
        ), rules=[UnseededRngRule()])
        assert v == []


class TestWallClock:
    def test_scoped_to_simulated_paths(self, tmp_path):
        source = "import time\nt = time.perf_counter()\n"
        core = tmp_path / "core"
        core.mkdir()
        f = core / "m.py"
        f.write_text(source)
        v, _ = lint_file(f, [WallClockRule()])
        assert len(v) == 1 and v[0].rule == "wall-clock"
        # same source outside core/gpusim/verify: out of scope
        g = tmp_path / "bench_m.py"
        g.write_text(source)
        v2, _ = lint_file(g, [WallClockRule()])
        assert v2 == []

    def test_flags_datetime_now(self, tmp_path):
        core = tmp_path / "verify"
        core.mkdir()
        f = core / "m.py"
        f.write_text("import datetime\nts = datetime.datetime.now()\n")
        v, _ = lint_file(f, [WallClockRule()])
        assert len(v) == 1


class TestUnorderedIteration:
    def test_flags_for_over_set(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "s = {1, 2, 3}\n"
            "for x in s | {4}:\n"
            "    print(x)\n"
            "out = [y for y in set(range(3))]\n"
        ), rules=[UnorderedIterationRule()])
        assert [x.line for x in v] == [2, 4]

    def test_sorted_set_is_clean(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "s = {1, 2, 3}\n"
            "for x in sorted(s):\n"
            "    print(x)\n"
        ), rules=[UnorderedIterationRule()])
        assert v == []


class TestMissingLayerSync:
    def test_flags_multi_stream_no_sync(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "def dispatch(gpu, chains, pool):\n"
            "    for i, chain in enumerate(chains):\n"
            "        gpu.launch(chain, stream=pool[i % len(pool)])\n"
        ), rules=[MissingLayerSyncRule()])
        assert len(v) == 1 and v[0].rule == "missing-layer-sync"

    def test_sync_call_silences(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "def dispatch(gpu, chains, pool):\n"
            "    for i, chain in enumerate(chains):\n"
            "        gpu.launch(chain, stream=pool[i % len(pool)])\n"
            "    gpu.synchronize()\n"
        ), rules=[MissingLayerSyncRule()])
        assert v == []

    def test_default_stream_launch_is_a_barrier(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "def dispatch(gpu, chains, pool):\n"
            "    for i, chain in enumerate(chains):\n"
            "        gpu.launch(chain, stream=pool[i % len(pool)])\n"
            "    gpu.launch(tail, stream=None)\n"
        ), rules=[MissingLayerSyncRule()])
        assert v == []

    def test_single_fixed_stream_is_clean(self, tmp_path):
        v, _ = _lint_source(tmp_path, (
            "def dispatch(gpu, chains, s):\n"
            "    for chain in chains:\n"
            "        gpu.launch(chain, stream=s)\n"
        ), rules=[MissingLayerSyncRule()])
        assert v == []


class TestSuppression:
    def test_allow_on_same_line(self, tmp_path):
        v, suppressed = _lint_source(tmp_path, (
            "import random\n"
            "x = random.randint(0, 9)  # repro: allow(unseeded-rng)\n"
        ), rules=[UnseededRngRule()])
        assert v == [] and suppressed == 1

    def test_allow_on_line_above(self, tmp_path):
        v, suppressed = _lint_source(tmp_path, (
            "import random\n"
            "# repro: allow(unseeded-rng)\n"
            "x = random.randint(0, 9)\n"
        ), rules=[UnseededRngRule()])
        assert v == [] and suppressed == 1

    def test_wildcard_allows_everything(self, tmp_path):
        v, suppressed = _lint_source(tmp_path, (
            "import random\n"
            "x = random.randint(0, 9)  # repro: allow(*)\n"
        ))
        assert v == [] and suppressed == 1

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        v, suppressed = _lint_source(tmp_path, (
            "import random\n"
            "x = random.randint(0, 9)  # repro: allow(wall-clock)\n"
        ), rules=[UnseededRngRule()])
        assert len(v) == 1 and suppressed == 0


class TestFramework:
    def test_custom_rule_plugs_in(self, tmp_path):
        class NoPrintRule(LintRule):
            name = "no-print"
            description = "print() in library code"

            def check(self, tree, source, path):
                import ast
                return [(n.lineno, "print call")
                        for n in ast.walk(tree)
                        if isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Name)
                        and n.func.id == "print"]

        f = tmp_path / "m.py"
        f.write_text("print('hi')\n")
        report = lint_paths([f], rules=[NoPrintRule()])
        assert not report.ok
        assert report.violations[0].rule == "no-print"

    def test_directory_walk_and_report(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("import random\nrandom.random()\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert len(report.violations) == 1
        assert report.violations[0].rule == "unseeded-rng"

    def test_syntax_error_raises_analyze_error(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def broken(:\n")
        with pytest.raises(AnalyzeError):
            lint_file(f, DEFAULT_RULES)

    def test_nothing_to_lint_raises(self, tmp_path):
        with pytest.raises(AnalyzeError):
            lint_paths([tmp_path / "nope.txt"])

    def test_report_json_shape(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nrandom.random()\n")
        report = lint_paths([tmp_path])
        doc = report.to_dict()
        assert doc["kind"] == "lint-report"
        assert doc["ok"] is False
        assert doc["violations"][0]["rule"] == "unseeded-rng"


class TestRepoIsClean:
    def test_src_repro_passes_default_rules(self):
        import repro

        report = lint_paths([Path(repro.__file__).parent])
        assert report.ok, report.render()
