"""Tests for synthetic datasets and batch loaders."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    DATASET_SPECS,
    PairBatchLoader,
    make_dataset,
    make_pair_dataset,
)
from repro.errors import ReproError


class TestSpecs:
    """The spec table records the paper's Table 4 verbatim."""

    def test_mnist(self):
        s = DATASET_SPECS["mnist"]
        assert (s.train_images, s.test_images) == (60_000, 10_000)
        assert (s.channels, s.pixels, s.classes) == (1, 28, 10)

    def test_cifar10(self):
        s = DATASET_SPECS["cifar10"]
        assert (s.train_images, s.test_images) == (50_000, 10_000)
        assert (s.channels, s.pixels, s.classes) == (3, 32, 10)

    def test_imagenet(self):
        s = DATASET_SPECS["imagenet"]
        assert s.train_images == 1_200_000
        assert (s.pixels, s.classes) == (256, 1000)


class TestMakeDataset:
    def test_shapes(self):
        ds = make_dataset("cifar10", num_samples=50)
        assert ds.images.shape == (50, 3, 32, 32)
        assert ds.labels.shape == (50,)
        assert ds.images.dtype == np.float32

    def test_pixel_override(self):
        ds = make_dataset("imagenet", num_samples=4, pixels=227, classes=10)
        assert ds.images.shape == (4, 3, 227, 227)
        assert ds.num_classes <= 10

    def test_deterministic(self):
        a = make_dataset("mnist", 20, seed=5)
        b = make_dataset("mnist", 20, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_class_structure_learnable(self):
        """Nearest-prototype classification must beat chance by far."""
        ds = make_dataset("cifar10", 400, noise=0.3, seed=1)
        flat = ds.images.reshape(len(ds), -1)
        centroids = np.stack([
            flat[ds.labels == c].mean(axis=0) for c in range(10)
        ])
        pred = np.argmin(
            ((flat[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == ds.labels).mean() > 0.8

    def test_unknown_dataset(self):
        with pytest.raises(ReproError, match="unknown dataset"):
            make_dataset("svhn")


class TestPairs:
    def test_balanced_similarity(self):
        base = make_dataset("mnist", 300, seed=2)
        a, b, sim = make_pair_dataset(base, 400, seed=3)
        assert a.shape == b.shape == (400, 1, 28, 28)
        assert 0.35 < sim.mean() < 0.65

    def test_similar_pairs_share_class(self):
        base = make_dataset("mnist", 300, seed=2)
        # reconstruct labels by matching images back to the dataset
        a, b, sim = make_pair_dataset(base, 100, seed=4)
        # spot check: similar pairs are closer on average than dissimilar
        d = ((a - b).reshape(100, -1) ** 2).sum(axis=1)
        assert d[sim == 1].mean() < d[sim == 0].mean()


class TestBatchLoader:
    def test_batch_shapes(self):
        ds = make_dataset("cifar10", 100, seed=0)
        loader = BatchLoader(ds, 32, seed=1)
        batch = loader.next_batch()
        assert batch["data"].shape == (32, 3, 32, 32)
        assert batch["label"].dtype == np.float32

    def test_epoch_counting(self):
        ds = make_dataset("cifar10", 100, seed=0)
        loader = BatchLoader(ds, 50, seed=1)
        loader.next_batch()
        assert loader.epoch == 0
        loader.next_batch()
        loader.next_batch()
        assert loader.epoch == 1

    def test_shuffle_seed_reproducible(self):
        ds = make_dataset("cifar10", 100, seed=0)
        l1 = BatchLoader(ds, 10, seed=9)
        l2 = BatchLoader(ds, 10, seed=9)
        for _ in range(5):
            np.testing.assert_array_equal(l1.next_batch()["label"],
                                          l2.next_batch()["label"])

    def test_different_seed_differs(self):
        ds = make_dataset("cifar10", 200, seed=0)
        l1 = BatchLoader(ds, 100, seed=1)
        l2 = BatchLoader(ds, 100, seed=2)
        assert not np.array_equal(l1.next_batch()["label"],
                                  l2.next_batch()["label"])

    def test_no_shuffle_is_sequential(self):
        ds = make_dataset("cifar10", 30, seed=0)
        loader = BatchLoader(ds, 10, shuffle=False)
        batch = loader.next_batch()
        np.testing.assert_array_equal(batch["data"], ds.images[:10])

    def test_oversized_batch_rejected(self):
        ds = make_dataset("cifar10", 10, seed=0)
        with pytest.raises(ReproError):
            BatchLoader(ds, 11)

    def test_pair_loader(self):
        base = make_dataset("mnist", 100, seed=2)
        a, b, sim = make_pair_dataset(base, 80, seed=3)
        loader = PairBatchLoader(a, b, sim, 16, seed=4)
        batch = loader.next_batch()
        assert set(batch) == {"data", "data_p", "sim"}
        assert batch["sim"].shape == (16,)

    def test_pair_loader_length_mismatch(self):
        with pytest.raises(ReproError):
            PairBatchLoader(np.zeros((3, 1)), np.zeros((2, 1)),
                            np.zeros(3), 1)
