"""The differential checker: every executor path vs the serial baseline."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.nn.zoo import build_lenet
from repro.verify.differential import (
    EXECUTOR_PATHS,
    build_path_executor,
    run_differential,
)


def test_all_paths_bit_identical_on_lenet() -> None:
    report = run_differential(network="lenet", seed=0, iterations=1,
                              batch=4)
    assert report.ok
    assert [o.executor for o in report.outcomes] == list(EXECUTOR_PATHS)
    assert all(o.divergence is None and not o.error
               for o in report.outcomes)
    # Same losses everywhere: the paths share numerics by construction.
    losses = {tuple(o.losses) for o in report.outcomes}
    assert len(losses) == 1
    assert all(o.sim_time_us > 0 for o in report.outcomes)
    assert "OK" in report.render() and "DIVERGED" not in report.render()


def test_planted_weight_perturbation_is_caught() -> None:
    # A builder that hands pristine weights to the probe and the serial
    # baseline, then perturbed ones to every later path — the kind of
    # per-path state leak the harness exists to catch.
    calls = {"n": 0}

    def builder(batch: int, seed: int):
        net = build_lenet(batch=batch, seed=seed)
        calls["n"] += 1
        if calls["n"] >= 3:
            p, _, _ = next(iter(net.unique_params()))
            p.data.reshape(-1)[0] += 1e-3
        return net

    report = run_differential(network="lenet", seed=0, iterations=1,
                              batch=4, executors=["serial", "stream-pool"],
                              net_builder=builder)
    assert not report.ok
    bad = report.outcomes[1]
    assert bad.executor == "stream-pool"
    assert bad.divergence is not None
    # Perturbed weights surface at the causally-earliest point: the
    # forward activations of iteration 0.
    assert bad.divergence.iteration == 0
    assert bad.divergence.divergence.section == "blob"
    assert "DIVERGED" in report.render()
    assert report.to_dict()["ok"] is False


def test_serial_baseline_is_forced_first() -> None:
    report = run_differential(network="lenet", seed=0, iterations=1,
                              batch=4, executors=["stream-pool"])
    assert report.outcomes[0].executor == "serial"
    assert report.ok


def test_rejects_unknown_path_and_bad_sharding() -> None:
    with pytest.raises(ReproError):
        build_path_executor("warp-drive", "p100")
    with pytest.raises(ReproError):
        run_differential(network="lenet", batch=3, replicas=2,
                         executors=["data-parallel"])
