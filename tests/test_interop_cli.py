"""The ``python -m repro interop`` subcommand."""

import json

from repro.cli import main

FAST = ["--unit", "5a", "--batch", "2", "--streams", "4"]


class TestPlanAction:
    def test_plan_text_report(self, capsys):
        assert main(["interop", "plan"] + FAST) == 0
        out = capsys.readouterr().out
        assert "interop plan: inception-5a" in out
        for policy in ("layer-serial", "round-robin",
                       "chain-affine", "opara"):
            assert policy in out
        assert "verdict: OK" in out

    def test_plan_json_report(self, capsys):
        assert main(["interop", "plan", "--format", "json"] + FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["unit"] == "5a"
        assert len(payload["entries"]) == 4
        assert all(e["certified"] for e in payload["entries"])

    def test_single_policy(self, capsys):
        assert main(["interop", "plan", "--policy", "opara"] + FAST) == 0
        out = capsys.readouterr().out
        assert "opara" in out and "round-robin" not in out


class TestRunAction:
    def test_run_measures_both_paths(self, capsys):
        assert main(["interop", "run", "--policy", "opara"] + FAST) == 0
        out = capsys.readouterr().out
        assert "eager µs" in out and "graph µs" in out

    def test_report_action_includes_resource_mix(self, capsys):
        assert main(["interop", "report"] + FAST) == 0
        assert "resource mix" in capsys.readouterr().out

    def test_report_file_written(self, tmp_path, capsys):
        out_file = tmp_path / "interop.json"
        assert main(["interop", "plan", "--report", str(out_file)]
                    + FAST) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["ok"] is True


class TestHazardInjection:
    def test_injected_hazard_falls_back_and_reports_ok(self, capsys):
        assert main(["interop", "plan", "--inject-hazard"] + FAST) == 0
        out = capsys.readouterr().out
        assert "HAZARD INJECTED" in out
        assert "fallback->" in out


class TestBadInput:
    def test_unknown_policy_suggests(self, capsys):
        assert main(["interop", "plan", "--policy", "opera"] + FAST) == 2
        err = capsys.readouterr().err
        assert "unknown policy" in err
        assert "did you mean" in err and "opara" in err

    def test_unknown_unit(self, capsys):
        assert main(["interop", "plan", "--unit", "9z"]) == 2
        err = capsys.readouterr().err
        assert "unknown inception unit" in err
        assert "5a" in err and "5b" in err


def test_interop_listed_in_experiments(capsys):
    assert main(["experiments"]) == 0
    assert "interop" in capsys.readouterr().out
