"""Tests for Blob and fillers."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.blob import Blob
from repro.nn.filler import (
    constant_filler,
    gaussian_filler,
    make_filler,
    xavier_filler,
)


class TestBlob:
    def test_zero_initialized(self):
        b = Blob((2, 3), name="w")
        assert b.shape == (2, 3)
        assert b.count == 6
        assert not b.data.any()
        assert b.data.dtype == np.float32

    def test_from_array(self):
        b = Blob(np.ones((2, 2), dtype=np.float64))
        assert b.data.dtype == np.float32
        assert b.data.sum() == 4

    def test_lazy_diff(self):
        b = Blob((4,))
        assert b._diff is None
        d = b.diff
        assert d.shape == (4,)

    def test_diff_setter_validates_shape(self):
        b = Blob((4,))
        with pytest.raises(NetworkError):
            b.diff = np.zeros((5,), dtype=np.float32)

    def test_zero_diff(self):
        b = Blob((3,))
        b.diff += 1.0
        b.zero_diff()
        assert not b.diff.any()

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(NetworkError):
            Blob((0, 3))

    def test_nbytes_counts_data_and_diff(self):
        b = Blob((10,))
        assert b.nbytes == 2 * 10 * 4


class TestFillers:
    def _rng(self):
        return np.random.default_rng(0)

    def test_constant(self):
        arr = np.zeros((3, 3), dtype=np.float32)
        constant_filler(2.5)(arr, self._rng())
        assert (arr == 2.5).all()

    def test_gaussian_stats(self):
        arr = np.zeros(200_000, dtype=np.float32)
        gaussian_filler(std=0.1)(arr, self._rng())
        assert abs(float(arr.mean())) < 0.01
        assert float(arr.std()) == pytest.approx(0.1, rel=0.05)

    def test_xavier_range(self):
        arr = np.zeros((50, 100), dtype=np.float32)
        xavier_filler()(arr, self._rng())
        scale = np.sqrt(3.0 / 100)
        assert float(arr.max()) <= scale
        assert float(arr.min()) >= -scale
        assert float(np.abs(arr).max()) > 0.8 * scale  # actually spans range

    def test_deterministic_given_seed(self):
        a = np.zeros(100, dtype=np.float32)
        b = np.zeros(100, dtype=np.float32)
        gaussian_filler()(a, np.random.default_rng(7))
        gaussian_filler()(b, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_factory(self):
        arr = np.zeros(10, dtype=np.float32)
        make_filler("constant", value=1.0)(arr, self._rng())
        assert (arr == 1.0).all()

    def test_factory_unknown(self):
        with pytest.raises(NetworkError):
            make_filler("orthogonal")
