"""Tests for the three executors."""

import pytest

from repro.core.framework import GLP4NN
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import (
    FixedStreamExecutor,
    GLP4NNExecutor,
    NaiveExecutor,
)
from repro.runtime.lowering import lower_conv_forward


def fresh(name="P100"):
    return GPU(get_device(name), record_timeline=False)


class TestNaiveExecutor:
    def test_single_stream_only(self):
        gpu = GPU(get_device("P100"))
        ex = NaiveExecutor(gpu)
        ex.run(lower_conv_forward(SIAMESE_CONVS[0]))
        assert set(gpu.timeline.by_stream()) == {0}

    def test_run_pass_sums(self):
        ex = NaiveExecutor(fresh())
        works = [lower_conv_forward(c) for c in SIAMESE_CONVS[:2]]
        total = ex.run_pass(works)
        assert total == pytest.approx(sum(r.elapsed_us for r in ex.runs))

    def test_layer_times_keeps_latest(self):
        ex = NaiveExecutor(fresh())
        w = lower_conv_forward(SIAMESE_CONVS[0])
        ex.run(w)
        t2 = ex.run(w).elapsed_us
        assert ex.layer_times()["conv1/forward"] == pytest.approx(t2)


class TestFixedStreamExecutor:
    def test_uses_requested_stream_count(self):
        gpu = GPU(get_device("P100"))
        ex = FixedStreamExecutor(gpu, 4)
        ex.run(lower_conv_forward(SIAMESE_CONVS[1]))
        lanes = set(gpu.timeline.by_stream())
        assert len(lanes - {0}) == 4

    def test_more_streams_faster_on_medium_layer(self):
        w = lower_conv_forward(CIFAR10_CONVS[2])
        t1 = None
        times = {}
        for s in (1, 4, 8):
            ex = FixedStreamExecutor(fresh(), s)
            ex.run(w)
            times[s] = ex.run(w).elapsed_us
        assert times[4] < times[1]
        assert times[8] <= times[4] * 1.05


class TestGLP4NNExecutor:
    def test_profiles_then_speeds_up(self):
        w = lower_conv_forward(CIFAR10_CONVS[2])
        ex = GLP4NNExecutor(fresh())
        first = ex.run(w)
        second = ex.run(w)
        assert first.profiled and not second.profiled
        assert second.elapsed_us < first.elapsed_us

    def test_shared_framework_reuses_profiles(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        ex1 = GLP4NNExecutor(gpu, framework=glp)
        w = lower_conv_forward(CIFAR10_CONVS[2])
        ex1.run(w)
        ex2 = GLP4NNExecutor(gpu, framework=glp)
        run = ex2.run(w)
        assert not run.profiled   # profile shared through the framework

    def test_warm_up(self):
        ex = GLP4NNExecutor(fresh())
        works = [lower_conv_forward(c) for c in SIAMESE_CONVS[:2]]
        ex.warm_up(works)
        runs = [ex.run(w) for w in works]
        assert all(not r.profiled for r in runs)

    def test_beats_naive_on_compute_heavy_layer(self):
        w = lower_conv_forward(CIFAR10_CONVS[2])
        naive = NaiveExecutor(fresh())
        naive.run(w)
        t_naive = naive.run(w).elapsed_us
        glp = GLP4NNExecutor(fresh())
        glp.run(w)
        t_glp = glp.run(w).elapsed_us
        assert t_naive / t_glp > 1.5

    def test_degrades_gracefully_on_tiny_layer(self):
        """Sub-ms layers may lose slightly (paper Fig. 9) but never badly."""
        w = lower_conv_forward(SIAMESE_CONVS[0])
        naive = NaiveExecutor(fresh())
        naive.run(w)
        t_naive = naive.run(w).elapsed_us
        glp = GLP4NNExecutor(fresh())
        glp.run(w)
        t_glp = glp.run(w).elapsed_us
        assert t_glp < 1.2 * t_naive
