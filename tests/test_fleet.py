"""Tests for the fault-tolerant multi-replica serving fleet.

Covers the circuit-breaker state machine, heartbeat health monitoring,
router policies and their edge cases (all breakers open, single-replica
degeneration, hedge-vs-primary completion ties), the fleet engine's
end-to-end safety contract (exactly one terminal outcome per request,
no duplicate accounting, bit-determinism per seed), the fleet fault
sites, the chaos harness and the CLI surface.
"""

import json

import pytest

from repro.cli import main
from repro.comm.interconnect import Interconnect
from repro.errors import FaultPlanError, ReproError
from repro.faults import FaultPlan, FaultSpec, chaos_session, uninstall
from repro.fleet import (
    BreakerState,
    CircuitBreaker,
    FleetEngine,
    HealthMonitor,
    Replica,
    Router,
    build_fleet,
    default_chaos_plan,
    fleet_sweep,
    serve_fleet,
)
from repro.serve.engine import serve_trace
from repro.serve.request import poisson_trace
from repro.serve.slo import Outcome
from repro.verify import check_fleet_invariants, fuzz_fleet

ZERO_LINK = Interconnect("zero", bandwidth_gbps=1.0, latency_us=0.0)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends with no installed injector."""
    uninstall()
    yield
    uninstall()


def small_trace(n_target=20, seed=3, rps=4_000.0, slo_us=3_000.0):
    return poisson_trace(rps=rps, duration_us=n_target / rps * 1e6,
                         slo_us=slo_us, seed=seed)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker("r0")
        assert b.state is BreakerState.CLOSED
        assert b.allows(0.0)

    def test_consecutive_failures_trip_open(self):
        b = CircuitBreaker("r0", failure_threshold=2)
        b.record_failure(10.0)
        assert b.state is BreakerState.CLOSED
        b.record_failure(20.0)
        assert b.state is BreakerState.OPEN
        assert not b.allows(20.0)

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker("r0", failure_threshold=2)
        b.record_failure(10.0)
        b.record_success(20.0)
        b.record_failure(30.0)
        assert b.state is BreakerState.CLOSED

    def test_timeouts_trip_on_their_own_counter(self):
        b = CircuitBreaker("r0", failure_threshold=2, timeout_threshold=3)
        b.record_timeout(1.0)
        b.record_timeout(2.0)
        assert b.state is BreakerState.CLOSED
        b.record_timeout(3.0)
        assert b.state is BreakerState.OPEN
        assert "timeout" in b.transitions[-1].reason

    def test_cooldown_half_opens_lazily(self):
        b = CircuitBreaker("r0", failure_threshold=1, cooldown_us=100.0)
        b.record_failure(0.0)
        assert not b.allows(50.0)
        assert b.state is BreakerState.OPEN
        assert b.allows(100.0)        # cooldown elapsed: probe allowed
        assert b.state is BreakerState.HALF_OPEN

    def test_probe_budget_limits_half_open_traffic(self):
        b = CircuitBreaker("r0", failure_threshold=1, cooldown_us=10.0,
                           probe_budget=1)
        b.record_failure(0.0)
        assert b.allows(10.0)
        b.note_probe()
        assert not b.allows(10.0)     # budget spent, probe in flight

    def test_probe_success_closes(self):
        b = CircuitBreaker("r0", failure_threshold=1, cooldown_us=10.0)
        b.record_failure(0.0)
        assert b.allows(10.0)
        b.note_probe()
        b.record_success(15.0)
        assert b.state is BreakerState.CLOSED
        assert b.consecutive_failures == 0

    def test_probe_failure_reopens(self):
        b = CircuitBreaker("r0", failure_threshold=1, cooldown_us=10.0)
        b.record_failure(0.0)
        assert b.allows(10.0)
        b.note_probe()
        b.record_failure(15.0)
        assert b.state is BreakerState.OPEN
        assert not b.allows(20.0)     # cooldown restarted at reopen

    def test_force_open_and_begin_probe(self):
        b = CircuitBreaker("r0", cooldown_us=1e9)
        b.force_open(5.0, "crash")
        assert b.state is BreakerState.OPEN
        b.begin_probe(7.0, "healthy heartbeats")
        assert b.state is BreakerState.HALF_OPEN
        assert b.allows(7.0)

    def test_transitions_are_logged_with_timestamps(self):
        b = CircuitBreaker("r0", failure_threshold=1, cooldown_us=10.0)
        b.record_failure(3.0)
        b.allows(13.0)
        b.record_success(14.0)
        states = [(t.frm, t.to) for t in b.transitions]
        assert states == [("closed", "open"), ("open", "half-open"),
                          ("half-open", "closed")]
        assert [t.at_us for t in b.transitions] == [3.0, 13.0, 14.0]
        d = b.transitions[0].to_dict()
        assert d["from"] == "closed" and d["to"] == "open"

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker("r0", failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker("r0", cooldown_us=-1.0)
        with pytest.raises(ReproError):
            CircuitBreaker("r0", probe_budget=0)


class TestHealthMonitor:
    def test_crash_and_restart_cycle(self):
        m = HealthMonitor("r0")
        assert m.alive and not m.recovering
        m.crash(permanent=False)
        assert not m.alive and m.crashes == 1
        m.restart()
        assert m.alive and m.recovering
        assert m.beat_ok()            # healthy_after=1: routable again

    def test_healthy_after_requires_consecutive_beats(self):
        m = HealthMonitor("r0", healthy_after=2)
        m.crash(permanent=False)
        m.restart()
        assert not m.beat_ok()
        assert m.beat_ok()

    def test_permanent_crash_never_restarts(self):
        m = HealthMonitor("r0")
        m.crash(permanent=True)
        m.restart()
        assert not m.alive and m.permanently_dead


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
def make_replicas(n, device="titanxp", executor="fixed"):
    from repro.serve.engine import resolve_device, resolve_net
    props = resolve_device(device)
    builder = resolve_net("lenet")
    return [Replica(i, props, executor, builder) for i in range(n)]


class TestRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            Router("random")

    def test_least_loaded_prefers_empty_replica(self):
        replicas = make_replicas(2)
        for r in replicas:
            r.warm_up()
        router = Router("least-loaded")
        from repro.fleet.replica import RequestCopy
        replicas[0].offer(RequestCopy(1, 0, 0.0, 5_000.0), 0.0)
        pick = router.pick(replicas, now=0.0)
        assert pick is replicas[1]

    def test_ties_break_on_index(self):
        replicas = make_replicas(3)
        pick = Router("least-loaded").pick(replicas, now=0.0)
        assert pick is replicas[0]

    def test_exclude_is_honored_until_it_empties_the_pool(self):
        replicas = make_replicas(2)
        router = Router("least-loaded")
        assert router.pick(replicas, 0.0, exclude=(0,)) is replicas[1]
        # Excluding everything falls back to the full pool.
        assert router.pick(replicas, 0.0, exclude=(0, 1)) is not None
        assert router.pick([], 0.0) is None

    def test_p2c_is_seed_deterministic(self):
        replicas = make_replicas(4)
        picks_a = [Router("p2c", seed=5).pick(replicas, 0.0).index
                   for _ in range(1)]
        picks_b = [Router("p2c", seed=5).pick(replicas, 0.0).index
                   for _ in range(1)]
        assert picks_a == picks_b
        r1, r2 = Router("p2c", seed=5), Router("p2c", seed=5)
        seq1 = [r1.pick(replicas, 0.0).index for _ in range(20)]
        seq2 = [r2.pick(replicas, 0.0).index for _ in range(20)]
        assert seq1 == seq2


# ----------------------------------------------------------------------
# Fleet engine end-to-end
# ----------------------------------------------------------------------
class TestFleetEngine:
    def test_clean_run_serves_everything(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        report = engine.serve(trace)
        assert report.requests == len(trace)
        assert report.ok == len(trace)
        assert report.failovers == 0 and report.crashes == 0
        assert check_fleet_invariants(engine, trace) == []

    def test_bit_deterministic_per_seed(self):
        trace = small_trace()
        a = serve_fleet("lenet", ["titanxp", "p100"], "fixed", 3, trace,
                        seed=4, router_policy="p2c")
        b = serve_fleet("lenet", ["titanxp", "p100"], "fixed", 3, trace,
                        seed=4, router_policy="p2c")
        assert a.to_json() == b.to_json()
        assert a.render() == b.render()

    def test_heterogeneous_devices_cycle(self):
        trace = small_trace()
        report = serve_fleet("lenet", ["titanxp", "p100"], "fixed", 3,
                             trace, seed=0)
        assert report.devices == ("TitanXP", "P100", "TitanXP")

    def test_crash_fails_over_and_replica_rejoins(self):
        trace = small_trace(n_target=40)
        plan = FaultPlan(specs=(FaultSpec(
            site="replica_crash", key="r1", nth=2, effect="restart",
            max_fires=1),), seed=0)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0,
                             heartbeat_us=1_000.0, restart_after_us=2_000.0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert report.crashes == 1
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []
        # The crashed replica's breaker opened and later half-opened for
        # its graceful rejoin probe.
        transitions = [(t.frm, t.to)
                       for t in engine.breakers[1].transitions]
        assert ("closed", "open") in transitions
        assert ("open", "half-open") in transitions

    def test_permanent_crash_stays_dead(self):
        trace = small_trace(n_target=40)
        plan = FaultPlan(specs=(FaultSpec(
            site="replica_crash", key="r1", nth=2, effect="permanent",
            max_fires=1),), seed=0)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert report.crashes == 1
        assert not engine.monitors[1].alive
        assert engine.monitors[1].permanently_dead
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []

    def test_link_drops_are_retried_on_other_replicas(self):
        trace = small_trace()
        plan = FaultPlan(specs=(FaultSpec(
            site="link_drop", key="fe->r0", every=2, max_fires=3),), seed=0)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert report.link_drops == 3
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []

    def test_slow_replica_only_stretches_the_timeline(self):
        trace = small_trace()
        plan = FaultPlan(specs=(FaultSpec(
            site="replica_slow", key="r0", every=1, effect="severe"),),
            seed=0)
        clean = serve_fleet("lenet", ["titanxp"], "fixed", 1, trace, seed=0)
        with chaos_session(plan):
            slow = serve_fleet("lenet", ["titanxp"], "fixed", 1, trace,
                               seed=0)
        assert slow.requests == clean.requests
        assert slow.latency_p99_us > clean.latency_p99_us

    def test_failed_batches_trip_breaker_and_fail_over(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0,
                             failure_threshold=1)
        for r in engine.replicas:
            r.warm_up()          # warm outside chaos: poison serving only
        # One poisoned kernel launch fails the first serving batch as a
        # unit; the breaker (threshold 1) opens and the batch's requests
        # fail over to the surviving replica.
        plan = FaultPlan(specs=(
            FaultSpec(site="launch", kind="persistent", max_fires=1),),
            seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert report.failovers >= 1
        transitions = [(t.frm, t.to) for b in engine.breakers
                       for t in b.transitions]
        assert ("closed", "open") in transitions
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []

    def test_warmup_failure_joins_the_fleet_dead(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        plan = FaultPlan(specs=(
            FaultSpec(site="launch", kind="persistent", nth=1,
                      max_fires=1),), seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert not engine.monitors[0].alive    # r0 warms up first, dies
        assert engine.monitors[1].alive        # r1 carries the trace
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []

    def test_fail_fast_when_every_breaker_is_open(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0,
                             cooldown_us=1e9)
        for b in engine.breakers:
            b.force_open(0.0, "test")
        report = engine.serve(trace)
        assert report.failfast == len(trace)
        assert report.shed_admission == len(trace)
        assert report.ok == 0
        assert check_fleet_invariants(engine, trace) == []

    def test_single_replica_degenerates_to_serving_engine(self):
        """With one replica and a zero-cost link, fleet outcome counts
        match the PR-2 single-engine serving path."""
        trace = small_trace()
        fleet = serve_fleet("lenet", ["titanxp"], "fixed", 1, trace,
                            seed=0, link=ZERO_LINK, payload_bytes=0)
        single = serve_trace("lenet", "titanxp", "fixed", trace, seed=0)
        assert fleet.ok == single.ok
        assert fleet.late == single.late
        assert fleet.shed_queue + fleet.shed_admission == \
            single.shed_queue + single.shed_admission

    def test_validation(self):
        with pytest.raises(ReproError):
            build_fleet("lenet", ["titanxp"], "fixed", 0)
        with pytest.raises(ReproError):
            build_fleet("lenet", [], "fixed", 1)
        with pytest.raises(ReproError):
            build_fleet("lenet", ["titanxp"], "fixed", 1, heartbeat_us=0.0)
        with pytest.raises(ReproError):
            build_fleet("lenet", ["titanxp"], "fixed", 1,
                        hedge_after_us=-1.0)


# ----------------------------------------------------------------------
# Hedging
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_race_at_identical_timestamps_counts_once(self):
        """Primary and hedge finish at the same simulated instant on twin
        replicas; the tie resolves deterministically by batch-start order
        and the loser is suppressed."""
        trace = poisson_trace(rps=100.0, duration_us=5_000.0,
                              slo_us=50_000.0, seed=1)
        assert len(trace) == 1
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0,
                             hedge_after_us=0.0, link=ZERO_LINK,
                             payload_bytes=0)
        report = engine.serve(trace)
        assert report.hedges_issued == 1
        assert report.hedges_won + report.hedges_suppressed >= 1
        assert report.ok == 1 and report.requests == 1
        led = engine.ledger[trace.requests[0].rid]
        assert led.executions == 2 and led.suppressed == 1
        assert check_fleet_invariants(engine, trace) == []
        # The tie-break is stable: replaying yields the identical report.
        replay_engine = build_fleet("lenet", ["titanxp"], "fixed", 2,
                                    seed=0, hedge_after_us=0.0,
                                    link=ZERO_LINK, payload_bytes=0)
        assert replay_engine.serve(trace).to_json() == report.to_json()

    def test_hedging_under_chaos_never_double_counts(self):
        trace = small_trace(n_target=40)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 3, seed=0,
                             hedge_after_us=400.0)
        with chaos_session(default_chaos_plan(3, seed=0)):
            report = engine.serve(trace)
        assert report.requests == len(trace)
        assert check_fleet_invariants(engine, trace) == []

    def test_no_hedge_to_the_same_replica(self):
        trace = poisson_trace(rps=100.0, duration_us=5_000.0,
                              slo_us=50_000.0, seed=1)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 1, seed=0,
                             hedge_after_us=100.0)
        report = engine.serve(trace)
        # Single replica: the hedge has nowhere distinct to go.
        assert report.hedges_issued == 0
        assert report.ok == 1


# ----------------------------------------------------------------------
# Fleet fault sites
# ----------------------------------------------------------------------
class TestFleetFaultSites:
    @pytest.mark.parametrize("site,effect", [
        ("replica_crash", "restart"),
        ("replica_crash", "permanent"),
        ("replica_slow", "mild"),
        ("replica_slow", "severe"),
        ("link_drop", ""),
    ])
    def test_spec_round_trips(self, site, effect):
        spec = FaultSpec(site=site, key="r0", nth=3, effect=effect,
                         max_fires=1)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        plan = FaultPlan(specs=(spec,), seed=9, name="rt")
        assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan

    @pytest.mark.parametrize("site,bad", [
        ("replica_crash", "drop"),
        ("replica_slow", "permanent"),
        ("link_drop", "severe"),
    ])
    def test_invalid_effects_rejected(self, site, bad):
        with pytest.raises(FaultPlanError):
            FaultSpec(site=site, effect=bad)

    def test_per_replica_specs_compose_in_one_session(self):
        """One plan, one spec per replica: each key-scoped fault hits only
        its own replica."""
        trace = small_trace(n_target=40)
        plan = FaultPlan(specs=(
            FaultSpec(site="replica_slow", key="r0", every=2,
                      effect="severe", max_fires=2),
            FaultSpec(site="replica_crash", key="r1", nth=3,
                      effect="restart", max_fires=1),
            FaultSpec(site="link_drop", key="fe->r2", nth=1, max_fires=1),
        ), seed=0)
        engine = build_fleet("lenet", ["titanxp"], "fixed", 3, seed=0)
        with chaos_session(plan) as injector:
            report = engine.serve(trace)
        assert engine.monitors[1].crashes == 1
        assert engine.monitors[0].crashes == 0
        assert engine.monitors[2].crashes == 0
        assert report.link_drops == 1
        assert injector.summary().get("replica_slow", 0) >= 1
        assert check_fleet_invariants(engine, trace) == []

    def test_chaos_sessions_nest_and_restore(self):
        from repro.faults import active_injector
        outer = default_chaos_plan(2, seed=0)
        inner = FaultPlan(specs=(FaultSpec(site="link_drop",
                                           key="fe->r0"),), seed=1)
        with chaos_session(outer) as oinj:
            assert active_injector() is oinj
            with chaos_session(inner) as iinj:
                assert active_injector() is iinj
            assert active_injector() is oinj
        assert active_injector() is None

    def test_default_chaos_plan_never_kills_a_lone_replica(self):
        lone = default_chaos_plan(1, seed=0)
        assert all(s.site != "replica_crash" for s in lone.specs)
        pair = default_chaos_plan(2, seed=0)
        crash = [s for s in pair.specs if s.site == "replica_crash"]
        assert len(crash) == 1 and crash[0].effect == "restart"


# ----------------------------------------------------------------------
# Chaos harness and sweep
# ----------------------------------------------------------------------
class TestFleetChaosHarness:
    def test_fuzz_fleet_holds_the_contract(self):
        report = fuzz_fleet(replicas=2, rounds=2, seed=11)
        assert report.ok, report.render()
        assert report.total_fires > 0
        assert all(r.deterministic for r in report.rounds)

    def test_invariant_checker_catches_tampering(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        engine.serve(trace)
        assert check_fleet_invariants(engine, trace) == []
        # Forge a duplicate terminal record: the checker must object.
        engine.slo.records.append(engine.slo.records[0])
        violations = check_fleet_invariants(engine, trace)
        assert any("terminal records" in v for v in violations)

    def test_invariant_checker_catches_double_counting(self):
        trace = small_trace()
        engine = build_fleet("lenet", ["titanxp"], "fixed", 2, seed=0)
        engine.serve(trace)
        led = engine.ledger[trace.requests[0].rid]
        led.executions += 1          # an unsuppressed duplicate execution
        violations = check_fleet_invariants(engine, trace)
        assert any("expected exactly 1" in v for v in violations)

    def test_fleet_sweep_reports_p99_per_replica_count(self):
        trace = small_trace()
        report = fleet_sweep("lenet", ["titanxp"], "fixed", [1, 2], trace,
                             seed=0)
        assert [row.replicas for row in report.rows] == [1, 2]
        assert all(row.chaos is not None for row in report.rows)
        text = report.render()
        assert "p99 vs. replica count" in text
        doc = json.loads(report.to_json())
        assert len(doc["rows"]) == 2
        assert doc["rows"][0]["clean"]["requests"] == len(trace)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFleetCLI:
    def test_fleet_sweep_text(self, capsys):
        assert main(["fleet", "--replicas", "1,2", "--duration-ms", "4",
                     "--no-chaos"]) == 0
        out = capsys.readouterr().out
        assert "p99 vs. replica count" in out

    def test_fleet_json_and_report_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.json"
        assert main(["fleet", "--replicas", "1", "--duration-ms", "4",
                     "--format", "json", "--report", str(out_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert json.loads(out_path.read_text())["rows"] == doc["rows"]

    def test_fleet_unknown_net_suggests(self, capsys):
        assert main(["fleet", "--net", "lente"]) == 2
        err = capsys.readouterr().err
        assert "unknown network" in err
        assert "did you mean" in err and "lenet" in err

    def test_fleet_unknown_device_suggests(self, capsys):
        assert main(["fleet", "--devices", "titanpx"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "titanxp" in err

    def test_fleet_bad_replica_list(self, capsys):
        assert main(["fleet", "--replicas", "two"]) == 2
        assert "bad --replicas" in capsys.readouterr().err

    def test_fleet_custom_fault_plan(self, capsys, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="link_drop", key="fe->r0",
                                          nth=1, max_fires=1),), seed=0)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert main(["fleet", "--replicas", "2", "--duration-ms", "4",
                     "--faults", str(path)]) == 0
        assert "link drop" in capsys.readouterr().out

    def test_serve_format_json_parity(self, capsys):
        assert main(["serve", "--net", "lenet", "--executor", "fixed",
                     "--duration-ms", "4", "--format", "json"]) == 0
        via_format = capsys.readouterr().out
        assert main(["serve", "--net", "lenet", "--executor", "fixed",
                     "--duration-ms", "4", "--json"]) == 0
        via_alias = capsys.readouterr().out
        assert json.loads(via_format) == json.loads(via_alias)

    def test_fleet_trace_scenario_exports(self, tmp_path, capsys):
        assert main(["trace", "fleet", "-o",
                     str(tmp_path / "fleet.json")]) == 0
        doc = json.loads((tmp_path / "fleet.json").read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert any(n and n.startswith("fleet.") for n in names)
