"""Tests for the analytical model (Eqs. 1-9)."""

import math

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.core.resource_tracker import KernelProfile
from repro.gpusim.device import get_device


def profile(name="k", blocks=18, threads=512, regs=33, smem=0,
            duration=50.0, instances=10):
    return KernelProfile(
        name=name, grid=(blocks, 1, 1), block=(threads, 1, 1),
        registers_per_thread=regs, shared_mem_per_block=smem,
        duration_us=duration, instances=instances,
    )


class TestKernelBound:
    def test_launch_pipeline_bound(self):
        dev = get_device("K40C")  # T_launch = 8 us
        model = AnalyticalModel(dev)
        b = model.kernel_bound(profile(duration=20.0))
        assert b.launch_bound == math.ceil(20.0 / 8.0)

    def test_launch_bound_disabled(self):
        dev = get_device("K40C")
        model = AnalyticalModel(dev, use_launch_bound=False)
        b = model.kernel_bound(profile(duration=4.0))
        assert b.launch_bound == dev.max_concurrent_kernels

    def test_short_kernel_gets_bound_one(self):
        dev = get_device("P100")  # T_launch = 5.5 us
        b = AnalyticalModel(dev).kernel_bound(profile(duration=3.0))
        assert b.launch_bound == 1
        assert b.upper == 1

    def test_beta_eq8_floor(self):
        dev = get_device("P100")  # 56 SMs
        b = AnalyticalModel(dev).kernel_bound(profile(blocks=130))
        assert b.beta == 130 // 56

    def test_beta_clamped_below_at_one(self):
        dev = get_device("P100")
        b = AnalyticalModel(dev).kernel_bound(profile(blocks=3))
        assert b.beta == 1

    def test_beta_capped_at_residency_fit(self):
        dev = get_device("P100")
        # 10,000 blocks of 256 threads: floor gives 178, but only 8 fit
        b = AnalyticalModel(dev).kernel_bound(profile(blocks=10_000,
                                                      threads=256))
        assert b.beta == 8

    def test_thread_bound_eq7(self):
        dev = get_device("P100")
        b = AnalyticalModel(dev).kernel_bound(
            profile(blocks=100, threads=512, duration=1e6)
        )
        expected = (dev.max_threads_per_sm * dev.sm_count) // (512 * 100)
        assert b.thread_bound == expected

    def test_smem_bound_eq7(self):
        dev = get_device("P100")
        b = AnalyticalModel(dev).kernel_bound(
            profile(blocks=50, smem=8192, duration=1e6)
        )
        expected = (dev.shared_mem_per_sm * dev.sm_count) // (8192 * 50)
        assert b.smem_bound == expected

    def test_no_smem_means_unbounded_by_smem(self):
        dev = get_device("P100")
        b = AnalyticalModel(dev).kernel_bound(profile(smem=0))
        assert b.smem_bound == dev.max_concurrent_kernels


class TestSolve:
    def test_paper_workflow_example_shape(self):
        """The paper's Fig. 6 example: conv1's (im2col, sgemm, gemmk) on
        K40C yields a small pool (the paper reports 3)."""
        dev = get_device("K40C")
        profiles = [
            profile("im2col", blocks=2, threads=512, regs=33, duration=9.0),
            profile("sgemm", blocks=36, threads=64, smem=2176, regs=40,
                    duration=12.0),
            profile("gemmk", blocks=46, threads=256, regs=40, duration=6.0),
        ]
        decision = AnalyticalModel(dev).solve("conv1/forward", profiles)
        assert 2 <= decision.c_out <= 6
        assert decision.occupancy_ratio > 0

    def test_cout_is_sum_of_counts(self):
        dev = get_device("P100")
        profiles = [profile("a", duration=100.0),
                    profile("b", blocks=30, threads=256, duration=80.0)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        assert d.c_out == max(1, sum(d.counts.values()))

    def test_respects_concurrency_degree(self):
        dev = get_device("GTX980")  # Maxwell: C = 16
        profiles = [profile("tiny", blocks=1, threads=32, duration=1e5)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        assert d.c_out <= 16

    def test_respects_thread_budget(self):
        dev = get_device("P100")
        profiles = [profile("fat", blocks=200, threads=1024, duration=1e5)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        bound = next(b for b in d.bounds if b.name == "fat")
        assert bound.tau * bound.beta * d.counts["fat"] \
            <= dev.max_threads_per_sm

    def test_respects_smem_budget(self):
        dev = get_device("P100")
        profiles = [profile("smemmy", blocks=300, threads=64,
                            smem=16 * 1024, duration=1e5)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        b = d.bounds[0]
        assert b.smem * b.beta * d.counts["smemmy"] <= dev.shared_mem_per_sm

    def test_short_kernels_limited_by_launch_pipeline(self):
        dev = get_device("P100")
        profiles = [profile("quick", blocks=2, threads=64, duration=4.0)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        assert d.c_out == 1

    def test_long_small_kernels_get_high_concurrency(self):
        dev = get_device("P100")
        profiles = [profile("slow", blocks=2, threads=64, duration=500.0)]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        assert d.c_out >= 8

    def test_cout_at_least_one(self):
        dev = get_device("P100")
        # kernels so fat even one saturates: still returns c_out >= 1
        profiles = [
            profile("huge1", blocks=1000, threads=1024, duration=1e5),
            profile("huge2", blocks=1000, threads=1024, duration=1e5),
        ]
        d = AnalyticalModel(dev).solve("x/forward", profiles)
        assert d.c_out >= 1

    def test_analysis_time_recorded(self):
        dev = get_device("P100")
        d = AnalyticalModel(dev).solve("x/forward", [profile()])
        assert d.analysis_time_us > 0

    def test_no_profiles_rejected(self):
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            AnalyticalModel(get_device("P100")).solve("x", [])

    def test_device_dependence(self):
        """The same kernels get different pools on different GPUs — the
        paper's Observation 2."""
        profiles = [
            profile("im2col", blocks=4, threads=512, regs=33, duration=25.0),
            profile("sgemm", blocks=8, threads=256, smem=4352, duration=40.0),
        ]
        outs = {
            name: AnalyticalModel(get_device(name)).solve("l", profiles).c_out
            for name in ("K40C", "P100", "TitanXP")
        }
        assert len(set(outs.values())) >= 2


class TestRegisterConstraint:
    """The paper treats registers as soft; hard mode is an ablation."""

    def test_soft_mode_ignores_registers(self):
        dev = get_device("P100")
        # 128 regs x 512 threads: one block uses the whole register file
        profiles = [profile("reggy", blocks=4, threads=512, regs=128,
                            duration=1e5)]
        soft = AnalyticalModel(dev).solve("x/forward", profiles)
        assert soft.counts["reggy"] >= 2   # soft: threads are the only cap

    def test_hard_mode_binds(self):
        dev = get_device("P100")
        profiles = [profile("reggy", blocks=4, threads=512, regs=128,
                            duration=1e5)]
        hard = AnalyticalModel(dev, hard_registers=True).solve(
            "x/forward", profiles)
        # 128 regs * 512 threads = 64Ki = the whole register file
        assert hard.counts["reggy"] == 1

    def test_hard_mode_no_effect_on_light_kernels(self):
        dev = get_device("P100")
        profiles = [profile("light", blocks=4, threads=256, regs=16,
                            duration=1e5)]
        soft = AnalyticalModel(dev).solve("x/forward", profiles)
        hard = AnalyticalModel(dev, hard_registers=True).solve(
            "x/forward", profiles)
        assert soft.counts == hard.counts
