"""Tests for the bounded admission queue and the SLO admission gate."""

import pytest

from repro.errors import ReproError
from repro.serve.queue import (
    AdmissionController,
    BoundedQueue,
    OverflowPolicy,
    QueueOrder,
)
from repro.serve.request import InferenceRequest


def req(rid, arrival=0.0, slo=1_000.0):
    return InferenceRequest(rid, arrival, arrival + slo)


class TestBoundedQueue:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ReproError, match="capacity"):
            BoundedQueue(capacity=0)

    def test_tail_drop_keeps_existing_requests(self):
        q = BoundedQueue(capacity=2)
        assert q.offer(req(0), now=0.0)
        assert q.offer(req(1), now=1.0)
        assert not q.offer(req(2), now=2.0)
        assert q.shed_overflow == 1 and q.admitted == 2
        assert [r.rid for r in q.pop_batch(4)] == [0, 1]

    def test_drop_oldest_evicts_most_stale(self):
        q = BoundedQueue(capacity=2, overflow=OverflowPolicy.DROP_OLDEST)
        q.offer(req(0), now=0.0)
        q.offer(req(1), now=1.0)
        assert q.offer(req(2), now=2.0)   # admitted, rid 0 evicted
        assert [r.rid for r in q.drain_evicted()] == [0]
        assert q.shed_overflow == 1 and q.admitted == 3
        assert [r.rid for r in q.pop_batch(4)] == [1, 2]
        assert q.drain_evicted() == []    # drained once, then empty

    def test_fifo_order_is_by_enqueue_time(self):
        q = BoundedQueue(capacity=8, order=QueueOrder.FIFO)
        # Later deadline enqueued first: FIFO ignores deadlines.
        q.offer(req(0, arrival=0.0, slo=9_000.0), now=5.0)
        q.offer(req(1, arrival=1.0, slo=100.0), now=6.0)
        assert [r.rid for r in q.pop_batch(2)] == [0, 1]

    def test_edf_order_is_by_deadline(self):
        q = BoundedQueue(capacity=8, order=QueueOrder.EDF)
        q.offer(req(0, arrival=0.0, slo=9_000.0), now=5.0)
        q.offer(req(1, arrival=1.0, slo=100.0), now=6.0)
        assert [r.rid for r in q.pop_batch(2)] == [1, 0]

    def test_pop_batch_respects_max(self):
        q = BoundedQueue(capacity=8)
        for i in range(5):
            q.offer(req(i), now=float(i))
        assert [r.rid for r in q.pop_batch(3)] == [0, 1, 2]
        assert len(q) == 2
        with pytest.raises(ReproError, match="batch size"):
            q.pop_batch(0)

    def test_high_water_and_oldest(self):
        q = BoundedQueue(capacity=8)
        assert q.oldest_enqueue_us() is None
        q.offer(req(0), now=3.0)
        q.offer(req(1), now=7.0)
        assert q.oldest_enqueue_us() == 3.0
        assert q.high_water == 2
        q.pop_batch(2)
        assert q.high_water == 2          # watermark survives the drain


class TestAdmissionController:
    def test_admits_everything_without_estimate(self):
        gate = AdmissionController()
        assert gate.admits(req(0, slo=1.0), now=0.0, queued=99,
                           service_estimate_us=None)
        assert gate.rejected == 0

    def test_rejects_predictably_late_request(self):
        gate = AdmissionController()
        # 4 queued ahead at 300 us each: finishes at 1500 > deadline 1000.
        r = req(0, arrival=0.0, slo=1_000.0)
        assert not gate.admits(r, now=0.0, queued=4,
                               service_estimate_us=300.0)
        assert gate.rejected == 1

    def test_admits_reachable_deadline(self):
        gate = AdmissionController()
        r = req(0, arrival=0.0, slo=1_000.0)
        assert gate.admits(r, now=0.0, queued=1, service_estimate_us=300.0)
        assert gate.rejected == 0

    def test_disabled_gate_is_transparent(self):
        gate = AdmissionController(enabled=False)
        r = req(0, slo=1.0)
        assert gate.admits(r, now=0.0, queued=50, service_estimate_us=500.0)
        assert gate.rejected == 0
