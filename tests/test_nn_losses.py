"""Tests for loss layers and accuracy."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layers import AccuracyLayer
from repro.nn.layers.losses import (
    ContrastiveLossLayer,
    SoftmaxWithLossLayer,
    softmax,
)
from tests.conftest import assert_grad_close, numeric_gradient

RNG = lambda s=0: np.random.default_rng(s)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(RNG(0).normal(size=(5, 10)).astype(np.float32))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-5)

    def test_shift_invariance(self):
        x = RNG(1).normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-4)

    def test_large_logits_stable(self):
        p = softmax(np.array([[1000.0, 0.0]], dtype=np.float32))
        assert np.isfinite(p).all()


class TestSoftmaxWithLoss:
    def _layer(self, n=4, k=5):
        layer = SoftmaxWithLossLayer("loss")
        layer.setup([(n, k), (n,)], RNG())
        return layer

    def test_uniform_logits_give_log_k(self):
        layer = self._layer(n=3, k=10)
        logits = np.zeros((3, 10), dtype=np.float32)
        labels = np.array([0, 5, 9], dtype=np.float32)
        (loss,) = layer.forward([logits, labels])
        assert float(loss[0]) == pytest.approx(np.log(10), rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        layer = self._layer(n=2, k=3)
        logits = np.array([[100, 0, 0], [0, 0, 100]], dtype=np.float32)
        labels = np.array([0, 2], dtype=np.float32)
        (loss,) = layer.forward([logits, labels])
        assert float(loss[0]) < 1e-4

    def test_gradient(self):
        layer = self._layer()
        rng = RNG(2)
        logits = rng.normal(size=(4, 5)).astype(np.float32)
        labels = rng.integers(0, 5, size=4).astype(np.float32)

        def loss():
            return float(layer.forward([logits, labels])[0][0])

        layer.forward([logits, labels])
        grad, none = layer.backward(
            [np.ones(1, dtype=np.float32)], [logits, labels], [None]
        )
        assert none is None
        assert_grad_close(grad, numeric_gradient(loss, logits, eps=1e-2))

    def test_loss_weight_scales_gradient(self):
        layer = self._layer()
        logits = RNG(3).normal(size=(4, 5)).astype(np.float32)
        labels = np.zeros(4, dtype=np.float32)
        layer.forward([logits, labels])
        g1, _ = layer.backward([np.array([1.0], dtype=np.float32)],
                               [logits, labels], [None])
        layer.forward([logits, labels])
        g2, _ = layer.backward([np.array([2.0], dtype=np.float32)],
                               [logits, labels], [None])
        np.testing.assert_allclose(g2, 2 * g1, rtol=1e-5)

    def test_is_loss(self):
        assert self._layer().is_loss

    def test_batch_mismatch_rejected(self):
        layer = SoftmaxWithLossLayer("loss")
        with pytest.raises(NetworkError):
            layer.setup([(4, 5), (3,)], RNG())


class TestContrastiveLoss:
    def _layer(self, n=4, d=3, margin=1.0):
        layer = ContrastiveLossLayer("loss", margin=margin)
        layer.setup([(n, d), (n, d), (n,)], RNG())
        return layer

    def test_identical_similar_pairs_zero_loss(self):
        layer = self._layer()
        a = RNG(1).normal(size=(4, 3)).astype(np.float32)
        sim = np.ones(4, dtype=np.float32)
        (loss,) = layer.forward([a, a.copy(), sim])
        assert float(loss[0]) == pytest.approx(0.0, abs=1e-6)

    def test_distant_dissimilar_pairs_zero_loss(self):
        layer = self._layer(margin=1.0)
        a = np.zeros((2, 3), dtype=np.float32)
        b = np.full((2, 3), 10.0, dtype=np.float32)
        sim = np.zeros(2, dtype=np.float32)
        (loss,) = layer.forward([a, b, sim])
        assert float(loss[0]) == pytest.approx(0.0, abs=1e-6)

    def test_close_dissimilar_pairs_penalized(self):
        layer = self._layer(margin=2.0)
        a = np.zeros((1, 3), dtype=np.float32)
        b = np.full((1, 3), 0.1, dtype=np.float32)
        sim = np.zeros(1, dtype=np.float32)
        (loss,) = layer.forward([a, b, sim])
        assert float(loss[0]) > 0.5

    def test_gradients(self):
        layer = self._layer()
        rng = RNG(5)
        a = rng.normal(size=(4, 3)).astype(np.float32)
        b = rng.normal(size=(4, 3)).astype(np.float32)
        sim = rng.integers(0, 2, size=4).astype(np.float32)

        def loss():
            return float(layer.forward([a, b, sim])[0][0])

        layer.forward([a, b, sim])
        da, db, dsim = layer.backward(
            [np.ones(1, dtype=np.float32)], [a, b, sim], [None]
        )
        assert dsim is None
        assert_grad_close(da, numeric_gradient(loss, a, eps=1e-2))
        assert_grad_close(db, numeric_gradient(loss, b, eps=1e-2))

    def test_antisymmetric_gradients(self):
        layer = self._layer()
        rng = RNG(6)
        a = rng.normal(size=(4, 3)).astype(np.float32)
        b = rng.normal(size=(4, 3)).astype(np.float32)
        sim = np.ones(4, dtype=np.float32)
        layer.forward([a, b, sim])
        da, db, _ = layer.backward([np.ones(1, dtype=np.float32)],
                                   [a, b, sim], [None])
        np.testing.assert_allclose(da, -db, rtol=1e-5)


class TestAccuracy:
    def _layer(self, top_k=1):
        layer = AccuracyLayer("acc", top_k=top_k)
        layer.setup([(4, 3), (4,)], RNG())
        return layer

    def test_top1(self):
        layer = self._layer()
        scores = np.array([[9, 0, 0], [0, 9, 0], [0, 9, 0], [0, 0, 9]],
                          dtype=np.float32)
        labels = np.array([0, 1, 0, 2], dtype=np.float32)
        (acc,) = layer.forward([scores, labels])
        assert float(acc[0]) == pytest.approx(0.75)

    def test_topk(self):
        layer = self._layer(top_k=2)
        scores = np.array([[3, 2, 1]] * 4, dtype=np.float32)
        labels = np.array([1, 1, 2, 0], dtype=np.float32)
        (acc,) = layer.forward([scores, labels])
        assert float(acc[0]) == pytest.approx(0.75)

    def test_no_gradients(self):
        layer = self._layer()
        assert layer.backward([None], [None, None], [None]) == [None, None]
