"""Per-kernel resource estimates and the complementarity heuristic."""

import pytest

from repro.interop.resources import (
    BOUND_KINDS,
    KernelEstimate,
    complementarity,
    dominant_bound,
    estimate,
    estimate_graph,
    suggest_pool_size,
)
from repro.interop.workloads import inception_unit
from repro.serve.engine import resolve_device

P100 = resolve_device("p100")


@pytest.fixture(scope="module")
def workload():
    return inception_unit("5b", batch=2)


class TestEstimate:
    def test_every_node_estimated(self, workload):
        ests = estimate_graph(workload.graph, P100)
        assert set(ests) == {n.node_id for n in workload.graph.nodes}

    def test_fields_sane(self, workload):
        for est in estimate_graph(workload.graph, P100).values():
            assert est.duration_us > 0
            assert 0 < est.fill <= 1.0
            assert 0 < est.occupancy <= 1.0
            assert est.intensity >= 0
            assert est.bound in BOUND_KINDS

    def test_single_spec_matches_graph_estimate(self, workload):
        node = workload.graph.nodes[0]
        assert (estimate(node.spec, P100)
                == estimate_graph(workload.graph, P100)[node.node_id])

    def test_to_dict_round_trips_fields(self, workload):
        est = estimate(workload.graph.nodes[0].spec, P100)
        d = est.to_dict()
        assert d["bound"] == est.bound
        assert d["duration_us"] == pytest.approx(est.duration_us, abs=1e-3)


def _est(bound, fill, duration_us=10.0):
    return KernelEstimate(name="k", duration_us=duration_us, fill=fill,
                          occupancy=0.5, intensity=1.0, bound=bound)


class TestComplementarity:
    def test_different_bounds_that_fit_score_highest(self):
        assert complementarity(_est("compute", 0.4),
                               _est("memory", 0.4)) == 1.0

    def test_same_bound_saturating_scores_zero(self):
        assert complementarity(_est("compute", 1.0),
                               _est("compute", 1.0)) == 0.0

    def test_symmetric(self):
        a, b = _est("compute", 0.9), _est("latency", 0.1)
        assert complementarity(a, b) == complementarity(b, a)

    def test_bounded_zero_one(self):
        for ba in BOUND_KINDS:
            for bb in BOUND_KINDS:
                for fa in (0.1, 0.7, 1.0):
                    s = complementarity(_est(ba, fa), _est(bb, 0.5))
                    assert 0.0 <= s <= 1.0


class TestDominantBound:
    def test_picks_bound_with_most_time(self):
        ests = [_est("compute", 0.5, duration_us=100.0),
                _est("memory", 0.5, duration_us=1.0)]
        assert dominant_bound(ests) == "compute"


class TestSuggestPoolSize:
    def test_within_cap(self, workload):
        size = suggest_pool_size(workload.graph, P100)
        assert 1 <= size <= 8

    def test_deterministic(self, workload):
        assert (suggest_pool_size(workload.graph, P100)
                == suggest_pool_size(workload.graph, P100))
