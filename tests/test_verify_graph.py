"""Graph-replay differential: bit-exact equivalence with a replay guard."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.graphs.runtime import GraphModeRuntime
from repro.verify import VerifyReport, verify_graph_replay
from repro.verify.graph_replay import DEFAULT_ITERATIONS


def test_graph_replay_matches_eager_across_seeds():
    report = verify_graph_replay("lenet", seeds=(0, 1), batch=4)
    assert report.ok
    for o in report.outcomes:
        assert o.divergence is None and not o.error
        assert o.replays >= 1 and o.captures >= 1
        assert o.iterations == DEFAULT_ITERATIONS
        # Graph mode must be a pure timing win, and an actual win.
        assert o.graph_sim_us < o.eager_sim_us
    assert "graph-replay" in report.render()
    assert json.dumps(report.to_dict())


def test_too_few_iterations_rejected():
    with pytest.raises(ReproError, match="iterations"):
        verify_graph_replay("lenet", iterations=2)


def test_silent_fallback_cannot_vacuously_pass(monkeypatch):
    # Force graph mode to never leave eager dispatch: the differential
    # would trivially match, so the replay guard must fail the seed.
    monkeypatch.setattr(
        GraphModeRuntime, "run_pass",
        lambda self, executor, works: self._eager(executor, list(works)))
    report = verify_graph_replay("lenet", seeds=(0,), batch=4)
    assert not report.ok
    (outcome,) = report.outcomes
    assert outcome.divergence is None        # numerics matched...
    assert outcome.replays == 0              # ...but nothing replayed
    assert "never replayed" in report.render()


def test_verify_report_folds_in_graph_part():
    graph = verify_graph_replay("lenet", seeds=(0,), batch=4)
    report = VerifyReport(network="lenet", device="p100", seed=0,
                          graph=graph)
    assert report.ok
    assert report.to_dict()["graph"]["ok"] is True
    assert "graph-replay" in report.render()
    bad = VerifyReport(network="lenet", device="p100", seed=0)
    assert bad.to_dict()["graph"] is None


def test_cli_verify_only_graph(tmp_path, capsys):
    report_file = tmp_path / "report.json"
    rc = main(["verify", "--network", "lenet", "--only", "graph",
               "--batch", "4", "--report", str(report_file)])
    assert rc == 0
    assert "verify: PASS" in capsys.readouterr().out
    doc = json.loads(report_file.read_text())
    assert doc["ok"] is True and doc["graph"]["ok"] is True
    assert doc["differential"] is None
