"""Tests for event-record/wait edge validation in ``check_timeline``."""

from repro.gpusim import Event
from repro.gpusim.timeline import SyncRecord, TraceRecord, check_timeline
from tests.conftest import small_kernel


def _rec(name, stream, enq, start, end):
    return TraceRecord(name=name, tag="", stream_id=stream,
                       enqueue_us=enq, start_us=start, end_us=end,
                       grid=(1, 1, 1), block=(32, 1, 1),
                       registers=16, shared_mem=0)


def _sync(kind, event_id, stream, enq, complete, name="ev"):
    return SyncRecord(kind=kind, event_id=event_id, event_name=name,
                      stream_id=stream, enqueue_us=enq,
                      complete_us=complete)


class TestEngineEmitsSyncRecords:
    def test_record_and_wait_tracked(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        p100.launch(small_kernel("a", flops=300_000.0), stream=s1)
        ev = Event()
        p100.record_event(ev, stream=s1)
        p100.wait_event(ev, stream=s2)
        p100.launch(small_kernel("b"), stream=s2)
        p100.synchronize()
        kinds = [s.kind for s in p100.timeline.syncs]
        assert kinds == ["record", "wait"]
        rec, wait = p100.timeline.syncs
        assert rec.event_id == wait.event_id
        assert wait.complete_us >= rec.complete_us

    def test_real_event_flow_validates_clean(self, p100):
        s1, s2, s3 = (p100.create_stream() for _ in range(3))
        a = p100.launch(small_kernel("a", flops=500_000.0), stream=s1)
        ev = Event()
        p100.record_event(ev, stream=s1)
        p100.wait_event(ev, stream=s2)
        p100.launch(small_kernel("b"), stream=s2)
        p100.launch(small_kernel("c"), stream=s3)
        p100.synchronize()
        assert check_timeline(p100.timeline.records,
                              p100.timeline.syncs) == []

    def test_clear_drops_syncs(self, p100):
        p100.record_event(Event(), stream=p100.create_stream())
        p100.synchronize()
        assert p100.timeline.syncs
        p100.timeline.clear()
        assert p100.timeline.syncs == []


class TestEventRecordRule:
    def test_record_completing_early_is_flagged(self):
        # The record claims completion at t=5, but a kernel enqueued
        # before it on the same stream runs until t=20.
        records = [_rec("k", 1, enq=0.0, start=0.0, end=20.0)]
        syncs = [_sync("record", 0, 1, enq=1.0, complete=5.0)]
        violations = check_timeline(records, syncs)
        assert [v.rule for v in violations] == ["event-record"]

    def test_record_after_stream_tail_is_clean(self):
        records = [_rec("k", 1, enq=0.0, start=0.0, end=20.0)]
        syncs = [_sync("record", 0, 1, enq=1.0, complete=20.0)]
        assert check_timeline(records, syncs) == []

    def test_other_stream_kernels_do_not_gate_record(self):
        records = [_rec("k", 2, enq=0.0, start=0.0, end=50.0)]
        syncs = [_sync("record", 0, 1, enq=1.0, complete=2.0)]
        assert check_timeline(records, syncs) == []


class TestEventWaitRule:
    def test_gated_kernel_starting_early_is_flagged(self):
        # b is enqueued after the wait but starts before the awaited
        # record completed: the wait edge was dropped.
        records = [
            _rec("a", 1, enq=0.0, start=0.0, end=30.0),
            _rec("b", 2, enq=3.0, start=5.0, end=10.0),
        ]
        syncs = [
            _sync("record", 0, 1, enq=1.0, complete=30.0),
            _sync("wait", 0, 2, enq=2.0, complete=30.0),
        ]
        violations = check_timeline(records, syncs)
        assert any(v.rule == "event-wait" and v.kernel == "b"
                   for v in violations)

    def test_wait_resolving_before_record_is_flagged(self):
        syncs = [
            _sync("record", 0, 1, enq=1.0, complete=30.0),
            _sync("wait", 0, 2, enq=2.0, complete=5.0),
        ]
        violations = check_timeline([], syncs)
        assert [v.rule for v in violations] == ["event-wait"]

    def test_unrecorded_event_gates_nothing(self):
        records = [_rec("b", 2, enq=3.0, start=3.0, end=4.0)]
        syncs = [_sync("wait", 9, 2, enq=2.0, complete=2.5)]
        assert check_timeline(records, syncs) == []

    def test_wait_binds_to_latest_prior_record(self):
        # Re-recorded event: the wait issued between the two records
        # binds to the first; a kernel ordered after record #1 but not
        # record #2 is legal.
        records = [_rec("b", 2, enq=3.0, start=12.0, end=13.0)]
        syncs = [
            _sync("record", 0, 1, enq=1.0, complete=10.0),
            _sync("wait", 0, 2, enq=2.0, complete=10.0),
            _sync("record", 0, 1, enq=5.0, complete=50.0),
        ]
        assert check_timeline(records, syncs) == []

    def test_kernels_enqueued_before_wait_are_not_gated(self):
        records = [_rec("early", 2, enq=0.5, start=0.5, end=1.0)]
        syncs = [
            _sync("record", 0, 1, enq=1.0, complete=30.0),
            _sync("wait", 0, 2, enq=2.0, complete=30.0),
        ]
        assert check_timeline(records, syncs) == []
