"""Run the executable examples embedded in module docstrings."""

import doctest
import importlib

import pytest

MODULES = [
    "repro.gpusim.arch",
    "repro.gpusim.device",
    "repro.gpusim.kernel",
    "repro.gpusim.occupancy",
    "repro.milp",
    "repro.nn.config",
    "repro.core.framework",
    "repro.runtime.metrics",
    "repro.obs.spans",
    "repro.obs.metrics",
    "repro.serve.request",
    "repro.serve.queue",
    "repro.serve.batcher",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_doctests(name):
    # importlib avoids package-attribute shadowing (e.g. the ``occupancy``
    # function re-exported over the ``occupancy`` module).
    module = importlib.import_module(name)
    result = doctest.testmod(module)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {name}"
