"""Tests for the overhead model (Eqs. 10-12, Table 6 / Fig. 10 inputs)."""

import pytest

from repro.core import GLP4NN
from repro.core.cost import OverheadModel, OverheadReport
from repro.cupti import CONFIG_RECORD_BYTES, TIMESTAMP_BYTES
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.lowering import lower_conv_forward


@pytest.fixture
def profiled(p100):
    glp = GLP4NN([p100])
    for cfg in CIFAR10_CONVS:
        glp.run_layer(p100, lower_conv_forward(cfg))
    return glp, p100


class TestOverheadReport:
    def test_eq12_total(self):
        r = OverheadReport("n", "d", t_p_us=100.0, t_a_us=50.0, t_s_us=0.0,
                           mem_tt=16, mem_k=48, mem_cupti=1000,
                           kernels_profiled=1)
        assert r.t_total_us == 150.0

    def test_eq10_total(self):
        r = OverheadReport("n", "d", 0, 0, 0, mem_tt=160, mem_k=480,
                           mem_cupti=3_000_000, kernels_profiled=10)
        assert r.mem_total == 160 + 480 + 3_000_000

    def test_ratio(self):
        r = OverheadReport("n", "d", t_p_us=10.0, t_a_us=0.0, t_s_us=0.0,
                           mem_tt=0, mem_k=0, mem_cupti=0,
                           kernels_profiled=1)
        assert r.ratio_of(10_000.0) == pytest.approx(1e-3)

    def test_ratio_rejects_nonpositive(self):
        r = OverheadReport("n", "d", 1, 1, 0, 0, 0, 0, 1)
        with pytest.raises(ValueError):
            r.ratio_of(0.0)


class TestOverheadModel:
    def test_kernel_count(self, profiled):
        glp, gpu = profiled
        report = OverheadModel(glp).report(gpu, network="CIFAR10")
        # 3 layers x 100 samples x 3 kernels (im2col, sgemm, gemmk)
        assert report.kernels_profiled == 900

    def test_memory_per_record(self, profiled):
        glp, gpu = profiled
        report = OverheadModel(glp).report(gpu)
        assert report.mem_tt == report.kernels_profiled * TIMESTAMP_BYTES
        assert report.mem_k == report.kernels_profiled * CONFIG_RECORD_BYTES

    def test_cupti_dominates(self, profiled):
        glp, gpu = profiled
        report = OverheadModel(glp).report(gpu)
        assert report.mem_cupti > 10 * (report.mem_tt + report.mem_k)

    def test_times_positive(self, profiled):
        glp, gpu = profiled
        report = OverheadModel(glp).report(gpu)
        assert report.t_p_us > 0
        assert report.t_a_us > 0
        assert report.t_s_us == 0.0

    def test_ratio_below_paper_bound(self, profiled):
        """Table 6's claim: one-time overhead < 0.1% of training."""
        glp, gpu = profiled
        report = OverheadModel(glp).report(gpu)
        steady = sum(
            glp.run_layer(gpu, lower_conv_forward(cfg)).elapsed_us
            for cfg in CIFAR10_CONVS
        )
        training_us = steady * 10_000   # a short training run
        assert report.ratio_of(training_us) < 1e-3

    def test_empty_device_report(self, p100, k40c):
        glp = GLP4NN([p100, k40c])
        report = OverheadModel(glp).report(k40c)
        assert report.kernels_profiled == 0
        assert report.mem_total == 0
