"""Tests for cross-stream event dependencies (wait_event)."""

import pytest

from repro.gpusim import Event
from tests.conftest import small_kernel


class TestWaitEvent:
    def test_cross_stream_ordering(self, p100):
        """b on stream2 must wait for a on stream1 via the event."""
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.launch(small_kernel("a", flops=300_000.0), stream=s1)
        ev = Event()
        p100.record_event(ev, stream=s1)
        p100.wait_event(ev, stream=s2)
        b = p100.launch(small_kernel("b"), stream=s2)
        p100.synchronize()
        assert b.start_time >= a.end_time

    def test_unrelated_work_still_overlaps(self, p100):
        """wait_event gates one stream only, not the whole device."""
        s1, s2, s3 = (p100.create_stream() for _ in range(3))
        long = small_kernel("long", flops=2_000_000.0)
        a = p100.launch(long, stream=s1)
        ev = Event()
        p100.record_event(ev, stream=s1)
        p100.wait_event(ev, stream=s2)
        gated = p100.launch(small_kernel("gated"), stream=s2)
        free = p100.launch(small_kernel("free", flops=500_000.0), stream=s3)
        p100.synchronize()
        assert gated.start_time >= a.end_time
        assert free.start_time < a.end_time

    def test_wait_on_unrecorded_event_is_noop(self, p100):
        s = p100.create_stream()
        ev = Event()
        p100.wait_event(ev, stream=s)   # never recorded: gates nothing
        k = p100.launch(small_kernel(), stream=s)
        p100.synchronize()
        assert k.is_complete

    def test_diamond_dependency(self, p100):
        """a -> (b, c) -> d across three streams."""
        s1, s2, s3 = (p100.create_stream() for _ in range(3))
        k = lambda n: small_kernel(n, flops=200_000.0)
        a = p100.launch(k("a"), stream=s1)
        ev_a = Event()
        p100.record_event(ev_a, stream=s1)

        b = p100.launch(k("b"), stream=s1)     # same stream: FIFO order
        p100.wait_event(ev_a, stream=s2)
        c = p100.launch(k("c"), stream=s2)
        ev_b, ev_c = Event(), Event()
        p100.record_event(ev_b, stream=s1)
        p100.record_event(ev_c, stream=s2)

        p100.wait_event(ev_b, stream=s3)
        p100.wait_event(ev_c, stream=s3)
        d = p100.launch(k("d"), stream=s3)
        p100.synchronize()
        assert b.start_time >= a.end_time
        assert c.start_time >= a.end_time
        assert d.start_time >= max(b.end_time, c.end_time)

    def test_wait_event_costs_host_time(self, p100):
        t0 = p100.host_time
        p100.wait_event(Event(), stream=p100.create_stream())
        assert p100.host_time > t0


class TestStreamPriorities:
    def _flood(self, gpu, n, priority_stream):
        """Fill every hardware slot, then race a low and a high priority
        kernel for the next free slot."""
        from tests.conftest import small_kernel
        filler = small_kernel("filler", blocks=1, threads=32,
                              flops=400_000.0)
        for i in range(n):
            gpu.launch(filler.retagged(f"f{i}"), stream=gpu.create_stream())
        low = gpu.create_stream(priority=0)
        high = priority_stream
        a = gpu.launch(small_kernel("low", blocks=1, threads=32), stream=low)
        b = gpu.launch(small_kernel("high", blocks=1, threads=32),
                       stream=high)
        gpu.synchronize()
        return a, b

    def test_high_priority_granted_first(self):
        from repro.gpusim import GPU, get_device
        gpu = GPU(get_device("GTX980"))      # C = 16, easy to saturate
        high = gpu.create_stream(priority=-1)
        low_ke, high_ke = self._flood(gpu, 16, high)
        # the high-priority kernel (launched later!) starts no later
        assert high_ke.start_time <= low_ke.start_time + 1e-6

    def test_equal_priority_is_fifo(self):
        from repro.gpusim import GPU, get_device
        gpu = GPU(get_device("GTX980"))
        same = gpu.create_stream(priority=0)
        low_ke, second_ke = self._flood(gpu, 16, same)
        assert low_ke.start_time <= second_ke.start_time + 1e-6

    def test_priority_defaults_to_zero(self, p100):
        assert p100.create_stream().priority == 0
        assert p100.create_stream(priority=-2).priority == -2
