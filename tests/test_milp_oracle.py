"""Property-based oracle for branch-and-bound: brute-force enumeration.

On all-integer instances with small finite boxes the MILP optimum can be
found by enumerating every lattice point.  `hypothesis` drives random
instances — integer objective and constraint coefficients, half-integer
right-hand sides so the LP relaxation is feasible where no integer point
is — and :func:`solve_milp` must agree with the enumeration on both the
status and the optimal objective.  Ties are compared on objective value
only: branch order may legitimately pick a different argmin.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp.branch_and_bound import solve_milp
from repro.milp.simplex import LinearProgram
from repro.milp.solution import SolveStatus

_EPS = 1e-6


def brute_force_min(lp: LinearProgram) -> float | None:
    """Optimal objective over all feasible lattice points, None if none."""
    axes = [range(int(lp.lo[j]), int(lp.hi[j]) + 1)
            for j in range(lp.num_vars)]
    best = None
    for point in itertools.product(*axes):
        x = np.array(point, dtype=float)
        if lp.a_ub is not None and np.any(lp.a_ub @ x > lp.b_ub + _EPS):
            continue
        obj = float(lp.c @ x)
        if best is None or obj < best:
            best = obj
    return best


@st.composite
def milp_instances(draw) -> LinearProgram:
    """A small all-integer minimization over a finite box.

    Right-hand sides are drawn in halves: with integer coefficients a
    fractional bound like ``-x <= -0.5`` carves out regions that the LP
    relaxation can satisfy but no lattice point can, exercising the
    integer-infeasible pruning path.
    """
    n = draw(st.integers(1, 3))
    m = draw(st.integers(0, 3))
    c = [draw(st.integers(-5, 5)) for _ in range(n)]
    lo = [draw(st.integers(-2, 1)) for _ in range(n)]
    hi = [lo[j] + draw(st.integers(0, 3)) for j in range(n)]
    if m:
        a_ub = [[draw(st.integers(-4, 4)) for _ in range(n)]
                for _ in range(m)]
        b_ub = [draw(st.integers(-12, 12)) / 2.0 for _ in range(m)]
    else:
        a_ub = b_ub = None
    return LinearProgram(c=np.array(c, dtype=float), a_ub=a_ub, b_ub=b_ub,
                         lo=np.array(lo, dtype=float),
                         hi=np.array(hi, dtype=float))


@given(milp_instances())
@settings(max_examples=80, deadline=None)
def test_branch_and_bound_matches_enumeration(lp: LinearProgram) -> None:
    integers = list(range(lp.num_vars))
    expected = brute_force_min(lp)
    result = solve_milp(lp, integers, max_nodes=20_000)
    if expected is None:
        assert result.status is SolveStatus.INFEASIBLE
        return
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == pytest.approx(expected, abs=1e-6)
    # The solver's point must itself be a feasible lattice point; its
    # identity may differ from the enumeration's under objective ties.
    x = result.x
    assert x is not None
    for j in integers:
        assert abs(x[j] - round(x[j])) < 1e-6
    xi = np.round(x)
    assert np.all(xi >= lp.lo - _EPS) and np.all(xi <= lp.hi + _EPS)
    if lp.a_ub is not None:
        assert np.all(lp.a_ub @ xi <= lp.b_ub + _EPS)
    assert float(lp.c @ xi) == pytest.approx(expected, abs=1e-6)


def test_tied_optima_agree_on_objective() -> None:
    # min x + y  s.t.  x + y >= 1,  x, y in {0, 1}: both (1,0) and (0,1)
    # are optimal.  Only the objective is pinned, not the argmin.
    lp = LinearProgram(c=[1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0],
                       lo=[0.0, 0.0], hi=[1.0, 1.0])
    result = solve_milp(lp, [0, 1])
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == pytest.approx(1.0)
    assert result.x is not None
    assert round(result.x[0]) + round(result.x[1]) == 1


def test_lp_feasible_but_integer_infeasible() -> None:
    # 0.25 <= x <= 0.75 is a non-empty LP slab containing no integer.
    lp = LinearProgram(c=[1.0], a_ub=[[-1.0], [1.0]], b_ub=[-0.25, 0.75],
                       lo=[0.0], hi=[1.0])
    relaxed = solve_milp(lp, [])
    assert relaxed.status is SolveStatus.OPTIMAL
    assert relaxed.objective == pytest.approx(0.25)
    integral = solve_milp(lp, [0])
    assert integral.status is SolveStatus.INFEASIBLE
