"""Tests for the stream-hazard race detector (repro.analyze)."""

import pytest

from repro.analyze import (
    DispatchProgram,
    analyze_networks,
    build_programs,
    derive_accesses,
    detect,
    happens_before,
    ordered,
    program_from_graph,
    program_from_works,
    verdict_for,
)
from repro.errors import AnalyzeError


def _prog(name="t"):
    return DispatchProgram(name)


class TestHappensBefore:
    def test_stream_fifo_orders_same_stream(self):
        p = _prog().launch("a", 1, writes={"x"}).launch("b", 1, reads={"x"})
        hb = happens_before(p.ops)
        assert ordered(hb, 0, 1)

    def test_cross_stream_unordered(self):
        p = _prog().launch("a", 1, writes={"x"}).launch("b", 2, reads={"x"})
        hb = happens_before(p.ops)
        assert not ordered(hb, 0, 1)

    def test_sync_orders_everything(self):
        p = (_prog().launch("a", 1, writes={"x"}).sync()
             .launch("b", 2, reads={"x"}))
        hb = happens_before(p.ops)
        assert ordered(hb, 0, 2)

    def test_default_stream_is_barrier(self):
        p = (_prog().launch("a", 1, writes={"x"})
             .launch("serial", 0, reads={"x"})
             .launch("b", 2, reads={"x"}))
        hb = happens_before(p.ops)
        assert ordered(hb, 0, 1)    # default waits for all tails
        assert ordered(hb, 1, 2)    # later work waits for default
        assert ordered(hb, 0, 2)    # transitively

    def test_event_record_wait_edge(self):
        p = (_prog().launch("a", 1, writes={"x"})
             .record(event=7, stream=1)
             .wait(event=7, stream=2)
             .launch("b", 2, reads={"x"}))
        hb = happens_before(p.ops)
        assert ordered(hb, 0, 3)

    def test_wait_on_unrecorded_event_gates_nothing(self):
        p = (_prog().launch("a", 1, writes={"x"})
             .wait(event=9, stream=2)
             .launch("b", 2, reads={"x"}))
        hb = happens_before(p.ops)
        assert not ordered(hb, 0, 2)


class TestDetect:
    def test_raw_hazard_with_witness(self):
        p = _prog()
        p.launch("w", 1, writes={"buf"}, layer="conv1")
        p.launch("r", 2, reads={"buf"}, layer="relu1")
        hazards = detect(p)
        assert len(hazards) == 1
        h = hazards[0]
        assert h.kind == "RAW"
        assert (h.first, h.second) == ("w", "r")
        assert (h.first_layer, h.second_layer) == ("conv1", "relu1")
        assert (h.first_stream, h.second_stream) == (1, 2)
        assert h.regions == ("buf",)
        assert "layer_sync" in h.missing

    def test_war_and_waw(self):
        war = _prog().launch("r", 1, reads={"b"}).launch("w", 2,
                                                         writes={"b"})
        waw = _prog().launch("w1", 1, writes={"b"}).launch("w2", 2,
                                                           writes={"b"})
        assert [h.kind for h in detect(war)] == ["WAR"]
        assert [h.kind for h in detect(waw)] == ["WAW"]

    def test_read_read_is_not_a_hazard(self):
        p = _prog().launch("r1", 1, reads={"b"}).launch("r2", 2,
                                                        reads={"b"})
        assert detect(p) == []

    def test_sync_clears_hazard(self):
        p = (_prog().launch("w", 1, writes={"b"}).sync()
             .launch("r", 2, reads={"b"}))
        assert detect(p) == []

    def test_event_edge_clears_hazard(self):
        p = (_prog().launch("w", 1, writes={"b"})
             .record(event=1, stream=1).wait(event=1, stream=2)
             .launch("r", 2, reads={"b"}))
        assert detect(p) == []

    def test_pair_racing_on_many_regions_is_one_witness(self):
        regions = {f"b{i}" for i in range(10)}
        p = (_prog().launch("w", 1, writes=regions)
             .launch("r", 2, reads=regions))
        hazards = detect(p)
        assert len(hazards) == 1
        assert hazards[0].region_count == 10
        assert len(hazards[0].regions) == 6     # capped in the witness

    def test_empty_program(self):
        assert detect(_prog()) == []
        assert detect(_prog().sync().sync()) == []


class TestEdgeCases:
    """The lowering shapes that historically break race detectors."""

    def test_in_place_layer(self):
        # In-place ReLU: reads and writes the *same* region per sample.
        # Same stream -> FIFO-ordered, clean; cross-stream -> WAW+RAW+WAR.
        same = (_prog()
                .launch("conv", 1, writes={"x[s0]"})
                .launch("relu", 1, reads={"x[s0]"}, writes={"x[s0]"}))
        assert detect(same) == []
        cross = (_prog()
                 .launch("conv", 1, writes={"x[s0]"})
                 .launch("relu", 2, reads={"x[s0]"}, writes={"x[s0]"}))
        kinds = sorted(h.kind for h in detect(cross))
        assert kinds == ["RAW", "WAW"]

    def test_in_place_dropout_across_samples_is_clean(self):
        # Per-sample in-place work on distinct streams touches distinct
        # sample slices: no shared region, no hazard.
        p = _prog()
        for s in range(4):
            p.launch(f"drop{s}", s + 1, reads={f"x[s{s}]"},
                     writes={f"x[s{s}]"})
        assert detect(p) == []

    def test_concat_multi_reader(self):
        # Concat reads two producer blobs; unsynced cross-stream
        # producers each race with it independently.
        p = (_prog()
             .launch("left", 1, writes={"a[s0]"})
             .launch("right", 2, writes={"b[s0]"})
             .launch("concat", 3, reads={"a[s0]", "b[s0]"},
                     writes={"cat[s0]"}))
        hazards = detect(p)
        assert len(hazards) == 2
        assert all(h.kind == "RAW" and h.second == "concat"
                   for h in hazards)
        p2 = (_prog()
              .launch("left", 1, writes={"a[s0]"})
              .launch("right", 2, writes={"b[s0]"})
              .sync()
              .launch("concat", 3, reads={"a[s0]", "b[s0]"},
                      writes={"cat[s0]"}))
        assert detect(p2) == []

    def test_eltwise_multiple_readers_of_one_buffer(self):
        # Eltwise fan-out: one producer, two cross-stream consumers.
        p = (_prog()
             .launch("prod", 1, writes={"x[s0]"})
             .sync()
             .launch("elt1", 2, reads={"x[s0]"}, writes={"y[s0]"})
             .launch("elt2", 3, reads={"x[s0]"}, writes={"z[s0]"}))
        assert detect(p) == []    # two readers never conflict

    def test_zero_kernel_layer(self):
        # Flatten/Accuracy lower to nothing: a layer contributing no ops
        # must not confuse the detector or the verdict counters.
        p = (_prog().launch("w", 1, writes={"b"}).sync()
             .sync()                      # empty layer's boundary
             .launch("r", 2, reads={"b"}))
        assert detect(p) == []
        v = verdict_for(p, network="n", plan="p")
        assert v.ok and v.launches == 2 and v.ops == 4

    def test_pool_of_one_is_hazard_free_by_construction(self):
        # Single stream + default serial stream: FIFO + barrier order
        # everything even with NO layer syncs at all.
        p = _prog()
        for layer in range(3):
            for s in range(4):
                p.launch(f"k{layer}.{s}", 1,
                         reads={f"x{layer}[s{s}]"},
                         writes={f"x{layer + 1}[s{s}]"})
            p.launch(f"serial{layer}", 0,
                     reads={f"x{layer + 1}[s{s}]" for s in range(4)},
                     writes={f"y{layer}"})
        assert detect(p) == []


class TestRealNetworks:
    def test_round_robin_certifies_zoo_nets(self):
        report = analyze_networks(["cifar10", "lenet"],
                                  plans=["round-robin"])
        assert report.ok
        assert len(report.entries) == 2
        assert all(e.launches > 0 for e in report.entries)

    def test_all_plans_certify_cifar10(self):
        report = analyze_networks(
            ["cifar10"],
            plans=["round-robin", "multithread", "fused", "data-parallel"])
        assert report.ok
        # data-parallel yields one program per replica
        assert len(report.entries) == 5

    def test_pool_of_one_real_net(self):
        from repro.serve.engine import resolve_net
        from repro.verify.schedule import works_for

        net = resolve_net("lenet")(batch=2, seed=0)
        works = works_for("lenet", batch=2, seed=0)
        accesses = derive_accesses(net, works)
        prog = program_from_works(works, accesses, pool_size=1)
        # strip every sync: stream FIFO alone must order a pool of 1
        prog.ops = [op for op in prog.ops
                    if type(op).__name__ == "Launch"]
        assert detect(prog) == []

    def test_missing_sync_in_real_net_is_flagged(self):
        from repro.serve.engine import resolve_net
        from repro.verify.schedule import works_for

        net = resolve_net("cifar10")(batch=4, seed=0)
        works = works_for("cifar10", batch=4, seed=0)
        accesses = derive_accesses(net, works)
        prog = program_from_works(works, accesses, pool_size=4)
        from dataclasses import replace

        from repro.analyze import Launch, SyncAll
        # Deleting only the syncs is NOT observable: the whole-batch
        # serial kernels stay on the default stream, which is itself a
        # barrier.  A real sync-edge deletion also strips that implicit
        # barrier by moving serial work onto pool streams.
        stripped = [op for op in prog.ops if not isinstance(op, SyncAll)]
        assert detect(DispatchProgram("no-sync", list(stripped))) == []
        racy = [replace(op, stream=1)
                if isinstance(op, Launch) and op.stream == 0 else op
                for op in stripped]
        assert detect(DispatchProgram("no-sync-no-barrier", racy))

    def test_unknown_plan_raises(self):
        with pytest.raises(AnalyzeError):
            build_programs("cifar10", plan="bogus")

    def test_report_roundtrip(self, tmp_path):
        report = analyze_networks(["lenet"], plans=["round-robin"])
        path = report.save(tmp_path / "hz.json")
        import json
        doc = json.loads((tmp_path / "hz.json").read_text())
        assert doc["kind"] == "hazard-report" and doc["ok"]
        assert path.endswith("hz.json")


class TestGraphPrograms:
    def test_dag_with_event_edges_is_clean(self):
        from repro.runtime.graph import KernelGraph
        from tests.conftest import small_kernel

        g = KernelGraph("diamond")
        a = g.add(small_kernel("a"))
        b = g.add(small_kernel("b"), deps=[a])
        c = g.add(small_kernel("c"), deps=[a])
        g.add(small_kernel("d"), deps=[b, c])
        prog = program_from_graph(g, num_streams=2)
        assert detect(prog) == []

    def test_missing_wait_is_flagged(self):
        # Hand-build the dispatch a buggy graph dispatcher would emit:
        # cross-stream dependency with the record but not the wait.
        p = (_prog("buggy-graph")
             .launch("a", 1, writes={"n0"})
             .record(event=0, stream=1)
             .launch("b", 2, reads={"n0"}, writes={"n1"}))
        hazards = detect(p)
        assert len(hazards) == 1 and hazards[0].kind == "RAW"


class TestSuppression:
    """Hazard findings keyed by rule id respect the program allow set."""

    def _racy(self):
        return (_prog("racy")
                .launch("w1", 1, writes={"x"})
                .launch("w2", 2, writes={"x"}))

    def test_allow_counts_instead_of_reporting(self):
        prog = self._racy().allow("hazard/WAW")
        verdict = verdict_for(prog, network="t", plan="rr")
        assert verdict.ok and verdict.suppressed == 1
        # detect() itself is unaffected: suppression is verdict-level
        assert len(detect(prog)) == 1

    def test_unrelated_rule_does_not_suppress(self):
        prog = self._racy().allow("hazard/RAW")
        verdict = verdict_for(prog, network="t", plan="rr")
        assert not verdict.ok and verdict.suppressed == 0

    def test_wildcard_suppresses_everything(self):
        prog = self._racy().allow("*")
        verdict = verdict_for(prog)
        assert verdict.ok and verdict.suppressed == 1

    def test_allow_from_marker_text(self):
        prog = self._racy().allow_from(
            "scratch buffer reuse  # repro: allow(hazard/WAW)")
        verdict = verdict_for(prog)
        assert verdict.ok and verdict.suppressed == 1

    def test_suppressed_count_rolls_up_into_report_dict(self):
        from repro.analyze.hazards import HazardReport
        report = HazardReport(device="p100", pool_size=2, batch=1, seed=0,
                              entries=[verdict_for(
                                  self._racy().allow("hazard/WAW"))])
        doc = report.to_dict()
        assert doc["ok"] and doc["suppressed"] == 1
