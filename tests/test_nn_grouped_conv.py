"""Tests for grouped convolution (Caffe's ``group`` parameter)."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.config import ConvConfig
from repro.nn.layers import ConvolutionLayer
from repro.runtime.lowering import lower_conv_backward, lower_conv_forward
from tests.conftest import assert_grad_close, numeric_gradient

RNG = lambda s=0: np.random.default_rng(s)


def grouped_layer(group=2, ci=4, co=6, shape_hw=5, seed=0):
    layer = ConvolutionLayer("gc", co, 3, pad=1, group=group)
    layer.setup([(2, ci, shape_hw, shape_hw)], RNG(seed))
    return layer


class TestConfig:
    def test_k_gemm_divided_by_group(self):
        cfg = ConvConfig("c", n=1, ci=96, hw=27, co=256, f=5, p=2, g=2)
        assert cfg.k_gemm == 48 * 25
        assert cfg.co_gemm == 128

    def test_indivisible_channels_rejected(self):
        with pytest.raises(NetworkError, match="divisible"):
            ConvConfig("c", n=1, ci=3, hw=8, co=4, f=3, g=2)

    def test_flops_scale_down_with_group(self):
        base = ConvConfig("c", n=1, ci=96, hw=27, co=256, f=5, p=2)
        grp = ConvConfig("c", n=1, ci=96, hw=27, co=256, f=5, p=2, g=2)
        assert grp.flops_per_sample == pytest.approx(
            base.flops_per_sample / 2)


class TestLayer:
    def test_weight_shape_per_group(self):
        layer = grouped_layer(group=2, ci=4, co=6)
        assert layer.params[0].shape == (6, 2 * 9)

    def test_forward_matches_two_independent_convs(self):
        """A group-2 conv equals two half-channel convs concatenated."""
        layer = grouped_layer(group=2, ci=4, co=6, seed=3)
        rng = RNG(4)
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        (y,) = layer.forward([x])

        w = layer.params[0].data
        b = layer.params[1].data
        halves = []
        for gi in range(2):
            half = ConvolutionLayer(f"h{gi}", 3, 3, pad=1)
            half.setup([(2, 2, 5, 5)], RNG(9))
            half.params[0].data[...] = w[gi * 3:(gi + 1) * 3]
            half.params[1].data[...] = b[gi * 3:(gi + 1) * 3]
            halves.append(half.forward([x[:, gi * 2:(gi + 1) * 2]])[0])
        expected = np.concatenate(halves, axis=1)
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-5)

    def test_gradients(self):
        layer = grouped_layer(group=2, ci=4, co=4, seed=5)
        rng = RNG(6)
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        dout = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([x])[0] * dout))

        layer.forward([x])
        layer.zero_param_diffs()
        (dx,) = layer.backward([dout], [x], [None])
        assert_grad_close(dx, numeric_gradient(loss, x))
        assert_grad_close(layer.params[0].diff,
                          numeric_gradient(loss, layer.params[0].data))

    def test_bad_group_rejected(self):
        with pytest.raises(NetworkError):
            ConvolutionLayer("c", 5, 3, group=2)

    def test_input_channels_checked_at_setup(self):
        layer = ConvolutionLayer("c", 4, 3, group=2)
        with pytest.raises(NetworkError, match="divisible"):
            layer.setup([(1, 3, 8, 8)], RNG())


class TestLowering:
    def test_forward_emits_one_gemm_per_group(self):
        cfg = ConvConfig("c", n=2, ci=96, hw=27, co=256, f=5, p=2, g=2)
        chain = lower_conv_forward(cfg).parallel_chains[0]
        assert [k.name for k in chain] == ["im2col", "sgemm", "sgemm",
                                           "gemmk"]

    def test_backward_emits_group_gemms(self):
        cfg = ConvConfig("c", n=2, ci=96, hw=27, co=256, f=5, p=2, g=2)
        chain = lower_conv_backward(cfg).parallel_chains[0]
        assert [k.name for k in chain].count("sgemm") == 4

    def test_group_gemms_are_smaller(self):
        plain = ConvConfig("c", n=1, ci=96, hw=27, co=256, f=5, p=2)
        grp = ConvConfig("c", n=1, ci=96, hw=27, co=256, f=5, p=2, g=2)
        k_plain = next(k for k in lower_conv_forward(plain).parallel_chains[0]
                       if k.name == "sgemm")
        k_grp = next(k for k in lower_conv_forward(grp).parallel_chains[0]
                     if k.name == "sgemm")
        assert k_grp.total_flops < k_plain.total_flops

    def test_grouped_caffenet_trains(self):
        from repro.nn.zoo import build_caffenet
        net = build_caffenet(batch=2, classes=10, fc_dim=16, grouped=True)
        rng = RNG(7)
        net.forward({
            "data": rng.normal(size=(2, 3, 227, 227)).astype(np.float32),
            "label": np.array([0.0, 1.0], dtype=np.float32),
        })
        net.backward()
        assert np.isfinite(net.loss_value())
