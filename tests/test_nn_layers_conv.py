"""Tests for the convolution layer, including gradient checks."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layers import ConvolutionLayer
from tests.conftest import assert_grad_close, numeric_gradient


def make_layer(co=4, f=3, s=1, p=1, shape=(2, 3, 6, 6), seed=0):
    layer = ConvolutionLayer("conv", co, f, stride=s, pad=p)
    layer.setup([shape], np.random.default_rng(seed))
    return layer


class TestForward:
    def test_output_shape(self):
        layer = make_layer()
        x = np.random.default_rng(1).normal(size=(2, 3, 6, 6)).astype(np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (2, 4, 6, 6)

    def test_strided_shape(self):
        layer = make_layer(co=8, f=11, s=4, p=0, shape=(1, 3, 227, 227))
        x = np.zeros((1, 3, 227, 227), dtype=np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (1, 8, 55, 55)

    def test_matches_direct_convolution(self):
        layer = make_layer(co=2, f=3, s=1, p=0, shape=(1, 2, 5, 5))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        (y,) = layer.forward([x])
        w = layer.params[0].data.reshape(2, 2, 3, 3)
        b = layer.params[1].data
        # brute-force convolution
        expected = np.zeros((1, 2, 3, 3), dtype=np.float32)
        for co in range(2):
            for oy in range(3):
                for ox in range(3):
                    patch = x[0, :, oy:oy + 3, ox:ox + 3]
                    expected[0, co, oy, ox] = np.sum(patch * w[co]) + b[co]
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-5)

    def test_bias_broadcast(self):
        layer = make_layer(co=3, f=1, s=1, p=0, shape=(1, 2, 4, 4))
        layer.params[0].data[...] = 0.0
        layer.params[1].data[...] = [1.0, 2.0, 3.0]
        x = np.zeros((1, 2, 4, 4), dtype=np.float32)
        (y,) = layer.forward([x])
        assert (y[0, 0] == 1.0).all() and (y[0, 2] == 3.0).all()

    def test_config_captured(self):
        layer = make_layer(shape=(5, 3, 8, 8))
        assert layer.config.n == 5 and layer.config.hw == 8

    def test_nonsquare_rejected(self):
        layer = ConvolutionLayer("conv", 4, 3)
        with pytest.raises(NetworkError):
            layer.setup([(1, 3, 6, 7)], np.random.default_rng(0))


class TestBackward:
    def _loss_setup(self, seed=3):
        layer = make_layer(co=2, f=3, s=1, p=1, shape=(2, 2, 5, 5), seed=seed)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        dout = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        return layer, x, dout

    def _loss(self, layer, x, dout):
        (y,) = layer.forward([x])
        return float(np.sum(y * dout))

    def test_input_gradient(self):
        layer, x, dout = self._loss_setup()
        layer.forward([x])
        (dx,) = layer.backward([dout], [x], [None])
        num = numeric_gradient(lambda: self._loss(layer, x, dout), x)
        assert_grad_close(dx, num)

    def test_weight_gradient(self):
        layer, x, dout = self._loss_setup()
        layer.forward([x])
        layer.zero_param_diffs()
        layer.backward([dout], [x], [None])
        num = numeric_gradient(lambda: self._loss(layer, x, dout),
                               layer.params[0].data)
        assert_grad_close(layer.params[0].diff, num)

    def test_bias_gradient(self):
        layer, x, dout = self._loss_setup()
        layer.forward([x])
        layer.zero_param_diffs()
        layer.backward([dout], [x], [None])
        num = numeric_gradient(lambda: self._loss(layer, x, dout),
                               layer.params[1].data)
        assert_grad_close(layer.params[1].diff, num)

    def test_gradients_accumulate(self):
        layer, x, dout = self._loss_setup()
        layer.forward([x])
        layer.zero_param_diffs()
        layer.backward([dout], [x], [None])
        first = layer.params[0].diff.copy()
        layer.forward([x])
        layer.backward([dout], [x], [None])
        np.testing.assert_allclose(layer.params[0].diff, 2 * first, rtol=1e-5)
