"""The ``python -m repro graph`` entry point: actions, caching, exits."""

from __future__ import annotations

import json

from repro.cli import main

FAST = ["--net", "lenet", "--batch", "4", "--device", "p100"]


def test_replay_session_passes_and_reports(tmp_path, capsys):
    report_file = tmp_path / "graph.json"
    rc = main(["graph", "replay", *FAST, "--report", str(report_file)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "graph: PASS" in out and "-> replay" in out
    doc = json.loads(report_file.read_text())
    assert doc["ok"] is True
    for phase in doc["phases"]:
        assert phase["status"] == "admitted"
        assert phase["replays"] >= 1
        # The acceptance criterion: measured launch-overhead reduction.
        assert phase["overhead_reduction"] > 0.9
        assert phase["replay_us"] < phase["eager_us"]


def test_json_format_round_trips(capsys):
    rc = main(["graph", "replay", *FAST, "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "graph-report" and doc["ok"] is True


def test_unknown_net_suggests_close_match(capsys):
    rc = main(["graph", "replay", "--net", "cifr10"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "cifar10" in err


def test_inject_hazard_expects_rejection_and_eager_fallback(capsys):
    rc = main(["graph", "replay", *FAST, "--inject-hazard"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "rejection exercised" in out
    assert "validation rejected" in out


def test_capture_then_replay_from_cache(tmp_path, capsys):
    cache = tmp_path / "graphs.json"
    rc = main(["graph", "capture", *FAST, "--cache", str(cache)])
    assert rc == 0
    assert "graph(s) saved" in capsys.readouterr().out
    assert cache.exists()

    report_file = tmp_path / "replay.json"
    rc = main(["graph", "replay", *FAST, "--cache", str(cache),
               "--load-cache", "--report", str(report_file)])
    assert rc == 0
    doc = json.loads(report_file.read_text())
    assert doc["ok"] is True
    # Cache hit: every pass replays, no captures in this process.
    assert doc["stats"]["captures"] == 0
    assert doc["stats"]["replays"] > 0
    assert doc["cache"]["quarantined"] == []


def test_report_action_validates_without_replaying(capsys):
    rc = main(["graph", "report", *FAST])
    out = capsys.readouterr().out
    assert rc == 0
    assert "admitted" in out and "-> replay" not in out


def test_bad_executor_exits_cleanly(capsys):
    rc = main(["graph", "replay", *FAST, "--executor", "warpdrive"])
    assert rc == 2
    assert "graph failed" in capsys.readouterr().err
