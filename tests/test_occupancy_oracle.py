"""Occupancy oracle: hand-computed CUDA-occupancy-calculator values.

Each case below was worked by hand from the Table 3 device limits, the
same way the CUDA occupancy calculator spreadsheet does it: divide each
per-SM resource by the per-block footprint, take the tightest, convert
resident blocks to active warps.  The simulator must reproduce every
intermediate (resident blocks, limiting resource, active warps), not
just the final ratio.
"""

from __future__ import annotations

import pytest

from repro.errors import LaunchError
from repro.gpusim.device import get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.occupancy import (
    max_active_blocks_per_sm,
    occupancy,
    validate_launch,
)


def _launch(blocks: int, threads: int, smem: int = 0,
            regs: int = 32) -> LaunchConfig:
    return LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                        shared_mem_dynamic=smem, registers_per_thread=regs)


# (device, threads, smem, regs) -> (blocks_per_sm, limiter, active_warps)
#
# K40C:    2048 thr/SM, 16 blk/SM, 48 KiB smem/SM, 65536 regs/SM, 64 warps
# P100:    2048 thr/SM, 32 blk/SM, 64 KiB smem/SM, 65536 regs/SM, 64 warps
# TitanXP: 2048 thr/SM, 32 blk/SM, 48 KiB smem/SM, 65536 regs/SM, 64 warps
ORACLE = [
    # K40C, 256 thr, 32 regs: thr 2048/256=8, blk 16, regs 65536/8192=8,
    # smem unlimited -> 8 blocks; thread slots named on the 8==8 tie.
    ("K40C", 256, 0, 32, 8, "threads", 64),
    # K40C, 128 thr, 64 regs: thr 2048/128=16, blk 16,
    # regs 65536/(64*128)=8 -> register-bound at 8 blocks, 32 warps.
    ("K40C", 128, 0, 64, 8, "registers", 32),
    # K40C, 256 thr, 12 KiB smem: smem 49152/12288=4 beats thr 8 and
    # regs 8 -> 4 blocks, 32 warps.
    ("K40C", 256, 12288, 32, 4, "shared_mem", 32),
    # P100, 64 thr, 32 regs: thr 2048/64=32, blk 32, smem 32,
    # regs 65536/2048=32 -- a four-way tie resolved to thread slots.
    ("P100", 64, 0, 32, 32, "threads", 64),
    # P100, 256 thr, 32 regs: the docstring case; thr-bound at 8 blocks.
    ("P100", 256, 0, 32, 8, "threads", 64),
    # P100, 1024 thr, 64 regs, 32 KiB smem: thr 2, smem 65536/32768=2,
    # regs 65536/65536=1 -> one resident block, 32 warps.
    ("P100", 1024, 32768, 64, 1, "registers", 32),
    # TitanXP, 96 thr, 32 regs: thr 2048/96=21, regs 65536/3072=21 (tie),
    # 3 warps/block -> 63 active warps, just under full.
    ("TitanXP", 96, 0, 32, 21, "threads", 63),
    # TitanXP, 32 thr, 4 KiB smem: smem 49152/4096=12 beats thr 64,
    # blk 32, regs 64 -> 12 blocks of one warp each.
    ("TitanXP", 32, 4096, 32, 12, "shared_mem", 12),
]


@pytest.mark.parametrize(
    "device,threads,smem,regs,blocks,limiter,warps", ORACLE,
    ids=[f"{d}-{t}t-{s}b-{r}r" for d, t, s, r, *_ in ORACLE])
def test_occupancy_matches_hand_computation(
        device, threads, smem, regs, blocks, limiter, warps) -> None:
    props = get_device(device)
    res = max_active_blocks_per_sm(props, _launch(1024, threads, smem, regs))
    assert res.blocks_per_sm == blocks
    assert res.limiter == limiter
    assert res.active_warps == warps
    assert res.max_warps == 64
    assert res.ratio == pytest.approx(warps / 64)


def test_grid_limited_occupancy_p100() -> None:
    # 18 blocks of 256 threads on 56 SMs: footprint allows 8 blocks/SM
    # but the grid averages 18/56 blocks per SM, i.e. 18*8 warps spread
    # over 56 SMs of 64 warp slots each.
    props = get_device("P100")
    assert occupancy(props, _launch(18, 256)) == \
        pytest.approx(18 * 8 / 56 / 64)
    # A saturating grid reaches the footprint-derived ceiling exactly.
    assert occupancy(props, _launch(8 * 56, 256)) == pytest.approx(1.0)


@pytest.mark.parametrize("device", ["K40C", "P100", "TitanXP"])
def test_invalid_launches_rejected(device) -> None:
    props = get_device(device)
    with pytest.raises(LaunchError):
        validate_launch(props, _launch(1, 2048))          # > 1024 thr/block
    with pytest.raises(LaunchError):
        validate_launch(props, _launch(1, 256, smem=64 * 1024))
