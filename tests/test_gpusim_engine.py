"""Tests for the discrete-event GPU engine: streams, concurrency, ordering."""

import pytest

from repro.errors import DeviceError, LaunchError
from repro.gpusim import GPU, Event, KernelSpec, LaunchConfig, get_device
from tests.conftest import small_kernel


class TestLaunchBasics:
    def test_launch_advances_host_clock(self, p100):
        t0 = p100.host_time
        p100.launch(small_kernel())
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us
        )

    def test_stream_switch_costs_extra(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        p100.launch(small_kernel(), stream=s1)
        t0 = p100.host_time
        p100.launch(small_kernel(), stream=s2)
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us + p100.props.stream_switch_us
        )

    def test_same_stream_no_switch_cost(self, p100):
        s1 = p100.create_stream()
        p100.launch(small_kernel(), stream=s1)
        t0 = p100.host_time
        p100.launch(small_kernel(), stream=s1)
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us
        )

    def test_invalid_launch_rejected(self, p100):
        bad = small_kernel(threads=2048)
        with pytest.raises(LaunchError):
            p100.launch(bad)

    def test_foreign_stream_rejected(self, p100, k40c):
        s = k40c.create_stream()
        with pytest.raises(DeviceError, match="belongs to device"):
            p100.launch(small_kernel(), stream=s)

    def test_counters(self, p100):
        for _ in range(3):
            p100.launch(small_kernel())
        p100.synchronize()
        assert p100.kernels_launched == 3
        assert p100.kernels_completed == 3


class TestExecutionSemantics:
    def test_kernel_completes_with_timestamps(self, p100):
        ke = p100.launch(small_kernel())
        p100.synchronize()
        assert ke.is_complete
        assert ke.start_time >= ke.enqueue_time
        assert ke.end_time > ke.start_time
        assert ke.duration_us > 0

    def test_same_stream_serializes(self, p100):
        s = p100.create_stream()
        a = p100.launch(small_kernel("a"), stream=s)
        b = p100.launch(small_kernel("b"), stream=s)
        p100.synchronize()
        assert b.start_time >= a.end_time

    def test_different_streams_overlap(self, p100):
        k = small_kernel(flops=200_000.0)  # long enough to outlive a launch
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.launch(k, stream=s1)
        b = p100.launch(k.retagged("b"), stream=s2)
        p100.synchronize()
        assert b.start_time < a.end_time  # overlap happened

    def test_default_stream_is_barrier(self, p100):
        k = small_kernel(flops=200_000.0)
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.launch(k, stream=s1)
        barrier = p100.launch(k.retagged("bar"))            # default stream
        c = p100.launch(k.retagged("c"), stream=s2)
        p100.synchronize()
        assert barrier.start_time >= a.end_time
        assert c.start_time >= barrier.end_time

    def test_concurrency_respects_device_degree(self):
        gpu = GPU(get_device("GTX980"))   # Maxwell: C = 16
        k = small_kernel(blocks=1, threads=32, flops=500_000.0)
        streams = [gpu.create_stream() for _ in range(32)]
        for s in streams:
            gpu.launch(k.retagged(s.name), stream=s)
        gpu.synchronize()
        assert gpu.timeline.max_concurrency() <= 16

    def test_fermi_limits_to_16(self):
        gpu = GPU(get_device("C2050"))
        k = small_kernel(blocks=1, threads=32, flops=500_000.0)
        for i in range(24):
            gpu.launch(k.retagged(str(i)), stream=gpu.create_stream())
        gpu.synchronize()
        assert gpu.timeline.max_concurrency() <= 16

    def test_determinism(self):
        def run() -> float:
            gpu = GPU(get_device("P100"))
            streams = [gpu.create_stream() for _ in range(4)]
            for i in range(12):
                gpu.launch(small_kernel(tag=str(i)), stream=streams[i % 4])
            return gpu.synchronize()

        assert run() == run()

    def test_multi_wave_grid(self, p100):
        # More blocks than the device can hold at once: waves take longer.
        small = small_kernel(blocks=56 * 8)          # one full wave
        big = small_kernel(blocks=56 * 8 * 3)        # three waves
        p100.launch(small)
        p100.synchronize()
        t_small = p100.timeline.records[-1].duration_us
        p100.launch(big)
        p100.synchronize()
        t_big = p100.timeline.records[-1].duration_us
        assert t_big > 2.2 * t_small

    def test_duration_override(self, p100):
        spec = KernelSpec(
            name="fixed",
            launch=LaunchConfig(grid=(1, 1, 1), block=(256, 1, 1)),
            duration_us=123.0,
        )
        p100.launch(spec)
        p100.synchronize()
        assert p100.timeline.records[-1].duration_us == pytest.approx(123.0)


class TestSynchronization:
    def test_synchronize_empty_device(self, p100):
        assert p100.synchronize() == 0.0

    def test_sync_cost_grows_with_streams(self):
        g1 = GPU(get_device("P100"))
        g1.launch(small_kernel())
        g1.synchronize()
        cost_single = g1.sync_overhead_total

        g2 = GPU(get_device("P100"))
        for i in range(8):
            g2.launch(small_kernel(tag=str(i)), stream=g2.create_stream())
        g2.synchronize()
        assert g2.sync_overhead_total > cost_single

    def test_stream_synchronize_only_waits_for_stream(self, p100):
        long = small_kernel("long", flops=5_000_000.0)
        quick = small_kernel("quick", flops=1000.0)
        s1, s2 = p100.create_stream(), p100.create_stream()
        p100.launch(long, stream=s1)
        q = p100.launch(quick, stream=s2)
        t = p100.stream_synchronize(s2)
        assert q.is_complete
        # the long kernel may still be in flight at the time we returned
        p100.synchronize()
        assert p100.now >= t

    def test_event_record_and_elapsed(self, p100):
        s = p100.create_stream()
        e0, e1 = Event("before"), Event("after")
        p100.record_event(e0, stream=s)
        p100.launch(small_kernel(flops=100_000.0), stream=s)
        p100.record_event(e1, stream=s)
        p100.event_synchronize(e1)
        assert e0.is_complete and e1.is_complete
        assert e0.elapsed_us(e1) > 0

    def test_query_complete(self, p100):
        ke = p100.launch(small_kernel())
        # not yet processed: depends on host clock vs completion time
        p100.synchronize()
        assert p100.query_complete(ke)

    def test_utilization_bounded(self, p100):
        for i in range(4):
            p100.launch(small_kernel(tag=str(i)))
        p100.synchronize()
        assert 0.0 < p100.utilization() <= 1.0

    def test_reset_clears_state(self, p100):
        p100.launch(small_kernel())
        p100.synchronize()
        p100.reset()
        assert p100.now == 0.0 and p100.host_time == 0.0
        assert p100.kernels_launched == 0
        assert len(p100.timeline) == 0


class TestHooks:
    def test_launch_hook_called(self, p100):
        seen = []
        p100.launch_hooks.append(lambda gpu, ke: seen.append(ke.spec.name))
        p100.launch(small_kernel("hooked"))
        assert seen == ["hooked"]

    def test_completion_hook_called_with_times(self, p100):
        seen = []
        p100.completion_hooks.append(lambda gpu, ke: seen.append(ke.end_time))
        p100.launch(small_kernel())
        p100.synchronize()
        assert len(seen) == 1 and seen[0] > 0


class TestLifecycleErrors:
    def test_reset_with_pending_work_rejected(self, p100):
        from repro.errors import SimulationError
        p100.launch(small_kernel())
        with pytest.raises(SimulationError, match="pending"):
            p100.reset()
        p100.synchronize()
        p100.reset()   # fine once drained

    def test_streams_listing_includes_default(self, p100):
        s = p100.create_stream()
        ids = {st.stream_id for st in p100.streams()}
        assert 0 in ids and s.stream_id in ids

    def test_launch_overhead_accumulates(self, p100):
        p100.launch(small_kernel())
        p100.launch(small_kernel())
        assert p100.launch_overhead_total == pytest.approx(
            2 * p100.props.launch_latency_us
        )


class TestEventHeapGuard:
    def test_out_of_order_event_names_kind_and_payload(self, p100):
        from repro.errors import SimulationError
        p100.now = 50.0
        p100._push_event(1.0, "arrive", "stale-op")
        with pytest.raises(SimulationError) as excinfo:
            p100._process_next_event()
        msg = str(excinfo.value)
        assert "out-of-order" in msg
        assert "'arrive'" in msg           # event kind
        assert "t=1.0" in msg              # offending timestamp
        assert "50.0" in msg               # device clock it fell behind
        assert "'stale-op'" in msg         # payload repr

    def test_out_of_order_event_still_counted(self, p100):
        from repro.errors import SimulationError
        p100.now = 50.0
        p100._push_event(1.0, "arrive", None)
        before = p100.events_processed
        with pytest.raises(SimulationError):
            p100._process_next_event()
        assert p100.events_processed == before + 1

    def test_in_order_events_unaffected(self, p100):
        p100.launch(small_kernel())
        p100.synchronize()   # would raise if the guard misfired on ties
        assert p100.events_processed > 0
