"""Tests for pooling layers (ceil mode, padding, gradients)."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layers import PoolingLayer
from tests.conftest import assert_grad_close, numeric_gradient


def make_pool(f=2, s=2, op="max", pad=0, shape=(1, 1, 4, 4), seed=0):
    layer = PoolingLayer("pool", f, s, op=op, pad=pad)
    layer.setup([shape], np.random.default_rng(seed))
    return layer


class TestMaxPool:
    def test_simple_2x2(self):
        layer = make_pool()
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        (y,) = layer.forward([x])
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_ceil_mode_output_size(self):
        # Caffe CIFAR10: 32x32, f=3, s=2 -> 16 (ceil)
        layer = make_pool(f=3, s=2, shape=(1, 1, 32, 32))
        x = np.zeros((1, 1, 32, 32), dtype=np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (1, 1, 16, 16)

    def test_overhang_ignores_out_of_bounds(self):
        layer = make_pool(f=3, s=2, shape=(1, 1, 4, 4))
        x = np.full((1, 1, 4, 4), -5.0, dtype=np.float32)
        (y,) = layer.forward([x])
        # padding is -inf, so the max stays -5 even on overhanging windows
        assert (y == -5.0).all()

    def test_padded_keeps_size(self):
        # GoogLeNet inception pool: 7x7, f=3, s=1, pad=1 -> 7x7
        layer = make_pool(f=3, s=1, pad=1, shape=(1, 2, 7, 7))
        x = np.random.default_rng(0).normal(size=(1, 2, 7, 7)).astype(np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (1, 2, 7, 7)

    def test_gradient(self):
        layer = make_pool(f=3, s=2, shape=(2, 2, 7, 7))
        rng = np.random.default_rng(5)
        # distinct values so the argmax is stable under perturbation
        x = rng.permutation(2 * 2 * 49).reshape(2, 2, 7, 7).astype(np.float32)
        dout_shape = layer.forward([x])[0].shape
        dout = rng.normal(size=dout_shape).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([x])[0] * dout))

        layer.forward([x])
        (dx,) = layer.backward([dout], [x], [None])
        num = numeric_gradient(loss, x, eps=1e-1)
        assert_grad_close(dx, num, rtol=5e-2, atol=5e-3)

    def test_gradient_routes_to_argmax(self):
        layer = make_pool()
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        layer.forward([x])
        dout = np.ones((1, 1, 2, 2), dtype=np.float32)
        (dx,) = layer.backward([dout], [x], [None])
        assert dx[0, 0, 1, 1] == 1.0  # value 5 was the max of its window
        assert dx[0, 0, 0, 0] == 0.0


class TestAvePool:
    def test_simple_average(self):
        layer = make_pool(op="ave")
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        (y,) = layer.forward([x])
        assert y[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_valid_count_at_edges(self):
        # 3x3 window, stride 2 on 4x4: last window covers a 2x2 valid region
        layer = make_pool(f=3, s=2, op="ave", shape=(1, 1, 4, 4))
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        (y,) = layer.forward([x])
        assert (np.abs(y - 1.0) < 1e-6).all()  # averages of ones stay one

    def test_global_average(self):
        layer = make_pool(f=7, s=1, op="ave", shape=(2, 3, 7, 7))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(y[..., 0, 0], x.mean(axis=(2, 3)),
                                   rtol=1e-4)

    def test_gradient(self):
        layer = make_pool(f=3, s=2, op="ave", shape=(1, 2, 5, 5))
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        dout_shape = layer.forward([x])[0].shape
        dout = rng.normal(size=dout_shape).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([x])[0] * dout))

        layer.forward([x])
        (dx,) = layer.backward([dout], [x], [None])
        num = numeric_gradient(loss, x)
        assert_grad_close(dx, num)


class TestValidation:
    def test_bad_op(self):
        with pytest.raises(NetworkError):
            PoolingLayer("p", 2, 2, op="median")

    def test_bad_pad(self):
        with pytest.raises(NetworkError):
            PoolingLayer("p", 2, 2, pad=2)

    def test_two_bottoms_rejected(self):
        layer = PoolingLayer("p", 2, 2)
        with pytest.raises(NetworkError):
            layer.setup([(1, 1, 4, 4), (1, 1, 4, 4)],
                        np.random.default_rng(0))
