"""Graph replay: the engine primitive and instantiation semantics."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjected, GraphError, SimulationError
from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.gpusim import GPU, Event, get_device
from repro.gpusim.graph import GraphOp, count_launches
from repro.graphs.replay import instantiate
from repro.graphs.runtime import GraphModeRuntime
from repro.nn.zoo import build_lenet
from repro.runtime.executor import FixedStreamExecutor
from repro.runtime.lowering import lower_net
from tests.conftest import small_kernel


class TestLaunchGraphPrimitive:
    def test_single_host_overhead_for_whole_graph(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        ops = [GraphOp("launch", spec=small_kernel("a"), stream=s1),
               GraphOp("launch", spec=small_kernel("b"), stream=s2),
               GraphOp("launch", spec=small_kernel("c"), stream=s1)]
        o0 = p100.launch_overhead_total
        t0 = p100.host_time
        result = p100.launch_graph(ops, name="g")
        assert result.launches == 3 and result.ops == 3
        assert result.overhead_us == p100.props.launch_latency_us
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us)
        assert (p100.launch_overhead_total - o0
                == pytest.approx(p100.props.launch_latency_us))
        assert p100.graphs_launched == 1
        assert count_launches(ops) == 3

    def test_empty_graph_rejected(self, p100):
        with pytest.raises(SimulationError, match="no ops"):
            p100.launch_graph([], name="empty")

    def test_event_and_barrier_ordering_preserved(self, p100):
        gpu = GPU(get_device("P100"), record_timeline=True)
        s1, s2 = gpu.create_stream(), gpu.create_stream()
        e = Event(name="e0")
        ops = [GraphOp("launch", spec=small_kernel("a"), stream=s1),
               GraphOp("record", event=e, stream=s1),
               GraphOp("wait", event=e, stream=s2),
               GraphOp("launch", spec=small_kernel("b"), stream=s2),
               GraphOp("barrier"),
               GraphOp("launch", spec=small_kernel("c"), stream=s1)]
        gpu.launch_graph(ops, name="g")
        gpu.synchronize()
        rec = {r.name: r for r in gpu.timeline}
        # b waits on a's event; c waits on the barrier draining both.
        assert rec["b"].start_us >= rec["a"].end_us
        assert rec["c"].start_us >= rec["b"].end_us

    def test_graph_launch_fault_site_fires_before_state_change(self, p100):
        s1 = p100.create_stream()
        ops = [GraphOp("launch", spec=small_kernel("a"), stream=s1)]
        plan = FaultPlan((FaultSpec(site="graph_launch", nth=1),), seed=0)
        with chaos_session(plan):
            t0 = p100.host_time
            k0 = p100.kernels_launched
            with pytest.raises(FaultInjected):
                p100.launch_graph(ops, name="g")
            assert p100.host_time == t0          # no partial charge
            assert p100.kernels_launched == k0   # nothing enqueued
            p100.launch_graph(ops, name="g")     # nth=1: retry succeeds
        p100.synchronize()
        assert p100.kernels_launched == k0 + 1


class TestInstantiatedReplay:
    def _admitted_graph(self, gpu):
        net = build_lenet(batch=4, seed=0)
        ex = FixedStreamExecutor(gpu, 2)
        runtime = GraphModeRuntime(net=net, network="lenet")
        ex.graph_runtime = runtime
        works = lower_net(net, "forward")
        for _ in range(2):                  # warmup + capture
            ex.run_pass(works)
        (graph,) = runtime.admitted.values()
        return ex, works, graph

    def test_replay_matches_eager_kernel_multiset(self):
        gpu = GPU(get_device("P100"), record_timeline=True)
        ex, works, graph = self._admitted_graph(gpu)
        gpu.timeline.clear()
        ex._eager_run_pass(works)
        eager = sorted((r.name, r.stream_id) for r in gpu.timeline)
        gpu.timeline.clear()
        exec_ = instantiate(graph, gpu)
        exec_.run()
        replay = sorted(r.name for r in gpu.timeline)
        assert replay == sorted(n for n, _ in eager)
        assert exec_.launch_count == 1

    def test_replay_faster_than_eager(self, p100):
        ex, works, graph = self._admitted_graph(p100)
        eager_t0 = p100.host_time
        ex._eager_run_pass(works)
        eager = p100.host_time - eager_t0
        exec_ = instantiate(graph, p100)
        replay = exec_.run()
        assert replay < eager
        # Replay's host overhead is exactly one launch latency.
        o0 = p100.launch_overhead_total
        exec_.run()
        assert (p100.launch_overhead_total - o0
                == pytest.approx(p100.props.launch_latency_us))

    def test_default_stream_binds_to_device_default(self, p100):
        _, _, graph = self._admitted_graph(p100)
        exec_ = instantiate(graph, p100)
        if 0 in exec_.streams:
            assert exec_.streams[0] is p100.default_stream
        for sid, stream in exec_.streams.items():
            if sid != 0:
                assert not stream.is_default

    def test_empty_graph_not_instantiable(self, p100):
        from repro.graphs.compiled import CompiledGraph
        with pytest.raises(GraphError, match="no nodes"):
            instantiate(CompiledGraph(name="empty"), p100)
