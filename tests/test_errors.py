"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SimulationError,
        errors.LaunchError,
        errors.DeviceError,
        errors.OutOfMemoryError,
        errors.ProfilerError,
        errors.SolverError,
        errors.InfeasibleError,
        errors.UnboundedError,
        errors.NetworkError,
        errors.SchedulingError,
        errors.TransientError,
        errors.FaultInjected,
        errors.TransientFault,
        errors.FaultPlanError,
        errors.DegradedError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_launch_is_simulation_error(self):
        assert issubclass(errors.LaunchError, errors.SimulationError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)
        assert issubclass(errors.UnboundedError, errors.SolverError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("x")

    def test_transient_fault_is_both(self):
        # retry logic catches TransientError; fault accounting catches
        # FaultInjected — an injected transient must satisfy both
        assert issubclass(errors.TransientFault, errors.TransientError)
        assert issubclass(errors.TransientFault, errors.FaultInjected)

    def test_fault_injected_carries_site_metadata(self):
        e = errors.FaultInjected("boom", site="launch", key="sgemm",
                                 kind="transient")
        assert (e.site, e.key, e.kind) == ("launch", "sgemm", "transient")


class TestUsageSurfaces:
    """Every package raises its own domain error, never bare Exception."""

    def test_device_lookup(self):
        from repro.gpusim import get_device
        with pytest.raises(errors.DeviceError):
            get_device("doesnotexist")

    def test_milp(self):
        from repro.milp import Model
        with pytest.raises(errors.SolverError):
            Model().solve()

    def test_network(self):
        from repro.nn import Net
        from repro.nn.layer import LayerDef
        from repro.nn.layers import ReLULayer
        with pytest.raises(errors.NetworkError):
            Net("bad", [LayerDef(ReLULayer("r"), ["missing"], ["out"])],
                input_shapes={"data": (1, 4)})

    def test_data(self):
        from repro.data import make_dataset
        with pytest.raises(errors.ReproError):
            make_dataset("unknown")
