"""Over-subscription check: stream-pool and fill-sum rules.

Both rules are warnings, computed from the same happens-before relation
the other passes use; concurrency is approximated by hb depth levels so
every finding is a sound witness (members of one level are pairwise
unordered by construction).
"""

from repro.analyze.capacity import (CAPACITY_RULES,
                                    OVERSUBSCRIPTION_FACTOR,
                                    check_capacity, concurrency_levels)
from repro.analyze.program import DispatchProgram


def _fan_out(width: int, chains=None) -> DispatchProgram:
    prog = DispatchProgram(f"fan-{width}")
    for s in range(1, width + 1):
        prog.launch(f"k{s}", stream=s, writes={f"x{s}"},
                    chain=s - 1 if chains is None else chains[s - 1])
    prog.sync()
    return prog


def test_clean_program_has_no_findings():
    prog = _fan_out(2)
    assert check_capacity(prog, pool_limit=4) == []
    fills = {0: 0.5, 1: 0.5}
    assert check_capacity(prog, fills=fills, pool_limit=4) == []


def test_stream_pool_rule_fires_on_oversized_pool():
    prog = _fan_out(6)
    findings = check_capacity(prog, pool_limit=4)
    assert [f.rule for f in findings] == ["capacity/stream-pool"]
    f = findings[0]
    assert f.streams == 6 and f.limit == 4.0
    assert f.kernel_count == 6 and len(f.kernels) == 6
    assert "shrink the pool" in f.message


def test_pool_limit_defaults_to_device_queues():
    from repro.serve.engine import resolve_device
    props = resolve_device("p100")
    prog = _fan_out(props.max_concurrent_kernels + 1)
    findings = check_capacity(prog, device=props)
    assert any(f.rule == "capacity/stream-pool" for f in findings)
    small = _fan_out(min(2, props.max_concurrent_kernels))
    assert check_capacity(small, device=props) == []


def test_over_subscription_fires_above_the_factor():
    prog = _fan_out(3)
    fills = {0: 0.8, 1: 0.8, 2: 0.8}       # 2.4 > 1.5
    findings = check_capacity(prog, fills=fills, pool_limit=8)
    assert [f.rule for f in findings] == ["capacity/over-subscription"]
    f = findings[0]
    assert f.level == 0 and f.streams == 3
    assert abs(f.total_fill - 2.4) < 1e-9
    assert f.limit == OVERSUBSCRIPTION_FACTOR
    # witnesses sorted by descending fill, capped
    assert set(f.kernels) == {"k1", "k2", "k3"}


def test_serialized_launches_do_not_oversubscribe():
    """The same fills on one stream sit at different hb depths."""
    prog = DispatchProgram("serial")
    for i in range(3):
        prog.launch(f"k{i}", stream=1, writes={f"x{i}"}, chain=i)
    prog.sync()
    fills = {0: 0.8, 1: 0.8, 2: 0.8}
    assert check_capacity(prog, fills=fills, pool_limit=8) == []
    levels = concurrency_levels(prog)
    assert [len(lv) for lv in levels] == [1, 1, 1]


def test_concurrency_levels_group_unordered_launches():
    prog = _fan_out(4)
    levels = concurrency_levels(prog)
    assert len(levels) == 1 and len(levels[0]) == 4


def test_suppression_by_rule_id():
    prog = _fan_out(6)
    prog.allow("capacity/stream-pool")
    assert check_capacity(prog, pool_limit=4) == []
    prog2 = _fan_out(3)
    prog2.allow("capacity/over-subscription")
    fills = {0: 0.8, 1: 0.8, 2: 0.8}
    assert check_capacity(prog2, fills=fills, pool_limit=8) == []


def test_rule_tuple_is_stable():
    assert CAPACITY_RULES == ("capacity/over-subscription",
                              "capacity/stream-pool")
    assert OVERSUBSCRIPTION_FACTOR == 1.5
