"""Tests for the kernel builders (launch-geometry heuristics)."""

import math

import pytest

from repro.kernels.ops import (
    CAFFE_CUDA_NUM_THREADS,
    axpy_spec,
    col2im_spec,
    eltwise_spec,
    gemmk_bias_spec,
    im2col_spec,
    lrn_spec,
    pooling_spec,
    relu_spec,
    sgemm_spec,
    softmax_spec,
)


class TestIm2col:
    def test_grid_covers_output_elements(self):
        spec = im2col_spec(3, 55, 55, 11, 11)
        n = 3 * 55 * 55
        assert spec.launch.num_blocks == math.ceil(n / CAFFE_CUDA_NUM_THREADS)

    def test_caffenet_conv1_grid_matches_paper_example_shape(self):
        # the paper's workflow example cites an [18,1,1] grid for im2col
        # and 33 registers per thread; our builder reproduces both for the
        # CaffeNet conv1 geometry (3 x 55 x 55 output / 512-thread blocks)
        spec = im2col_spec(3, 55, 55, 11, 11)
        assert spec.launch.grid == (18, 1, 1)
        assert spec.launch.registers_per_thread == 33

    def test_work_scales_with_filter(self):
        small = im2col_spec(1, 24, 24, 3, 3)
        big = im2col_spec(1, 24, 24, 7, 7)
        assert big.bytes_per_thread > small.bytes_per_thread

    def test_no_shared_memory(self):
        assert im2col_spec(1, 10, 10, 5, 5).launch.shared_mem_per_block == 0


class TestCol2im:
    def test_one_thread_per_input_pixel(self):
        spec = col2im_spec(20, 12, 12, 5, 5)
        assert spec.launch.num_blocks == math.ceil(20 * 144 / 512)

    def test_name(self):
        assert col2im_spec(1, 8, 8, 3, 3).name == "col2im"


class TestSgemm:
    def test_large_gemm_uses_64_tile(self):
        spec = sgemm_spec(256, 729, 2400)
        assert spec.launch.grid == (math.ceil(256 / 64),
                                    math.ceil(729 / 64), 1)
        assert spec.launch.threads_per_block == 256
        assert spec.launch.shared_mem_per_block == 8192

    def test_skinny_gemm_uses_small_tile(self):
        spec = sgemm_spec(20, 576, 25)
        assert spec.launch.grid[0] == math.ceil(20 / 16)

    def test_flop_count_exact(self):
        m, n, k = 64, 128, 32
        spec = sgemm_spec(m, n, k)
        assert spec.total_flops == pytest.approx(2 * m * n * k)

    def test_accumulate_reads_c(self):
        a = sgemm_spec(64, 64, 64, accumulate=False)
        b = sgemm_spec(64, 64, 64, accumulate=True)
        assert b.bytes_per_thread > a.bytes_per_thread

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            sgemm_spec(0, 10, 10)


class TestElementwiseFamilies:
    def test_relu_flat_grid(self):
        spec = relu_spec(10_000)
        assert spec.launch.num_blocks == math.ceil(10_000 / 512)
        assert spec.name == "relu"

    def test_gemmk_is_small(self):
        spec = gemmk_bias_spec(20, 576)
        assert spec.launch.threads_per_block == 256
        assert spec.name == "gemmk"

    def test_pooling_names(self):
        assert pooling_spec(32, 16, 16, 3, 3, op="max").name == "maxpool"
        assert pooling_spec(32, 16, 16, 3, 3, op="ave").name == "avepool"

    def test_lrn_stages(self):
        s = lrn_spec(96, 27, 27, 5, stage="scale")
        o = lrn_spec(96, 27, 27, 5, stage="output")
        assert s.name == "lrn_scale" and o.name == "lrn_output"
        # output stage is per-element, scale stage per spatial position
        assert o.launch.total_threads > s.launch.total_threads

    def test_lrn_bad_stage(self):
        with pytest.raises(ValueError):
            lrn_spec(96, 27, 27, 5, stage="bogus")

    def test_axpy(self):
        spec = axpy_spec(1000)
        assert spec.name == "axpy" and spec.flops_per_thread == 2.0

    def test_eltwise_custom_name(self):
        spec = eltwise_spec("dropout", 5000)
        assert spec.name == "dropout"
        assert spec.launch.num_blocks == math.ceil(5000 / 512)

    def test_softmax_covers_batch(self):
        spec = softmax_spec(10, count=100)
        assert spec.launch.total_threads >= 1000

    def test_tags_propagate(self):
        assert im2col_spec(1, 4, 4, 3, 3, tag="conv1/s3").tag == "conv1/s3"
