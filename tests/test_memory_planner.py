"""Tests for the device-memory planner."""

import pytest

from repro.errors import OutOfMemoryError
from repro.gpusim import GPU, get_device
from repro.nn.zoo import build_cifar10, build_caffenet
from repro.runtime.memory_planner import (
    allocate_net,
    plan_memory,
    release_net,
)


class TestPlan:
    def test_breakdown_positive(self):
        net = build_cifar10(batch=10)
        plan = plan_memory(net)
        assert plan.params > 0
        assert plan.param_grads == plan.params
        assert plan.activations > 0
        assert plan.col_buffer > 0
        assert plan.total == (plan.params + plan.param_grads
                              + 2 * plan.activations + plan.col_buffer)

    def test_col_buffer_sized_for_largest_conv(self):
        net = build_cifar10(batch=10)
        # conv1: K=75, P=1024 -> 307200 B; conv2: K=800, P=256 -> 819200 B;
        # conv3: K=800, P=64 -> 204800 B
        assert plan_memory(net).col_buffer == 4 * 800 * 256

    def test_activations_scale_with_batch(self):
        small = plan_memory(build_cifar10(batch=10))
        big = plan_memory(build_cifar10(batch=40))
        assert big.activations > 3 * small.activations
        assert big.params == small.params

    def test_caffenet_fits_12gb_card(self):
        net = build_caffenet(batch=16, classes=100, fc_dim=256)
        plan = plan_memory(net)
        assert plan.total < 12 * (1 << 30)


class TestAllocation:
    def test_allocate_and_release(self, p100):
        net = build_cifar10(batch=10)
        plan = allocate_net(p100, net)
        assert p100.allocator.bytes_in_use >= plan.total
        release_net(p100, plan)
        assert p100.allocator.bytes_in_use == 0

    def test_oom_on_tiny_device(self):
        from repro.gpusim.arch import Architecture
        from repro.gpusim.device import DeviceProperties, KIB
        tiny = DeviceProperties(
            name="tiny", arch=Architecture.PASCAL, sm_count=1,
            cores_per_sm=64, clock_ghz=1.0, memory_bytes=1 << 20,
            mem_bandwidth_gbps=100.0, memory_type="X",
            shared_mem_per_sm=48 * KIB,
        )
        gpu = GPU(tiny)
        net = build_cifar10(batch=50)
        with pytest.raises(OutOfMemoryError):
            allocate_net(gpu, net)

    def test_glp4nn_adds_no_device_memory(self, p100):
        """The paper's space claim: tracker memory is host-side only."""
        from repro.core import GLP4NN
        from repro.runtime.lowering import lower_conv_forward
        from repro.nn.zoo.table5 import CIFAR10_CONVS
        net = build_cifar10(batch=10)
        plan = allocate_net(p100, net)
        used_before = p100.allocator.bytes_in_use
        glp = GLP4NN([p100])
        work = lower_conv_forward(CIFAR10_CONVS[0])
        glp.run_layer(p100, work)   # profile (CUPTI buffers are host RAM)
        glp.run_layer(p100, work)
        assert p100.allocator.bytes_in_use == used_before
        release_net(p100, plan)
