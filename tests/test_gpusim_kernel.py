"""Tests for kernel/launch-configuration primitives."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.kernel import (
    KernelSpec,
    LaunchConfig,
    WARP_SIZE,
    as_dim3,
    dim3_size,
)


class TestDim3:
    def test_scalar_normalization(self):
        assert as_dim3(8) == (8, 1, 1)

    def test_pair_normalization(self):
        assert as_dim3((4, 2)) == (4, 2, 1)

    def test_triple_passthrough(self):
        assert as_dim3((2, 3, 4)) == (2, 3, 4)

    def test_size(self):
        assert dim3_size((2, 3, 4)) == 24

    def test_too_many_components(self):
        with pytest.raises(LaunchError):
            as_dim3((1, 2, 3, 4))


class TestLaunchConfig:
    def test_basic_properties(self):
        lc = LaunchConfig(grid=(10, 2, 1), block=(128, 2, 1),
                          shared_mem_static=100, shared_mem_dynamic=28,
                          registers_per_thread=40)
        assert lc.num_blocks == 20
        assert lc.threads_per_block == 256
        assert lc.warps_per_block == 8
        assert lc.shared_mem_per_block == 128
        assert lc.registers_per_block == 40 * 256

    def test_warp_rounding(self):
        lc = LaunchConfig(grid=(1, 1, 1), block=(33, 1, 1))
        assert lc.warps_per_block == 2

    def test_warp_size_constant(self):
        assert WARP_SIZE == 32

    def test_zero_dimension_rejected(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(0, 1, 1), block=(32, 1, 1))

    def test_negative_smem_rejected(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1),
                         shared_mem_dynamic=-1)

    def test_zero_registers_rejected(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1),
                         registers_per_thread=0)

    def test_with_grid(self):
        lc = LaunchConfig(grid=(4, 1, 1), block=(64, 1, 1))
        lc2 = lc.with_grid(9)
        assert lc2.num_blocks == 9
        assert lc2.block == lc.block
        assert lc.num_blocks == 4  # original untouched

    def test_int_grid_accepted(self):
        lc = LaunchConfig(grid=7, block=32)
        assert lc.num_blocks == 7 and lc.threads_per_block == 32


class TestKernelSpec:
    def _spec(self, **kw):
        base = dict(name="k", launch=LaunchConfig(grid=(4, 1, 1),
                                                  block=(128, 1, 1)))
        base.update(kw)
        return KernelSpec(**base)

    def test_totals(self):
        spec = self._spec(flops_per_thread=10.0, bytes_per_thread=4.0)
        assert spec.total_flops == 10.0 * 4 * 128
        assert spec.total_bytes == 4.0 * 4 * 128

    def test_signature_groups_same_config(self):
        a = self._spec(tag="sample0")
        b = self._spec(tag="sample1")
        assert a.signature == b.signature
        assert a.uid != b.uid

    def test_signature_distinguishes_geometry(self):
        a = self._spec()
        b = self._spec(launch=LaunchConfig(grid=(8, 1, 1), block=(128, 1, 1)))
        assert a.signature != b.signature

    def test_retagged_fresh_uid(self):
        a = self._spec(tag="x")
        b = a.retagged("y")
        assert b.tag == "y" and b.uid != a.uid
        assert b.signature == a.signature

    def test_negative_work_rejected(self):
        with pytest.raises(LaunchError):
            self._spec(flops_per_thread=-1.0)

    def test_nonpositive_duration_override_rejected(self):
        with pytest.raises(LaunchError):
            self._spec(duration_us=0.0)
