"""Certified sync-elision: what the pass removes, keeps, and refuses.

The certificate is the launch closure — per-stream launch sequences plus
the happens-before relation projected onto launch ordinals.  A wait is
removable iff deleting it leaves that closure bit-identical; these tests
pin the removable shapes (duplicates, barrier-implied edges, orphaned
records), the non-removable one (the only edge ordering two kernels),
and the refusal on deadlocked input.
"""

import pytest

from repro.analyze.elide import (certified_minimize, launch_closure,
                                 minimize)
from repro.analyze.program import (DispatchProgram, RecordEvent,
                                   WaitEvent)
from repro.errors import AnalyzeError


def _producer_consumer() -> DispatchProgram:
    """One live cross-stream edge: the wait is load-bearing."""
    prog = DispatchProgram("pc")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.wait(event=1, stream=2)
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    return prog


def test_necessary_wait_is_kept():
    result = certified_minimize(_producer_consumer())
    assert result.equivalent
    assert result.waits_removed == 0 and result.records_removed == 0
    assert result.waits_checked == 1
    assert result.minimized.name == "pc+min"
    assert len(result.minimized) == len(result.original)


def test_duplicate_wait_is_removed():
    prog = _producer_consumer()
    # re-issue the same wait right before the consumer launch (op 3)
    prog.ops.insert(3, WaitEvent(event=1, stream=2))
    result = certified_minimize(prog)
    assert result.waits_removed == 1 and result.records_removed == 0
    assert result.removed[0].reason == "implied-by-happens-before"
    assert sum(1 for op in result.minimized.ops
               if isinstance(op, WaitEvent)) == 1


def test_barrier_implied_wait_and_orphaned_record_are_removed():
    prog = DispatchProgram("barrier-implied")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.sync()                        # the barrier already orders a < b
    prog.wait(event=1, stream=2)
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    result = certified_minimize(prog)
    assert result.waits_removed == 1
    assert result.records_removed == 1  # record orphaned by the elision
    reasons = {r.reason for r in result.removed}
    assert reasons == {"implied-by-happens-before", "orphaned-record"}
    assert not any(isinstance(op, (WaitEvent, RecordEvent))
                   for op in result.minimized.ops)


def test_closure_certificate_is_invariant_under_elision():
    prog = _producer_consumer()
    prog.ops.insert(3, WaitEvent(event=1, stream=2))
    result = certified_minimize(prog)
    assert launch_closure(result.minimized.ops) == \
        launch_closure(result.original.ops)
    # and the per-stream launch sequences were never touched
    seqs_o, _ = launch_closure(result.original.ops)
    seqs_m, _ = launch_closure(result.minimized.ops)
    assert seqs_o == seqs_m


def test_launch_closure_shape():
    seqs, closure = launch_closure(_producer_consumer().ops)
    assert seqs == ((1, (("a", 0),)), (2, (("b", 1),)))
    assert closure == (frozenset(), frozenset({0}))  # a happens before b


def test_refuses_deadlocked_input():
    prog = DispatchProgram("dirty")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.wait(event=7, stream=1)
    prog.record(event=7, stream=1)
    with pytest.raises(AnalyzeError, match="refusing to minimize"):
        minimize(prog)


def test_suppression_set_carries_over_to_minimized_program():
    prog = _producer_consumer()
    prog.allow("hazard/WAW")
    result = certified_minimize(prog)
    assert result.minimized.is_allowed("hazard/WAW")


def test_elision_result_counts_round_trip():
    prog = DispatchProgram("counts")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.wait(event=1, stream=2)
    prog.wait(event=1, stream=2)       # duplicate
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    d = certified_minimize(prog).to_dict()
    assert d["waits_removed"] == 1 and d["records_removed"] == 0
    assert d["ops_before"] == d["ops_after"] + 1
    assert d["equivalent"] is True
    assert d["removed"][0]["kind"] == "wait"
