"""Tests for ``python -m repro analyze`` and the shared report formats."""

import json

import pytest

from repro.cli import main


class TestAnalyzeSubcommand:
    def test_hazards_single_net(self, capsys):
        assert main(["analyze", "hazards", "--network", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "lenet/round-robin" in out
        assert "analyze hazards: PASS" in out

    def test_lint_clean_tree(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path)]) == 0
        assert "analyze lint: PASS" in capsys.readouterr().out

    def test_lint_violation_exits_1(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "analyze lint: FAIL" in out

    def test_all_runs_both(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "all", "--network", "lenet",
                     "--paths", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "analyze hazards: PASS" in out
        assert "analyze lint: PASS" in out
        assert "analyze: PASS" in out

    def test_did_you_mean(self, capsys):
        assert main(["analyze", "hazrds"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis" in err
        assert "did you mean" in err and "hazards" in err

    def test_unknown_without_close_match(self, capsys):
        assert main(["analyze", "zzzzz"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" not in err
        assert "available: hazards, deadlock, minimize, lint, all" in err

    def test_did_you_mean_new_kinds(self, capsys):
        assert main(["analyze", "deadlok"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "deadlock" in err

    def test_format_json(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "analyze-report" and doc["ok"]
        assert doc["lint"]["files_checked"] == 1

    def test_sarif_and_report_outputs(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        sarif = tmp_path / "out.sarif"
        report = tmp_path / "out.json"
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--sarif", str(sarif), "--report", str(report)]) == 1
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "unseeded-rng"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 2
        assert json.loads(report.read_text())["ok"] is False

    def test_hazard_sarif_uses_logical_locations(self, capsys, tmp_path):
        sarif = tmp_path / "hz.sarif"
        assert main(["analyze", "hazards", "--network", "lenet",
                     "--sarif", str(sarif)]) == 0
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze-hazards"
        assert run["results"] == []     # clean certification


class TestDeadlockAndMinimizeSubcommands:
    def test_deadlock_certifies_zoo_producers(self, capsys):
        assert main(["analyze", "deadlock", "--network", "lenet",
                     "--no-interop"]) == 0
        out = capsys.readouterr().out
        assert "analyze deadlock: PASS" in out
        assert "0 finding(s)" in out

    def test_minimize_certifies_zoo_producers(self, capsys):
        assert main(["analyze", "minimize", "--network", "lenet",
                     "--no-interop"]) == 0
        out = capsys.readouterr().out
        assert "analyze minimize: PASS" in out

    def test_deadlock_json_carries_counts(self, capsys):
        assert main(["analyze", "deadlock", "--network", "lenet",
                     "--no-interop", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "analyze-report" and doc["ok"]
        assert doc["counts"]["deadlock_findings"] == 0
        assert doc["deadlock"]["kind"] == "deadlock-report"

    def test_minimize_interop_removes_waits(self, capsys):
        """The interop lowerings are where redundant waits fall out."""
        assert main(["analyze", "minimize", "--network", "lenet"]) == 0
        doc_out = capsys.readouterr().out
        assert "analyze minimize: PASS" in doc_out
        assert "certified" in doc_out


class TestBaselineGate:
    def test_update_writes_baseline_file(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        err = capsys.readouterr().err
        assert "baseline ->" in err
        doc = json.loads(baseline.read_text())
        assert doc["kind"] == "analyze-baseline"
        assert doc["counts"]["lint_violations"] == 0

    def test_gate_passes_against_matching_baseline(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        main(["analyze", "lint", "--paths", str(tmp_path),
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        assert "baseline gate OK" in capsys.readouterr().err

    def test_gate_fails_on_new_findings(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        main(["analyze", "lint", "--paths", str(tmp_path),
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "baseline gate FAILED" in err
        assert "lint_violations" in err

    def test_gate_waives_recorded_findings(self, capsys, tmp_path):
        """A committed baseline acknowledges known findings: exit 0."""
        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        baseline = tmp_path / "b.json"
        # recording the dirty state exits 1 (the report is not ok)...
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 1
        capsys.readouterr()
        # ...but gating against it afterwards waives the recorded finding
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        assert "baseline gate OK" in capsys.readouterr().err

    def test_malformed_baseline_is_a_usage_error(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        baseline.write_text("{\"kind\": \"something-else\"}")
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--baseline", str(baseline)]) == 2
        assert "analyze failed" in capsys.readouterr().err

    def test_committed_baseline_matches_current_tree(self):
        """The repo's own baseline file must stay truthful: all zeros."""
        import pathlib
        committed = (pathlib.Path(__file__).parent.parent
                     / "results" / "analyze_baseline.json")
        doc = json.loads(committed.read_text())
        assert doc["kind"] == "analyze-baseline"
        assert all(v == 0 for v in doc["counts"].values())


class TestMutateFlow:
    def test_mutant_flagged_and_replayable(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        witness = tmp_path / "mutant.json"
        code = main(["analyze", "hazards", "--network", "cifar10",
                     "--mutate-seed", "0", "--witness", str(witness)])
        captured = capsys.readouterr()
        assert code == 1                       # planted bug is flagged
        assert "hazard(s)" in captured.out
        assert witness.exists()
        # the saved witness must reproduce dynamically via verify --replay
        assert main(["verify", "--replay", str(witness)]) == 1
        assert "REPRODUCED" in capsys.readouterr().out

    def test_mutant_witness_mentions_two_kernels(self, capsys, tmp_path):
        witness = tmp_path / "w.json"
        main(["analyze", "hazards", "--network", "cifar10",
              "--mutate-seed", "0", "--witness", str(witness),
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        hz = doc["hazards"]["entries"][0]["hazards"][0]
        assert hz["first"]["kernel"] and hz["second"]["kernel"]
        assert hz["first"]["stream"] != hz["second"]["stream"]
        assert hz["regions"]


class TestVerifyFormat:
    def test_verify_format_json(self, capsys):
        code = main(["verify", "--only", "schedule", "--rounds", "1",
                     "--network", "lenet", "--batch", "2",
                     "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["ok"]

    def test_verify_json_alias_still_works(self, capsys):
        code = main(["verify", "--only", "schedule", "--rounds", "1",
                     "--network", "lenet", "--batch", "2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["ok"]
