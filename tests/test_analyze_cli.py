"""Tests for ``python -m repro analyze`` and the shared report formats."""

import json

import pytest

from repro.cli import main


class TestAnalyzeSubcommand:
    def test_hazards_single_net(self, capsys):
        assert main(["analyze", "hazards", "--network", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "lenet/round-robin" in out
        assert "analyze hazards: PASS" in out

    def test_lint_clean_tree(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path)]) == 0
        assert "analyze lint: PASS" in capsys.readouterr().out

    def test_lint_violation_exits_1(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "analyze lint: FAIL" in out

    def test_all_runs_both(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "all", "--network", "lenet",
                     "--paths", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "analyze hazards: PASS" in out
        assert "analyze lint: PASS" in out
        assert "analyze: PASS" in out

    def test_did_you_mean(self, capsys):
        assert main(["analyze", "hazrds"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis" in err
        assert "did you mean" in err and "hazards" in err

    def test_unknown_without_close_match(self, capsys):
        assert main(["analyze", "zzzzz"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" not in err
        assert "available: hazards, lint, all" in err

    def test_format_json(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "analyze-report" and doc["ok"]
        assert doc["lint"]["files_checked"] == 1

    def test_sarif_and_report_outputs(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        sarif = tmp_path / "out.sarif"
        report = tmp_path / "out.json"
        assert main(["analyze", "lint", "--paths", str(tmp_path),
                     "--sarif", str(sarif), "--report", str(report)]) == 1
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "unseeded-rng"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 2
        assert json.loads(report.read_text())["ok"] is False

    def test_hazard_sarif_uses_logical_locations(self, capsys, tmp_path):
        sarif = tmp_path / "hz.sarif"
        assert main(["analyze", "hazards", "--network", "lenet",
                     "--sarif", str(sarif)]) == 0
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze-hazards"
        assert run["results"] == []     # clean certification


class TestMutateFlow:
    def test_mutant_flagged_and_replayable(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        witness = tmp_path / "mutant.json"
        code = main(["analyze", "hazards", "--network", "cifar10",
                     "--mutate-seed", "0", "--witness", str(witness)])
        captured = capsys.readouterr()
        assert code == 1                       # planted bug is flagged
        assert "hazard(s)" in captured.out
        assert witness.exists()
        # the saved witness must reproduce dynamically via verify --replay
        assert main(["verify", "--replay", str(witness)]) == 1
        assert "REPRODUCED" in capsys.readouterr().out

    def test_mutant_witness_mentions_two_kernels(self, capsys, tmp_path):
        witness = tmp_path / "w.json"
        main(["analyze", "hazards", "--network", "cifar10",
              "--mutate-seed", "0", "--witness", str(witness),
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        hz = doc["hazards"]["entries"][0]["hazards"][0]
        assert hz["first"]["kernel"] and hz["second"]["kernel"]
        assert hz["first"]["stream"] != hz["second"]["stream"]
        assert hz["regions"]


class TestVerifyFormat:
    def test_verify_format_json(self, capsys):
        code = main(["verify", "--only", "schedule", "--rounds", "1",
                     "--network", "lenet", "--batch", "2",
                     "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["ok"]

    def test_verify_json_alias_still_works(self, capsys):
        code = main(["verify", "--only", "schedule", "--rounds", "1",
                     "--network", "lenet", "--batch", "2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["ok"]
