"""Tests for the two-phase simplex LP solver, with scipy as oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.milp.simplex import LinearProgram, solve_lp
from repro.milp.solution import SolveStatus

scipy_linprog = pytest.importorskip("scipy.optimize").linprog


class TestHandCases:
    def test_simple_max(self):
        # max 2x + 3y st 3x + 4y <= 24, x,y in [0, 10] (as min of negation)
        lp = LinearProgram(c=[-2, -3], a_ub=[[3, 4]], b_ub=[24],
                           lo=[0, 0], hi=[10, 10])
        res = solve_lp(lp)
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-18.0)

    def test_equality_constraint(self):
        # min x + y st x + y = 5, x >= 0, y >= 0
        lp = LinearProgram(c=[1, 1], a_eq=[[1, 1]], b_eq=[5])
        res = solve_lp(lp)
        assert res.objective == pytest.approx(5.0)

    def test_infeasible(self):
        lp = LinearProgram(c=[1], a_ub=[[1]], b_ub=[-2], lo=[0], hi=[10])
        assert solve_lp(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[-1], lo=[0], hi=[np.inf])
        assert solve_lp(lp).status is SolveStatus.UNBOUNDED

    def test_bounded_no_constraints(self):
        lp = LinearProgram(c=[1.0, 2.0], lo=[3, 4], hi=[10, 10])
        res = solve_lp(lp)
        assert res.status is SolveStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [3, 4])

    def test_negative_lower_bounds(self):
        lp = LinearProgram(c=[1], lo=[-5], hi=[5])
        res = solve_lp(lp)
        assert res.objective == pytest.approx(-5.0)

    def test_free_variable_split(self):
        # min x st x >= -inf with x + 0y <= 3 and x >= -7 via ub row
        lp = LinearProgram(c=[1], a_ub=[[-1]], b_ub=[7],
                           lo=[-np.inf], hi=[np.inf])
        res = solve_lp(lp)
        assert res.objective == pytest.approx(-7.0)

    def test_degenerate_does_not_cycle(self):
        # classic Beale-like degeneracy; Bland's rule must terminate
        lp = LinearProgram(
            c=[-0.75, 150, -0.02, 6],
            a_ub=[[0.25, -60, -0.04, 9],
                  [0.5, -90, -0.02, 3],
                  [0, 0, 1, 0]],
            b_ub=[0, 0, 1],
        )
        res = solve_lp(lp)
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram(c=[1, 2], a_ub=[[1]], b_ub=[1])

    def test_inverted_bounds_infeasible(self):
        lp = LinearProgram(c=[1], lo=[5], hi=[2])
        assert solve_lp(lp).status is SolveStatus.INFEASIBLE


class TestAgainstScipy:
    def _compare(self, lp: LinearProgram) -> None:
        ours = solve_lp(lp)
        ref = scipy_linprog(
            lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, A_eq=lp.a_eq, b_eq=lp.b_eq,
            bounds=list(zip(lp.lo, lp.hi)), method="highs",
        )
        if ref.success:
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, rel=1e-6,
                                                   abs=1e-7)
        else:
            assert ours.status in (SolveStatus.INFEASIBLE,
                                   SolveStatus.UNBOUNDED)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_bounded_problems(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 7))
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.normal(size=(m, n)),
            b_ub=rng.normal(size=m) + 1.0,
            lo=np.zeros(n),
            hi=np.full(n, 10.0),
        )
        self._compare(lp)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_with_equalities(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(3, 6))
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.normal(size=(2, n)),
            b_ub=rng.normal(size=2) + 2.0,
            a_eq=rng.normal(size=(1, n)),
            b_eq=rng.normal(size=1),
            lo=np.zeros(n),
            hi=np.full(n, 5.0),
        )
        self._compare(lp)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_optimum_feasible(self, data):
        """Any reported optimum must satisfy all constraints and bounds."""
        n = data.draw(st.integers(2, 5))
        m = data.draw(st.integers(1, 4))
        flt = st.floats(-5, 5, allow_nan=False)
        c = np.array(data.draw(st.lists(flt, min_size=n, max_size=n)))
        a = np.array([data.draw(st.lists(flt, min_size=n, max_size=n))
                      for _ in range(m)])
        b = np.array(data.draw(st.lists(st.floats(0.5, 10), min_size=m,
                                        max_size=m)))
        lp = LinearProgram(c=c, a_ub=a, b_ub=b, lo=np.zeros(n),
                           hi=np.full(n, 8.0))
        res = solve_lp(lp)
        assert res.status is SolveStatus.OPTIMAL  # x=0 is always feasible
        assert np.all(a @ res.x <= b + 1e-6)
        assert np.all(res.x >= -1e-9) and np.all(res.x <= 8 + 1e-9)
