"""Tests for Net wiring, execution and parameter sharing."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    ConcatLayer,
    ConvolutionLayer,
    InnerProductLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net

RNG = lambda s=0: np.random.default_rng(s)


def tiny_net(seed=0):
    return Net(
        "tiny",
        [
            LayerDef(InnerProductLayer("ip1", 8), ["data"], ["ip1"]),
            LayerDef(ReLULayer("relu1"), ["ip1"], ["relu1"]),
            LayerDef(InnerProductLayer("ip2", 3), ["relu1"], ["ip2"]),
            LayerDef(SoftmaxWithLossLayer("loss"), ["ip2", "label"], ["loss"]),
        ],
        input_shapes={"data": (4, 5), "label": (4,)},
        seed=seed,
    )


def tiny_batch(seed=1):
    rng = RNG(seed)
    return {
        "data": rng.normal(size=(4, 5)).astype(np.float32),
        "label": rng.integers(0, 3, size=4).astype(np.float32),
    }


class TestConstruction:
    def test_shapes_inferred(self):
        net = tiny_net()
        assert net.blob_shapes["ip1"] == (4, 8)
        assert net.blob_shapes["loss"] == (1,)

    def test_unknown_bottom_rejected(self):
        with pytest.raises(NetworkError, match="not produced yet"):
            Net("bad",
                [LayerDef(ReLULayer("r"), ["nope"], ["out"])],
                input_shapes={"data": (1, 4)})

    def test_duplicate_top_rejected(self):
        with pytest.raises(NetworkError, match="already exists"):
            Net("bad",
                [LayerDef(ReLULayer("r1"), ["data"], ["x"]),
                 LayerDef(ReLULayer("r2"), ["data"], ["x"])],
                input_shapes={"data": (1, 4)})

    def test_in_place_rejected(self):
        with pytest.raises(NetworkError, match="in-place"):
            Net("bad",
                [LayerDef(ReLULayer("r"), ["data"], ["data"])],
                input_shapes={"data": (1, 4)})

    def test_layer_lookup(self):
        net = tiny_net()
        assert net.layer("ip1").name == "ip1"
        with pytest.raises(NetworkError):
            net.layer("missing")

    def test_deterministic_initialization(self):
        a, b = tiny_net(seed=3), tiny_net(seed=3)
        np.testing.assert_array_equal(a.layer("ip1").params[0].data,
                                      b.layer("ip1").params[0].data)

    def test_different_seeds_differ(self):
        a, b = tiny_net(seed=3), tiny_net(seed=4)
        assert not np.array_equal(a.layer("ip1").params[0].data,
                                  b.layer("ip1").params[0].data)


class TestForwardBackward:
    def test_forward_produces_all_blobs(self):
        net = tiny_net()
        blobs = net.forward(tiny_batch())
        assert set(blobs) >= {"data", "ip1", "relu1", "ip2", "loss"}

    def test_missing_input_rejected(self):
        net = tiny_net()
        with pytest.raises(NetworkError, match="missing net inputs"):
            net.forward({"data": np.zeros((4, 5), dtype=np.float32)})

    def test_wrong_input_shape_rejected(self):
        net = tiny_net()
        batch = tiny_batch()
        batch["data"] = np.zeros((4, 6), dtype=np.float32)
        with pytest.raises(NetworkError, match="shape"):
            net.forward(batch)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(NetworkError):
            tiny_net().backward()

    def test_backward_fills_param_diffs(self):
        net = tiny_net()
        net.forward(tiny_batch())
        net.backward()
        for blob, _, _ in net.unique_params():
            assert np.abs(blob.diff).sum() >= 0  # allocated
        # at least the last layer must receive nonzero gradient
        assert np.abs(net.layer("ip2").params[0].diff).sum() > 0

    def test_loss_value(self):
        net = tiny_net()
        net.forward(tiny_batch())
        assert net.loss_value() > 0

    def test_no_loss_layer_rejected(self):
        net = Net("nl", [LayerDef(ReLULayer("r"), ["data"], ["out"])],
                  input_shapes={"data": (1, 4)})
        net.forward({"data": np.zeros((1, 4), dtype=np.float32)})
        with pytest.raises(NetworkError, match="no loss layer"):
            net.backward()

    def test_fanout_blob_gradients_accumulate(self):
        """A blob consumed by two branches sums its gradients."""
        net = Net(
            "fanout",
            [
                LayerDef(InnerProductLayer("a", 4), ["data"], ["a"]),
                LayerDef(ReLULayer("r1"), ["a"], ["b1"]),
                LayerDef(ReLULayer("r2"), ["a"], ["b2"]),
                LayerDef(ConcatLayer("cat"), ["b1", "b2"], ["cat"]),
                LayerDef(SoftmaxWithLossLayer("loss"), ["cat", "label"],
                         ["loss"]),
            ],
            input_shapes={"data": (2, 3), "label": (2,)},
        )
        rng = RNG(9)
        net.forward({
            "data": rng.normal(size=(2, 3)).astype(np.float32) + 1.0,
            "label": np.array([0.0, 1.0], dtype=np.float32),
        })
        net.backward()
        assert "a" in net.blob_diffs
        assert np.abs(net.blob_diffs["a"]).sum() > 0


class TestParamSharing:
    def _shared_net(self):
        return Net(
            "shared",
            [
                LayerDef(InnerProductLayer("left", 4), ["x1"], ["l"],
                         param_key="w"),
                LayerDef(InnerProductLayer("right", 4), ["x2"], ["r"],
                         param_key="w"),
                LayerDef(ConcatLayer("cat"), ["l", "r"], ["cat"]),
                LayerDef(SoftmaxWithLossLayer("loss"), ["cat", "label"],
                         ["loss"]),
            ],
            input_shapes={"x1": (2, 3), "x2": (2, 3), "label": (2,)},
        )

    def test_blobs_are_shared(self):
        net = self._shared_net()
        assert net.layer("left").params[0] is net.layer("right").params[0]

    def test_unique_params_deduplicates(self):
        net = self._shared_net()
        names = [p.name for p, _, _ in net.unique_params()]
        assert len(names) == len(set(names))
        assert len([n for n in names if "left" in n]) == 2
        assert not any("right" in n for n in names)

    def test_shared_gradients_accumulate_from_both_branches(self):
        net = self._shared_net()
        rng = RNG(2)
        batch = {
            "x1": rng.normal(size=(2, 3)).astype(np.float32),
            "x2": np.zeros((2, 3), dtype=np.float32),
            "label": np.array([0.0, 1.0], dtype=np.float32),
        }
        net.forward(batch)
        net.backward()
        g_both = net.layer("left").params[1].diff.copy()  # bias sees both
        assert np.abs(g_both).sum() > 0

    def test_mismatched_share_shapes_rejected(self):
        with pytest.raises(NetworkError, match="shape mismatch"):
            Net(
                "bad",
                [
                    LayerDef(InnerProductLayer("a", 4), ["x"], ["a"],
                             param_key="w"),
                    LayerDef(InnerProductLayer("b", 5), ["a"], ["b"],
                             param_key="w"),
                ],
                input_shapes={"x": (1, 3)},
            )


class TestModes:
    def test_set_mode_propagates(self):
        from repro.nn.layers import DropoutLayer
        net = Net(
            "drop",
            [
                LayerDef(DropoutLayer("d", 0.5), ["data"], ["d"]),
                LayerDef(InnerProductLayer("ip", 2), ["d"], ["ip"]),
                LayerDef(SoftmaxWithLossLayer("loss"), ["ip", "label"],
                         ["loss"]),
            ],
            input_shapes={"data": (1, 4), "label": (1,)},
        )
        net.set_mode(False)
        assert net.layer("d").train_mode is False
        net.set_mode(True)
        assert net.layer("d").train_mode is True

    def test_num_learnable(self):
        net = tiny_net()
        assert net.num_learnable() == (5 * 8 + 8) + (8 * 3 + 3)
