"""Tests for the resource tracker (kernel profiler + kernel parser)."""

import pytest

from repro.core.resource_tracker import KernelParser, ResourceTracker
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device
from repro.kernels.ir import KernelChain, LayerWork
from repro.nn.zoo.table5 import SIAMESE_CONVS
from repro.runtime.lowering import lower_conv_forward
from tests.conftest import small_kernel


def sample_work(samples=4, layer="conv1"):
    chains = tuple(
        KernelChain((
            small_kernel("im2col", blocks=2, threads=512, regs=33,
                         tag=f"s{i}"),
            small_kernel("sgemm", blocks=9, threads=256, smem=4096,
                         regs=63, tag=f"s{i}"),
        ))
        for i in range(samples)
    )
    return LayerWork(layer=layer, phase="forward", parallel_chains=chains)


class TestKernelParser:
    def test_merges_instances_by_signature(self, p100):
        from repro.cupti import CuptiProfiler
        prof = CuptiProfiler(p100)
        prof.start()
        for i in range(5):
            p100.launch(small_kernel("sgemm", tag=f"s{i}"))
        p100.synchronize()
        records = prof.stop().records
        profiles = KernelParser.parse(records)
        assert len(profiles) == 1
        assert profiles[0].instances == 5
        assert profiles[0].duration_us > 0

    def test_distinguishes_configs(self, p100):
        from repro.cupti import CuptiProfiler
        prof = CuptiProfiler(p100)
        prof.start()
        p100.launch(small_kernel("sgemm", blocks=2))
        p100.launch(small_kernel("sgemm", blocks=8))
        p100.synchronize()
        profiles = KernelParser.parse(prof.stop().records)
        assert len(profiles) == 2

    def test_profile_fields(self, p100):
        from repro.cupti import CuptiProfiler
        prof = CuptiProfiler(p100)
        prof.start()
        p100.launch(small_kernel("k", blocks=7, threads=128, smem=2048,
                                 regs=40))
        p100.synchronize()
        (profile,) = KernelParser.parse(prof.stop().records)
        assert profile.num_blocks == 7          # #beta_Ki
        assert profile.threads_per_block == 128  # tau_Ki
        assert profile.shared_mem_per_block == 2048  # sm_Ki
        assert profile.registers_per_thread == 40

    def test_order_preserved(self, p100):
        from repro.cupti import CuptiProfiler
        prof = CuptiProfiler(p100)
        prof.start()
        p100.launch(small_kernel("a", blocks=1))
        p100.launch(small_kernel("b", blocks=2))
        p100.synchronize()
        profiles = KernelParser.parse(prof.stop().records)
        assert [p.name for p in profiles] == ["a", "b"]


class TestResourceTracker:
    def test_profile_layer_runs_and_caches(self, p100):
        tracker = ResourceTracker()
        work = sample_work()
        assert not tracker.has(p100, work.key)
        profile = tracker.profile_layer(p100, work)
        assert tracker.has(p100, work.key)
        assert tracker.get(p100, work.key) is profile
        assert [k.name for k in profile.kernels] == ["im2col", "sgemm"]
        assert all(k.instances == 4 for k in profile.kernels)
        # the kernels really executed
        assert p100.kernels_completed == 8

    def test_repeat_profile_is_cached(self, p100):
        tracker = ResourceTracker()
        work = sample_work()
        a = tracker.profile_layer(p100, work)
        launched = p100.kernels_launched
        b = tracker.profile_layer(p100, work)
        assert a is b
        assert p100.kernels_launched == launched  # no new work

    def test_per_device_caching(self, p100, k40c):
        tracker = ResourceTracker()
        work = sample_work()
        tracker.profile_layer(p100, work)
        assert not tracker.has(k40c, work.key)
        tracker.profile_layer(k40c, work)
        assert tracker.layers_profiled == 2

    def test_durations_differ_across_devices(self, p100, k40c):
        tracker = ResourceTracker()
        cfg = SIAMESE_CONVS[1]
        work = lower_conv_forward(cfg)
        fast = tracker.profile_layer(p100, work)
        slow = tracker.profile_layer(k40c, work)
        t_fast = sum(k.duration_us for k in fast.kernels)
        t_slow = sum(k.duration_us for k in slow.kernels)
        assert t_slow > t_fast

    def test_profiling_time_accumulates(self, p100):
        tracker = ResourceTracker()
        tracker.profile_layer(p100, sample_work(layer="a"))
        t1 = tracker.total_profiling_time_us
        tracker.profile_layer(p100, sample_work(layer="b"))
        assert tracker.total_profiling_time_us > t1

    def test_empty_work_rejected(self, p100):
        tracker = ResourceTracker()
        with pytest.raises(SchedulingError):
            tracker.profile_layer(
                p100, LayerWork(layer="empty", phase="forward")
            )

    def test_invalidate(self, p100):
        tracker = ResourceTracker()
        work = sample_work()
        tracker.profile_layer(p100, work)
        tracker.invalidate(p100, work.key)
        assert not tracker.has(p100, work.key)

    def test_clear(self, p100):
        tracker = ResourceTracker()
        tracker.profile_layer(p100, sample_work())
        tracker.clear()
        assert tracker.layers_profiled == 0
        assert tracker.total_profiling_time_us == 0.0
