"""Tests for the Layer base class and LayerDef plumbing."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layer import Layer, LayerDef
from repro.nn.layers import InnerProductLayer, ReLULayer

RNG = lambda s=0: np.random.default_rng(s)


class TestLayerBase:
    def test_double_setup_rejected(self):
        layer = ReLULayer("r")
        layer.setup([(1, 4)], RNG())
        with pytest.raises(NetworkError, match="twice"):
            layer.setup([(1, 4)], RNG())

    def test_multipliers_default_to_ones(self):
        class TwoParam(Layer):
            def _setup(self, bottom_shapes, rng):
                from repro.nn.blob import Blob
                self.params = [Blob((2,)), Blob((3,))]
                return [tuple(bottom_shapes[0])]

        layer = TwoParam("p")
        layer.setup([(1, 4)], RNG())
        assert layer.lr_mult == [1.0, 1.0]
        assert layer.decay_mult == [1.0, 1.0]

    def test_has_params(self):
        ip = InnerProductLayer("ip", 3)
        ip.setup([(1, 4)], RNG())
        assert ip.has_params
        relu = ReLULayer("r")
        relu.setup([(1, 4)], RNG())
        assert not relu.has_params

    def test_zero_param_diffs(self):
        ip = InnerProductLayer("ip", 3)
        ip.setup([(1, 4)], RNG())
        ip.params[0].diff += 5.0
        ip.zero_param_diffs()
        assert not ip.params[0].diff.any()

    def test_is_loss_default_false(self):
        assert not ReLULayer("r").is_loss

    def test_repr_contains_name(self):
        assert "relu_x" in repr(ReLULayer("relu_x"))


class TestLayerDef:
    def test_name_delegates_to_layer(self):
        ld = LayerDef(ReLULayer("myrelu"), ["a"], ["b"])
        assert ld.name == "myrelu"

    def test_default_param_key_empty(self):
        ld = LayerDef(ReLULayer("r"), ["a"], ["b"])
        assert ld.param_key == ""
