"""Tests for dynamic batching and the per-shape lowered-work cache."""

import pytest

from repro.errors import ReproError
from repro.nn.zoo import build_lenet
from repro.serve.batcher import DynamicBatcher, LoweredNetCache, default_buckets
from repro.serve.queue import BoundedQueue
from repro.serve.request import InferenceRequest


def req(rid, arrival=0.0, slo=1_000.0):
    return InferenceRequest(rid, arrival, arrival + slo)


class TestDefaultBuckets:
    def test_powers_of_two_plus_max(self):
        assert default_buckets(1) == (1,)
        assert default_buckets(8) == (1, 2, 4, 8)
        assert default_buckets(12) == (1, 2, 4, 8, 12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            default_buckets(0)


class TestLoweredNetCache:
    def test_lowers_each_bucket_once(self):
        cache = LoweredNetCache(build_lenet, (1, 2, 4), seed=0)
        b1, works1 = cache.works_for(3)
        b2, works2 = cache.works_for(4)
        assert b1 == b2 == 4
        assert works1 is works2            # replayed, not rebuilt
        assert cache.lowerings == 1
        cache.works_for(1)
        assert cache.lowerings == 2

    def test_bucket_rounding(self):
        cache = LoweredNetCache(build_lenet, (1, 2, 4, 8))
        assert cache.bucket_for(1) == 1
        assert cache.bucket_for(3) == 4
        assert cache.bucket_for(8) == 8
        with pytest.raises(ReproError, match="exceeds"):
            cache.bucket_for(9)
        with pytest.raises(ReproError):
            cache.bucket_for(0)

    def test_works_relabeled_per_shape(self):
        cache = LoweredNetCache(build_lenet, (2, 4))
        _, w2 = cache.works_for(2)
        _, w4 = cache.works_for(3)
        assert all(w.layer.endswith("@b2") for w in w2)
        assert all(w.layer.endswith("@b4") for w in w4)
        # Distinct shapes never share tracker/analyzer cache keys.
        assert {w.key for w in w2}.isdisjoint(w.key for w in w4)

    def test_forward_only_inference_works(self):
        cache = LoweredNetCache(build_lenet, (2,))
        _, works = cache.works_for(2)
        assert works and all(w.phase == "forward" for w in works)

    def test_requires_buckets(self):
        with pytest.raises(ReproError, match="at least one"):
            LoweredNetCache(build_lenet, ())
        with pytest.raises(ReproError, match=">= 1"):
            LoweredNetCache(build_lenet, (0, 2))


class TestDynamicBatcher:
    def test_fires_when_full(self):
        b = DynamicBatcher(max_batch=2, max_wait_us=1_000.0)
        q = BoundedQueue(capacity=8)
        q.offer(req(0), now=0.0)
        assert not b.ready(q, now=0.0, more_arrivals=True)
        q.offer(req(1), now=1.0)
        assert b.ready(q, now=1.0, more_arrivals=True)

    def test_fires_on_head_timeout(self):
        b = DynamicBatcher(max_batch=8, max_wait_us=100.0)
        q = BoundedQueue(capacity=8)
        q.offer(req(0), now=50.0)
        assert b.fire_time_us(q) == 150.0
        assert not b.ready(q, now=149.0, more_arrivals=True)
        assert b.ready(q, now=150.0, more_arrivals=True)

    def test_fires_partial_when_trace_exhausted(self):
        b = DynamicBatcher(max_batch=8, max_wait_us=10_000.0)
        q = BoundedQueue(capacity=8)
        q.offer(req(0), now=0.0)
        assert b.ready(q, now=0.0, more_arrivals=False)

    def test_never_fires_empty(self):
        b = DynamicBatcher(max_batch=2, max_wait_us=0.0)
        q = BoundedQueue(capacity=8)
        assert not b.ready(q, now=1e9, more_arrivals=False)
        assert b.fire_time_us(q) is None
        with pytest.raises(ReproError, match="empty queue"):
            b.form(q)

    def test_form_counts(self):
        b = DynamicBatcher(max_batch=2, max_wait_us=0.0)
        q = BoundedQueue(capacity=8)
        for i in range(3):
            q.offer(req(i), now=float(i))
        assert [r.rid for r in b.form(q)] == [0, 1]
        assert [r.rid for r in b.form(q)] == [2]
        assert b.batches_formed == 2 and b.requests_batched == 3

    def test_validation(self):
        with pytest.raises(ReproError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ReproError):
            DynamicBatcher(max_wait_us=-1.0)
