"""Executing certified plans: eager dispatch and graph-launch replay."""

import pytest

from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.interop.certify import certify, structural_effects
from repro.interop.execute import compile_plan, replay_plan, run_plan
from repro.interop.planner import build_plan
from repro.interop.workloads import inception_unit
from repro.serve.engine import resolve_device

P100 = resolve_device("p100")
STREAMS = 4


@pytest.fixture(scope="module")
def unit():
    return inception_unit("5a", batch=2)


@pytest.fixture(scope="module")
def effects(unit):
    return structural_effects(unit.graph, in_place=unit.in_place)


def certified(unit, effects, policy):
    plan = build_plan(unit.graph, policy, STREAMS, device=P100)
    return certify(unit.graph, plan, effects=effects, device=P100).plan


def pool(gpu, n=STREAMS):
    return [gpu.create_stream(name=f"t.s{i}") for i in range(n)]


class TestCertificationGate:
    def test_run_plan_refuses_uncertified(self, unit):
        plan = build_plan(unit.graph, "round-robin", STREAMS)
        gpu = GPU(P100)
        with pytest.raises(SchedulingError, match="uncertified"):
            run_plan(gpu, unit.graph, plan, pool(gpu))

    def test_compile_plan_refuses_uncertified(self, unit):
        plan = build_plan(unit.graph, "opara", STREAMS, device=P100)
        with pytest.raises(SchedulingError, match="uncertified"):
            compile_plan(unit.graph, plan)

    def test_replay_plan_refuses_uncertified(self, unit):
        plan = build_plan(unit.graph, "layer-serial", 1)
        with pytest.raises(SchedulingError, match="uncertified"):
            replay_plan(GPU(P100), unit.graph, plan)


class TestEager:
    def test_pool_must_cover_used_slots(self, unit, effects):
        plan = certified(unit, effects, "round-robin")
        gpu = GPU(P100)
        with pytest.raises(SchedulingError, match="stream slots"):
            run_plan(gpu, unit.graph, plan, pool(gpu, 2))

    def test_counts_match_plan_structure(self, unit, effects):
        plan = certified(unit, effects, "opara")
        gpu = GPU(P100)
        run = run_plan(gpu, unit.graph, plan, pool(gpu))
        assert run.mode == "eager"
        assert run.launches == len(unit.graph)
        assert run.waits == plan.cross_edges(unit.graph)
        assert run.records <= run.waits
        assert run.elapsed_us > 0
        assert run.launch_overhead_us > 0

    def test_opara_beats_layer_serial(self, unit, effects):
        times = {}
        for policy in ("layer-serial", "opara"):
            plan = certified(unit, effects, policy)
            gpu = GPU(P100)
            times[policy] = run_plan(gpu, unit.graph, plan,
                                     pool(gpu)).elapsed_us
        assert times["opara"] < times["layer-serial"]


class TestGraphLaunch:
    def test_compiled_graph_shape(self, unit, effects):
        plan = certified(unit, effects, "opara")
        compiled = compile_plan(unit.graph, plan, effects=effects)
        assert compiled.launches == len(unit.graph)
        assert compiled.nodes[-1].kind == "barrier"
        streams = {n.stream for n in compiled.nodes if n.kind == "launch"}
        assert 0 not in streams        # never the default stream

    def test_replay_runs_admitted_graph(self, unit, effects):
        plan = certified(unit, effects, "opara")
        run = replay_plan(GPU(P100), unit.graph, plan, effects=effects)
        assert run.mode == "graph"
        assert run.launches == len(unit.graph)
        assert run.elapsed_us > 0

    def test_replay_amortizes_launch_overhead(self, unit, effects):
        plan = certified(unit, effects, "opara")
        gpu_eager, gpu_graph = GPU(P100), GPU(P100)
        eager = run_plan(gpu_eager, unit.graph, plan, pool(gpu_eager))
        graph = replay_plan(gpu_graph, unit.graph, plan, effects=effects)
        assert graph.launch_overhead_us < eager.launch_overhead_us

    def test_fallback_plan_is_executable(self, unit, effects):
        # a poisoned opara request yields a certified chain-affine plan
        # that both execution paths accept
        requested = build_plan(unit.graph, "opara", STREAMS, device=P100)
        cert = certify(unit.graph, requested, effects=effects,
                       drop_waits=True, device=P100)
        assert cert.fell_back
        gpu = GPU(P100)
        assert run_plan(gpu, unit.graph, cert.plan,
                        pool(gpu)).elapsed_us > 0
        assert replay_plan(GPU(P100), unit.graph, cert.plan,
                           effects=effects).elapsed_us > 0
