"""Tests for the time-predictive analyzer."""

import math

import pytest

from repro.core import GLP4NN
from repro.core.predictive_model import PredictiveModel, predictive_analyze_fn
from repro.core.resource_tracker import KernelProfile
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import lower_conv_forward


def profile(name="k", blocks=4, threads=256, smem=0, duration=30.0,
            instances=100):
    return KernelProfile(
        name=name, grid=(blocks, 1, 1), block=(threads, 1, 1),
        registers_per_thread=32, shared_mem_per_block=smem,
        duration_us=duration, instances=instances,
    )


class TestPrediction:
    def test_execute_term_shrinks_with_streams(self):
        m = PredictiveModel(get_device("P100"))
        profiles = [profile(duration=50.0)]
        t1 = m.predict(profiles, 1)
        t4 = m.predict(profiles, 4)
        assert t4.execute_us < t1.execute_us
        assert t4.execute_us == pytest.approx(t1.execute_us / 4, rel=0.05)

    def test_launch_term_grows_with_multistream(self):
        m = PredictiveModel(get_device("P100"))
        profiles = [profile()]
        assert m.predict(profiles, 4).launch_us > m.predict(profiles, 1).launch_us

    def test_total_is_max_of_bounds(self):
        m = PredictiveModel(get_device("P100"))
        p = m.predict([profile()], 2)
        assert p.total_us == max(p.launch_us, p.execute_us)


class TestSolve:
    def test_short_kernels_get_lean_pool(self):
        """Launch-bound layers cannot benefit: the predictor picks 1."""
        m = PredictiveModel(get_device("P100"))
        d = m.solve("x/forward", [profile(duration=4.0)])
        assert d.c_out == 1

    def test_long_kernels_get_wide_pool(self):
        m = PredictiveModel(get_device("P100"))
        d = m.solve("x/forward", [profile(duration=500.0)])
        assert d.c_out >= 4

    def test_respects_residency_cap(self):
        m = PredictiveModel(get_device("P100"))
        # 1024-thread blocks: at most 2 chains fit per SM budget
        d = m.solve("x/forward", [profile(threads=1024, duration=1e4)])
        assert d.c_out <= 2

    def test_empty_profiles_rejected(self):
        with pytest.raises(SchedulingError):
            PredictiveModel(get_device("P100")).solve("x", [])

    def test_analysis_time_recorded(self):
        d = PredictiveModel(get_device("P100")).solve("x", [profile()])
        assert d.analysis_time_us > 0


class TestAsAnalyzeFn:
    def _steady(self, executor, work):
        executor.run(work)
        return executor.run(work).elapsed_us

    def test_plugs_into_framework(self):
        gpu = GPU(get_device("P100"), record_timeline=False)
        glp = GLP4NN([gpu], analyze_fn=predictive_analyze_fn(gpu.props))
        work = lower_conv_forward(CIFAR10_CONVS[2])
        glp.run_layer(gpu, work)
        run = glp.run_layer(gpu, work)
        assert run.decision is not None
        assert math.isnan(run.decision.occupancy_ratio)
        assert run.streams_used >= 2

    def test_competitive_with_occupancy_model(self):
        """Both analyzers must land near the naive baseline's optimum."""
        for cfg in (CIFAR10_CONVS[2], SIAMESE_CONVS[1]):
            work = lower_conv_forward(cfg)
            naive = NaiveExecutor(GPU(get_device("P100"),
                                      record_timeline=False))
            t_naive = self._steady(naive, work)

            occ = GLP4NNExecutor(GPU(get_device("P100"),
                                     record_timeline=False))
            t_occ = self._steady(occ, work)

            gpu = GPU(get_device("P100"), record_timeline=False)
            glp = GLP4NN([gpu], analyze_fn=predictive_analyze_fn(gpu.props))
            pred = GLP4NNExecutor(gpu, framework=glp)
            t_pred = self._steady(pred, work)

            assert t_pred <= t_naive * 1.05
            assert t_pred <= t_occ * 1.5   # same ballpark as the MILP
