"""Seeded fault injection: the analyzer must catch every planted bug.

``repro.analyze.inject`` plants wait cycles (for the deadlock detector)
and redundant waits (for the sync elider) into clean programs; the
acceptance bar for the sweep is 100% detection.  These tests pin the
mutation shapes and the sweep bookkeeping on small hand-built programs
so failures localize; the full-producer sweep runs via
``python -m repro analyze all --cross-check`` in CI.
"""

import pytest

from repro.analyze.deadlock import detect_deadlocks
from repro.analyze.elide import minimize
from repro.analyze.inject import (cross_check, inject_redundant_wait,
                                  inject_wait_cycle)
from repro.analyze.program import DispatchProgram, RecordEvent, WaitEvent
from repro.errors import AnalyzeError


def _two_stream_program() -> DispatchProgram:
    """Clean: a live record/wait edge ordering stream 2 after stream 1."""
    prog = DispatchProgram("inject-two-stream")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.wait(event=1, stream=2)
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    return prog


def _barrier_only_program() -> DispatchProgram:
    """Clean: no events at all, ordering comes from the barrier."""
    prog = DispatchProgram("inject-barrier")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.sync()
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    return prog


def _single_stream_program() -> DispatchProgram:
    prog = DispatchProgram("inject-single")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.sync()
    return prog


def test_wait_cycle_crossed_pair_on_two_streams():
    prog = _two_stream_program()
    mutant, planted = inject_wait_cycle(prog, seed=0)
    assert planted["rule"] == "deadlock/cycle"
    assert len(mutant.ops) == len(prog.ops) + 4
    findings = detect_deadlocks(mutant)
    assert any(f.rule == "deadlock/cycle" and
               any(c.op_index == planted["wait_index"] for c in f.cycle)
               for f in findings)
    # the original stays untouched
    assert not detect_deadlocks(prog)


def test_wait_cycle_degenerates_to_self_wait_on_one_stream():
    mutant, planted = inject_wait_cycle(_single_stream_program(), seed=3)
    assert planted["rule"] == "deadlock/self-wait"
    assert len(mutant.ops) == len(_single_stream_program().ops) + 2
    findings = detect_deadlocks(mutant)
    assert any(f.rule == "deadlock/self-wait" for f in findings)


def test_redundant_wait_duplicates_a_live_wait():
    prog = _two_stream_program()
    mutant, planted = inject_redundant_wait(prog, seed=0)
    assert planted["kind"] == "duplicate-wait"
    dup = mutant.ops[planted["wait_index"]]
    assert isinstance(dup, WaitEvent) and dup.event == planted["event"]
    assert minimize(mutant).waits_removed == \
        minimize(prog).waits_removed + 1


def test_redundant_wait_spans_a_barrier_when_no_wait_exists():
    prog = _barrier_only_program()
    mutant, planted = inject_redundant_wait(prog, seed=0)
    assert planted["kind"] == "spurious-sync"
    assert any(isinstance(op, RecordEvent) and op.event == planted["event"]
               for op in mutant.ops)
    assert minimize(mutant).waits_removed == \
        minimize(prog).waits_removed + 1


def test_redundant_wait_refuses_when_nowhere_to_hide():
    prog = DispatchProgram("inject-bare")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    with pytest.raises(AnalyzeError, match="cannot plant"):
        inject_redundant_wait(prog, seed=0)


def test_cross_check_catches_every_plant():
    triples = [("t", "rr", _two_stream_program()),
               ("t", "rr", _barrier_only_program()),
               ("t", "rr", _single_stream_program())]
    report = cross_check(triples, seed=0, rounds=2)
    assert report.ok
    cf, cp = report.cycles_found
    assert (cf, cp) == (6, 6)          # 3 programs x 2 rounds
    wf, wp = report.waits_elided
    assert cf == cp and wf == wp and wp >= 4
    assert "PASS" in report.render()
    d = report.to_dict()
    assert d["cycles"]["found"] == d["cycles"]["planted"]
    assert d["redundant_waits"]["elided"] == d["redundant_waits"]["planted"]


def test_cross_check_counts_skipped_plant_sites():
    prog = DispatchProgram("inject-bare")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    report = cross_check([("t", "rr", prog)], seed=0, rounds=2)
    assert report.skipped == 2          # no redundant-wait site, both rounds
    assert report.ok                    # the cycle plants were still caught


def test_cross_check_rejects_unclean_input():
    prog = DispatchProgram("inject-dirty")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.wait(event=9, stream=1)
    prog.record(event=9, stream=1)     # self-wait: not a clean producer
    with pytest.raises(AnalyzeError, match="not clean"):
        cross_check([("t", "rr", prog)], seed=0)


def test_mutants_are_deterministic_per_seed():
    prog = _two_stream_program()
    m1, p1 = inject_wait_cycle(prog, seed=7)
    m2, p2 = inject_wait_cycle(prog, seed=7)
    assert p1 == p2 and m1.ops == m2.ops
    r1, q1 = inject_redundant_wait(prog, seed=7)
    r2, q2 = inject_redundant_wait(prog, seed=7)
    assert q1 == q2 and r1.ops == r2.ops
