"""The dynamic elision differential: minimized plans replay identically.

``repro.verify.elision_equiv`` is the dynamic side of the sync-elision
certificate: train with and without graph-mode minimization and demand
bit-identical fingerprints, then replay each minimized interop plan and
re-check every happens-before-ordered launch pair of the *original*
closure on the minimized timeline.  Kept small here — one seed, one
inception unit — the full sweep runs via ``verify --only elision``.
"""

import pytest

from repro.verify.elision_equiv import (ElisionEquivReport,
                                        ElisionPlanOutcome,
                                        ElisionSeedOutcome, verify_elision)


@pytest.fixture(scope="module")
def report() -> ElisionEquivReport:
    return verify_elision(network="lenet", device="p100", seeds=(0,),
                          iterations=4, batch=4, units=("5b",),
                          policies=("round-robin",), interop_batch=2)


def test_report_passes_and_is_exercised(report):
    assert report.ok
    assert report.exercised       # at least one plan actually shrank
    assert report.seeds and report.plans


def test_training_seeds_stay_bit_identical(report):
    for seed in report.seeds:
        assert seed.ok and seed.error == ""
        assert seed.divergence is None
        assert seed.replays >= 1


def test_minimized_plan_preserves_original_ordering(report):
    plan = next(p for p in report.plans if p.waits_removed > 0)
    assert plan.ok and plan.certificate
    assert plan.violations == 0
    assert plan.pairs_checked > 0     # hb pairs re-verified dynamically
    assert plan.launches > 0


def test_report_dict_shape(report):
    doc = report.to_dict()
    assert doc["ok"] is True and doc["exercised"] is True
    assert doc["network"] == "lenet"
    assert len(doc["seeds"]) == 1
    assert all("waits_removed" in p for p in doc["plans"])


def test_render_mentions_verdict(report):
    text = report.render()
    assert "elision-equiv" in text
    assert "OK" in text and "re-verified" in text


def test_unexercised_report_is_not_ok():
    """A sweep where the elider never fires must not vacuously pass."""
    empty = ElisionEquivReport(network="lenet", device="p100", batch=4,
                               iterations=2)
    empty.seeds.append(ElisionSeedOutcome(seed=0, iterations=2, replays=1,
                                          waits_elided=0,
                                          records_elided=0))
    empty.plans.append(ElisionPlanOutcome(unit="5b", policy="layer-serial",
                                          waits_removed=0,
                                          records_removed=0,
                                          certificate=True))
    assert not empty.exercised and not empty.ok


def test_verify_report_includes_elision_part():
    from repro.verify.report import VerifyReport
    vr = VerifyReport(network="lenet", device="p100", seed=0)
    vr.elision = ElisionEquivReport(network="lenet", device="p100",
                                    batch=4, iterations=4)
    assert not vr.ok                  # vacuous elision report fails
    assert "elision" in vr.to_dict()
