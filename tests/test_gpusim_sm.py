"""Tests for the SM residency + processor-sharing model."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.device import get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.sm import SM, block_demand


def lc(threads=256, smem=0, regs=32):
    return LaunchConfig(grid=(1, 1, 1), block=(threads, 1, 1),
                        shared_mem_dynamic=smem, registers_per_thread=regs)


@pytest.fixture
def sm():
    return SM(get_device("P100"), 0)


class TestBlockDemand:
    def test_saturating_block(self):
        dev = get_device("P100")  # saturation_warps = 8
        assert block_demand(dev, lc(threads=256)) == 1.0

    def test_small_block(self):
        dev = get_device("P100")
        assert block_demand(dev, lc(threads=64)) == pytest.approx(2 / 8)

    def test_demand_capped_at_one(self):
        dev = get_device("P100")
        assert block_demand(dev, lc(threads=1024)) == 1.0


class TestResidency:
    def test_fit_by_threads(self, sm):
        assert sm.fit_count(lc(threads=512)) == 4

    def test_fit_by_smem(self, sm):
        assert sm.fit_count(lc(threads=64, smem=16 * 1024)) == 4

    def test_fit_by_registers(self, sm):
        assert sm.fit_count(lc(threads=256, regs=64)) == 4

    def test_fit_by_block_slots(self, sm):
        assert sm.fit_count(lc(threads=32, regs=4)) == 32

    def test_place_consumes_resources(self, sm):
        sm.place(0.0, "k", lc(threads=512), 2, 10.0)
        assert sm.free_threads == 2048 - 1024
        assert sm.fit_count(lc(threads=512)) == 2

    def test_place_too_many_raises(self, sm):
        with pytest.raises(SimulationError, match="does not fit"):
            sm.place(0.0, "k", lc(threads=512), 5, 10.0)

    def test_empty_cohort_rejected(self, sm):
        with pytest.raises(SimulationError):
            sm.place(0.0, "k", lc(), 0, 10.0)

    def test_release_on_completion(self, sm):
        sm.place(0.0, "k", lc(threads=512), 2, 10.0)
        done = sm.pop_finished(100.0)
        assert len(done) == 1
        assert sm.free_threads == 2048

    def test_version_bumps_on_change(self, sm):
        v0 = sm.version
        sm.place(0.0, "k", lc(), 1, 5.0)
        assert sm.version == v0 + 1
        sm.pop_finished(100.0)
        assert sm.version == v0 + 2


class TestProcessorSharing:
    def test_solo_saturating_block_runs_at_work_rate(self, sm):
        sm.place(0.0, "k", lc(threads=256), 1, 10.0)
        assert sm.next_completion(0.0) == pytest.approx(10.0)

    def test_solo_small_block_is_latency_bound(self, sm):
        # 2 warps of 8 needed to saturate: runs at 1/4 throughput
        sm.place(0.0, "k", lc(threads=64), 1, 10.0)
        assert sm.next_completion(0.0) == pytest.approx(40.0)

    def test_undersaturated_blocks_overlap_perfectly(self, sm):
        # two quarter-demand blocks: both finish at their solo time
        sm.place(0.0, "a", lc(threads=64), 1, 10.0)
        sm.place(0.0, "b", lc(threads=64), 1, 10.0)
        assert sm.next_completion(0.0) == pytest.approx(40.0)

    def test_oversaturated_blocks_slow_down(self, sm):
        # four full-demand blocks share the SM: 4x slower each
        sm.place(0.0, "k", lc(threads=256), 4, 10.0)
        assert sm.next_completion(0.0) == pytest.approx(40.0)

    def test_progress_accounting_across_events(self, sm):
        sm.place(0.0, "a", lc(threads=256), 1, 10.0)
        sm.advance(5.0)  # half done
        sm.place(5.0, "b", lc(threads=256), 1, 10.0)
        # now sharing: each at rate 1/2; a needs 5 more work -> 10 more us
        assert sm.next_completion(5.0) == pytest.approx(15.0)

    def test_pop_finished_returns_only_done(self, sm):
        sm.place(0.0, "a", lc(threads=256), 1, 10.0)
        sm.place(0.0, "b", lc(threads=256), 1, 30.0)
        done = sm.pop_finished(20.0)  # shared rate 1/2: a done at t=20
        assert [c.kernel_handle for c in done] == ["a"]
        assert len(sm.resident) == 1

    def test_time_cannot_go_backwards(self, sm):
        sm.advance(10.0)
        with pytest.raises(SimulationError, match="backwards"):
            sm.advance(5.0)

    def test_zero_work_clamped(self, sm):
        sm.place(0.0, "k", lc(), 1, 0.0)
        t = sm.next_completion(0.0)
        assert t is not None and t > 0.0

    def test_empty_sm_has_no_completion(self, sm):
        assert sm.next_completion(0.0) is None

    def test_occupancy_now(self, sm):
        assert sm.occupancy_now == 0.0
        sm.place(0.0, "k", lc(threads=1024), 2, 10.0)
        assert sm.occupancy_now == pytest.approx(64 / 64)

    def test_utilization_integrals_accumulate(self, sm):
        sm.place(0.0, "k", lc(threads=256), 1, 10.0)
        sm.pop_finished(10.0)
        assert sm.busy_integral_us == pytest.approx(10.0)
        assert sm.warp_integral == pytest.approx(80.0)  # 8 warps x 10 us
