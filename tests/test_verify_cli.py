"""The ``python -m repro verify`` entry point: exit codes and artifacts."""

from __future__ import annotations

import json

from repro.cli import main
from repro.verify.schedule import ScheduleRunner, identity_plan, works_for
from repro.verify.witness import ScheduleWitness


def test_verify_differential_only(tmp_path, capsys) -> None:
    report_file = tmp_path / "report.json"
    rc = main(["verify", "--network", "lenet", "--only", "differential",
               "--iterations", "1", "--batch", "4",
               "--report", str(report_file)])
    assert rc == 0
    assert "verify: PASS" in capsys.readouterr().out
    doc = json.loads(report_file.read_text())
    assert doc["ok"] is True
    assert doc["differential"]["ok"] is True
    assert doc["schedule"] is None and doc["faults"] is None


def test_verify_json_output(capsys) -> None:
    rc = main(["verify", "--network", "lenet", "--only", "differential",
               "--iterations", "1", "--batch", "4", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["network"] == "lenet" and doc["ok"] is True


def test_verify_report_written_even_on_failure(tmp_path, capsys,
                                               monkeypatch) -> None:
    def _spray(self, gpu, chain, pool, slot):
        return [gpu.launch(spec, stream=pool[(slot + j) % len(pool)])
                for j, spec in enumerate(chain)]

    monkeypatch.setattr(ScheduleRunner, "_launch_chain", _spray)
    monkeypatch.chdir(tmp_path)   # witness default path lands here
    report_file = tmp_path / "report.json"
    rc = main(["verify", "--network", "lenet", "--only", "schedule",
               "--rounds", "2", "--batch", "4",
               "--report", str(report_file)])
    assert rc == 1
    assert "FAILED" in capsys.readouterr().out
    # The CI artifact exists despite the failing exit status, and names
    # the witness file that was saved alongside it.
    doc = json.loads(report_file.read_text())
    assert doc["ok"] is False
    witness_path = doc["schedule"]["failure"]["witness_path"]
    assert (tmp_path / witness_path).exists()

    # Replaying the witness through the CLI reproduces -> exit 1 ...
    rc = main(["verify", "--replay", witness_path])
    assert rc == 1
    # ... and stops reproducing once the planted bug is removed.
    monkeypatch.undo()
    monkeypatch.chdir(tmp_path)
    rc = main(["verify", "--replay", str(tmp_path / witness_path)])
    assert rc == 0


def test_verify_replay_clean_witness_and_bad_file(tmp_path,
                                                  capsys) -> None:
    works = works_for("lenet", 2, 0)
    witness = ScheduleWitness(plan=identity_plan(works, "lenet", "p100",
                                                 2, 0))
    path = tmp_path / "clean.json"
    witness.save(path)
    assert main(["verify", "--replay", str(path)]) == 0
    assert "did not reproduce" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["verify", "--replay", str(bad)]) == 2
