"""Graph-mode lifecycle: warmup, capture, admission, replay, fallback."""

from __future__ import annotations

import pytest

from repro.errors import GraphValidationError
from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.graphs.admission import admit, validate_graph
from repro.graphs.capture import (
    KernelEffects,
    capture_works,
    effects_from_net,
    poisoned_effects,
)
from repro.graphs.compiled import works_fingerprint
from repro.nn.zoo import build_lenet
from repro.runtime.executor import FixedStreamExecutor, GLP4NNExecutor
from repro.runtime.lowering import lower_net
from repro.runtime.session import TrainingSession


def _setup(p100, **graph_kw):
    net = build_lenet(batch=4, seed=0)
    ex = GLP4NNExecutor(p100)
    runtime = ex.enable_graph_mode(net=net, network="lenet", **graph_kw)
    works = lower_net(net, "forward")
    return net, ex, runtime, works


class TestLifecycle:
    def test_modes_progress_eager_capture_replay(self, p100):
        _, ex, runtime, works = _setup(p100)
        for _ in range(5):
            ex.run_pass(works)
        assert (runtime.modes_for(works, p100.props.name)
                == ["eager", "capture", "replay", "replay", "replay"])
        s = runtime.stats
        assert (s.eager_passes, s.captures, s.replays) == (1, 1, 3)
        assert s.capture_misses == s.validation_rejects == 0
        assert p100.graphs_launched == 3

    def test_admitted_graph_is_hazard_free_and_cacheable(self, p100):
        _, ex, runtime, works = _setup(p100)
        for _ in range(2):
            ex.run_pass(works)
        key = works_fingerprint(list(works), p100.props.name)
        graph = runtime.admitted[key]
        assert validate_graph(graph).ok
        assert graph.launches == sum(w.num_kernels for w in works)

    def test_seeded_cache_hit_skips_capture_but_not_admission(self, p100):
        net, ex, runtime, works = _setup(p100)
        for _ in range(2):
            ex.run_pass(works)
        key = works_fingerprint(list(works), p100.props.name)
        # Second session, seeded with the first session's graph.
        from repro.gpusim import GPU, get_device
        gpu2 = GPU(get_device("P100"))
        ex2 = GLP4NNExecutor(gpu2)
        rt2 = ex2.enable_graph_mode(net=net, network="lenet",
                                    graphs={key: runtime.admitted[key]})
        for _ in range(3):
            ex2.run_pass(works)
        assert rt2.modes_for(works, gpu2.props.name) == ["replay"] * 3
        assert rt2.stats.captures == 0 and rt2.stats.replays == 3
        assert key in rt2.admitted       # re-validated, then admitted

    def test_different_works_tracked_independently(self, p100):
        net, ex, runtime, _ = _setup(p100)
        fwd = lower_net(net, "forward")
        bwd = lower_net(net, "backward")
        for _ in range(3):
            ex.run_pass(fwd)
            ex.run_pass(bwd)
        assert runtime.modes_for(fwd, p100.props.name)[-1] == "replay"
        assert runtime.modes_for(bwd, p100.props.name)[-1] == "replay"
        assert len(runtime.admitted) == 2


class TestFallbacks:
    def test_validation_rejection_pins_works_to_eager(self, p100):
        _, ex, runtime, works = _setup(p100, effects_fn=poisoned_effects)
        for _ in range(4):
            ex.run_pass(works)
        modes = runtime.modes_for(works, p100.props.name)
        assert modes == ["eager", "capture", "eager", "eager"]
        assert runtime.stats.validation_rejects == 1
        assert runtime.stats.replays == 0
        (reason,) = runtime.stats.rejected.values()
        assert "validation rejected" in reason and "WAW" in reason
        assert p100.graphs_launched == 0

    def test_capture_miss_pins_works_to_eager(self, p100):
        _, ex, runtime, works = _setup(
            p100, effects_fn=lambda works: KernelEffects())
        kernels = sum(w.num_kernels for w in works)
        k0 = p100.kernels_launched
        for _ in range(4):
            ex.run_pass(works)
        modes = runtime.modes_for(works, p100.props.name)
        assert modes == ["eager", "eager", "eager", "eager"]
        assert runtime.stats.capture_misses == 1
        # Every pass dispatched eagerly — none were lost to the miss.
        assert p100.kernels_launched - k0 == 4 * kernels
        (reason,) = runtime.stats.rejected.values()
        assert "capture miss" in reason

    def test_graph_launch_fault_falls_back_for_one_pass_only(self, p100):
        _, ex, runtime, works = _setup(p100)
        plan = FaultPlan(
            (FaultSpec(site="graph_launch", key="graph.*", nth=2),),
            seed=0)
        with chaos_session(plan):
            for _ in range(5):
                ex.run_pass(works)
        modes = runtime.modes_for(works, p100.props.name)
        assert modes == ["eager", "capture", "replay", "fallback",
                         "replay"]
        assert runtime.stats.launch_fallbacks == 1
        assert runtime.stats.replays == 2

    def test_admit_raises_with_verdict_for_direct_callers(self, p100):
        works = lower_net(build_lenet(batch=4, seed=0), "forward")
        ex = FixedStreamExecutor(p100, 2)
        graph = capture_works(ex, works, poisoned_effects(works),
                              name="bad")
        with pytest.raises(GraphValidationError, match="hazard") as ei:
            admit(graph)
        assert ei.value.verdict is not None
        assert not ei.value.verdict.ok


class TestNumericEquivalence:
    def test_graph_mode_session_trains_bit_identically(self, p100):
        from repro.gpusim import GPU, get_device
        from repro.gpusim.stream import reset_handle_ids
        from repro.verify.differential import make_batches
        from repro.verify.fingerprint import fingerprint_net, first_divergence

        def run(graph_mode: bool):
            reset_handle_ids()
            net = build_lenet(batch=4, seed=3)
            ex = GLP4NNExecutor(GPU(get_device("P100")))
            if graph_mode:
                ex.enable_graph_mode(net=net, network="lenet")
            session = TrainingSession(net, ex)
            fps = []
            for b in make_batches(net, 4, 3):
                session.run_iteration(b)
                fps.append(fingerprint_net(net))
            return fps

        for exp, act in zip(run(False), run(True)):
            assert first_divergence(exp, act) is None


class TestMinimize:
    """Certified sync-elision of admitted graphs (minimize=True)."""

    def _redundant_graph(self):
        from repro.graphs.compiled import CompiledGraph, GraphNode
        graph = CompiledGraph(name="redundant", network="t",
                              device="p100", pool_size=2, batch=1, seed=0)
        graph.nodes = [
            GraphNode(kind="launch", stream=1, kernel="k1",
                      writes=("x",), layer="l1", chain=0),
            GraphNode(kind="record", stream=1, event=1),
            GraphNode(kind="barrier"),    # already orders k1 before k2
            GraphNode(kind="wait", stream=2, event=1),
            GraphNode(kind="launch", stream=2, kernel="k2",
                      reads=("x",), writes=("y",), layer="l2", chain=1),
            GraphNode(kind="barrier"),
        ]
        return graph

    def test_minimize_graph_drops_redundant_nodes(self):
        from repro.graphs.minimize import minimize_graph
        graph = self._redundant_graph()
        mini, result = minimize_graph(graph)
        assert result.waits_removed == 1 and result.records_removed == 1
        assert mini is not graph
        assert len(mini) == len(graph) - 2
        assert mini.launches == graph.launches
        admit(mini)                       # the smaller program re-signs

    def test_minimize_graph_is_identity_when_nothing_removable(self):
        from repro.graphs.compiled import CompiledGraph, GraphNode
        from repro.graphs.minimize import minimize_graph
        graph = CompiledGraph(name="tight", network="t")
        graph.nodes = [
            GraphNode(kind="launch", stream=1, kernel="k1",
                      writes=("x",), chain=0),
            GraphNode(kind="record", stream=1, event=1),
            GraphNode(kind="wait", stream=2, event=1),   # load-bearing
            GraphNode(kind="launch", stream=2, kernel="k2",
                      reads=("x",), writes=("y",), chain=1),
            GraphNode(kind="barrier"),
        ]
        mini, result = minimize_graph(graph)
        assert mini is graph              # same object: caches undisturbed
        assert result.waits_removed == 0

    def test_runtime_elides_seeded_graph_with_spurious_sync(self, p100):
        from repro.gpusim import GPU, get_device
        from repro.graphs.compiled import GraphNode
        net, ex, runtime, works = _setup(p100)
        for _ in range(2):
            ex.run_pass(works)
        key = works_fingerprint(list(works), p100.props.name)
        graph = runtime.admitted[key]
        # plant a spurious record/wait pair across an existing barrier
        nodes = list(graph.nodes)
        barriers = [i for i, n in enumerate(nodes) if n.kind == "barrier"]
        at = next(i for i in barriers
                  if any(n.kind == "launch" and n.stream != 0
                         for n in nodes[:i])
                  and any(n.kind == "launch" and n.stream != 0
                          for n in nodes[i + 1:]))
        before = next(n for n in reversed(nodes[:at])
                      if n.kind == "launch" and n.stream != 0)
        after = next(n for n in nodes[at + 1:]
                     if n.kind == "launch" and n.stream != 0)
        event = 1 + max((n.event for n in nodes if n.event >= 0),
                        default=0)
        nodes.insert(at + 1, GraphNode(kind="wait", stream=after.stream,
                                       event=event))
        nodes.insert(at, GraphNode(kind="record", stream=before.stream,
                                   event=event))
        graph.nodes = nodes

        gpu2 = GPU(get_device("P100"))
        ex2 = GLP4NNExecutor(gpu2)
        rt2 = ex2.enable_graph_mode(net=net, network="lenet",
                                    graphs={key: graph}, minimize=True)
        for _ in range(3):
            ex2.run_pass(works)
        assert rt2.modes_for(works, gpu2.props.name) == ["replay"] * 3
        assert rt2.stats.waits_elided >= 1
        assert rt2.stats.records_elided >= 1
        # the admitted (replayed) graph is the minimized one
        assert len(rt2.admitted[key]) < len(graph)

    def test_minimized_graph_mode_trains_bit_identically(self, p100):
        from repro.gpusim import GPU, get_device
        from repro.gpusim.stream import reset_handle_ids
        from repro.verify.differential import make_batches
        from repro.verify.fingerprint import (fingerprint_net,
                                              first_divergence)

        def run(graph_mode: bool):
            reset_handle_ids()
            net = build_lenet(batch=4, seed=3)
            ex = GLP4NNExecutor(GPU(get_device("P100")))
            if graph_mode:
                ex.enable_graph_mode(net=net, network="lenet",
                                     minimize=True)
            session = TrainingSession(net, ex)
            fps = []
            for b in make_batches(net, 4, 3):
                session.run_iteration(b)
                fps.append(fingerprint_net(net))
            return fps

        for exp, act in zip(run(False), run(True)):
            assert first_divergence(exp, act) is None
