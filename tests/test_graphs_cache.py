"""Graph cache: round-trip persistence and quarantine-safe loading."""

from __future__ import annotations

import json

from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.graphs.cache import (
    FORMAT_VERSION,
    load_graphs_safe,
    save_graphs,
)
from repro.graphs.compiled import CompiledGraph, GraphNode

DEVICE = "P100"


def _graphs() -> dict[str, CompiledGraph]:
    return {
        "key-fwd": CompiledGraph(
            name="g.fwd", network="lenet", device=DEVICE,
            nodes=[GraphNode(kind="launch", kernel="a", stream=1),
                   GraphNode(kind="barrier")]),
        "key-bwd": CompiledGraph(
            name="g.bwd", network="lenet", device=DEVICE,
            nodes=[GraphNode(kind="launch", kernel="b", stream=2)]),
    }


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "graphs.json"
    assert save_graphs(_graphs(), path, DEVICE) == 2
    report = load_graphs_safe(path, DEVICE)
    assert report.ok and report.loaded == 2
    assert report.graphs["key-fwd"].name == "g.fwd"
    assert report.graphs["key-fwd"].launches == 1
    assert "2 graph(s) loaded" in report.describe()


def test_missing_file_quarantines_whole_document(tmp_path):
    report = load_graphs_safe(tmp_path / "nope.json", DEVICE)
    assert report.loaded == 0
    assert report.quarantined[0][0] == "*"
    assert "unreadable" in report.quarantined[0][1]


def test_corrupt_json_quarantined(tmp_path):
    path = tmp_path / "graphs.json"
    path.write_text("{not json", encoding="utf-8")
    report = load_graphs_safe(path, DEVICE)
    assert report.loaded == 0 and "corrupt JSON" in report.quarantined[0][1]


def test_wrong_format_version_quarantined(tmp_path):
    path = tmp_path / "graphs.json"
    save_graphs(_graphs(), path, DEVICE)
    doc = json.loads(path.read_text())
    doc["format"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(doc), encoding="utf-8")
    report = load_graphs_safe(path, DEVICE)
    assert report.loaded == 0
    assert "unsupported format" in report.quarantined[0][1]


def test_foreign_device_quarantined(tmp_path):
    path = tmp_path / "graphs.json"
    save_graphs(_graphs(), path, DEVICE)
    report = load_graphs_safe(path, "K40C")
    assert report.loaded == 0
    assert "recorded on" in report.quarantined[0][1]


def test_tampered_entry_quarantined_others_survive(tmp_path):
    path = tmp_path / "graphs.json"
    save_graphs(_graphs(), path, DEVICE)
    doc = json.loads(path.read_text())
    doc["graphs"][0]["graph"]["nodes"][0]["stream"] = 7   # silent edit
    path.write_text(json.dumps(doc), encoding="utf-8")
    report = load_graphs_safe(path, DEVICE)
    assert report.loaded == 1                  # the untouched entry
    (key, reason), = report.quarantined
    assert key == "key-bwd" or key == "key-fwd"
    assert "fingerprint mismatch" in reason


def test_injected_cache_fault_quarantines_without_raising(tmp_path):
    path = tmp_path / "graphs.json"
    save_graphs(_graphs(), path, DEVICE)
    plan = FaultPlan((FaultSpec(site="cache_load", nth=1),), seed=0)
    with chaos_session(plan):
        report = load_graphs_safe(path, DEVICE)
        assert report.loaded == 0
        assert "injected fault" in report.quarantined[0][1]
        # The poll consumed the fault: a retry loads normally.
        assert load_graphs_safe(path, DEVICE).loaded == 2
