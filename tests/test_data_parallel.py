"""Tests for data-parallel training simulation."""

import pytest

from repro.comm import AllReduceModel, NVLINK1, PCIE3
from repro.errors import ReproError
from repro.gpusim import GPU, get_device
from repro.nn.zoo import build_cifar10
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.data_parallel import DataParallelSession
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import conv_works

GRAD_BYTES = 4.0 * 150_000


def replicas(k, cls=GLP4NNExecutor, device="P100"):
    return [cls(GPU(get_device(device), record_timeline=False))
            for _ in range(k)]


def single_replica_time(cls=GLP4NNExecutor):
    ex = cls(GPU(get_device("P100"), record_timeline=False))
    fwd = conv_works(CIFAR10_CONVS, "forward")
    bwd = conv_works(CIFAR10_CONVS, "backward")
    ex.run_pass(fwd)
    ex.run_pass(bwd)
    return ex.run_pass(fwd) + ex.run_pass(bwd)


class TestConstruction:
    def test_batch_must_divide(self):
        with pytest.raises(ReproError, match="divide"):
            DataParallelSession(replicas(3), CIFAR10_CONVS, GRAD_BYTES)

    def test_needs_replicas(self):
        with pytest.raises(ReproError):
            DataParallelSession([], CIFAR10_CONVS, GRAD_BYTES)

    def test_grad_bytes_of(self):
        net = build_cifar10(batch=4)
        assert DataParallelSession.grad_bytes_of(net) == \
            4.0 * net.num_learnable()


class TestScaling:
    def test_iteration_breakdown(self):
        dp = DataParallelSession(replicas(2), CIFAR10_CONVS, GRAD_BYTES,
                                 comm=AllReduceModel(NVLINK1))
        it = dp.run_iteration()
        assert it.total_us == it.compute_us + it.allreduce_us
        assert len(it.per_replica_us) == 2
        assert it.compute_us == max(it.per_replica_us)

    def test_two_replicas_faster_than_one(self):
        t1 = single_replica_time()
        dp = DataParallelSession(replicas(2), CIFAR10_CONVS, GRAD_BYTES,
                                 comm=AllReduceModel(NVLINK1))
        dp.run_iteration()
        dp.run_iteration()
        assert dp.steady_state_time_us() < t1

    def test_scaling_efficiency_reasonable(self):
        t1 = single_replica_time()
        dp = DataParallelSession(replicas(4), CIFAR10_CONVS, GRAD_BYTES,
                                 comm=AllReduceModel(NVLINK1))
        dp.run_iteration()
        dp.run_iteration()
        eff = dp.scaling_efficiency(t1)
        assert 0.5 < eff <= 1.1

    def test_slow_interconnect_hurts(self):
        heavy_grad = 4.0 * 60_000_000   # CaffeNet-scale payload
        fast = DataParallelSession(replicas(2), CIFAR10_CONVS, heavy_grad,
                                   comm=AllReduceModel(NVLINK1))
        slow = DataParallelSession(replicas(2), CIFAR10_CONVS, heavy_grad,
                                   comm=AllReduceModel(PCIE3))
        fast.run_iteration(); fast.run_iteration()
        slow.run_iteration(); slow.run_iteration()
        assert fast.steady_state_time_us() < slow.steady_state_time_us()

    def test_heterogeneous_replicas_bound_by_slowest(self):
        reps = [
            GLP4NNExecutor(GPU(get_device("P100"), record_timeline=False)),
            GLP4NNExecutor(GPU(get_device("K40C"), record_timeline=False)),
        ]
        dp = DataParallelSession(reps, CIFAR10_CONVS, GRAD_BYTES)
        dp.run_iteration()
        it = dp.run_iteration()
        assert it.compute_us == max(it.per_replica_us)
        assert it.per_replica_us[1] > it.per_replica_us[0]  # K40C slower

    def test_steady_state_requires_iterations(self):
        dp = DataParallelSession(replicas(2), CIFAR10_CONVS, GRAD_BYTES)
        with pytest.raises(ReproError):
            dp.steady_state_time_us()

    def test_glp4nn_composes_with_data_parallelism(self):
        """Per-device GLP4NN + cross-device data parallelism stack."""
        t_naive = single_replica_time(NaiveExecutor)
        dp = DataParallelSession(replicas(2, GLP4NNExecutor),
                                 CIFAR10_CONVS, GRAD_BYTES,
                                 comm=AllReduceModel(NVLINK1))
        dp.run_iteration()
        dp.run_iteration()
        # two GLP4NN replicas beat one naive device by a wide margin
        assert dp.steady_state_time_us() < 0.5 * t_naive
