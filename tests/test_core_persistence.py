"""Tests for persisted concurrency decisions (skip re-profiling)."""

import pytest

from repro.core import GLP4NN
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.lowering import lower_conv_forward


def fresh(name="P100"):
    return GPU(get_device(name), record_timeline=False)


def warmed_framework():
    gpu = fresh()
    glp = GLP4NN([gpu])
    for cfg in CIFAR10_CONVS:
        glp.run_layer(gpu, lower_conv_forward(cfg))
    return glp, gpu


class TestRoundTrip:
    def test_save_and_load_counts(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "decisions.json"
        saved = glp.save_decisions(gpu, path)
        assert saved == 3

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        loaded = glp2.load_decisions(gpu2, path)
        assert loaded == 3

    def test_loaded_decisions_skip_profiling(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "decisions.json"
        glp.save_decisions(gpu, path)

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        work = lower_conv_forward(CIFAR10_CONVS[2])
        run = glp2.run_layer(gpu2, work)
        assert not run.profiled                       # no profiling pass
        assert not glp2.tracker.has(gpu2, work.key)   # tracker never ran
        assert run.streams_used == run.decision.c_out

    def test_loaded_decisions_match_fresh_ones(self, tmp_path):
        glp, gpu = warmed_framework()
        fresh_decisions = {k: d.c_out for k, d in glp.decisions(gpu).items()}
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        loaded = {k: d.c_out for k, d in glp2.decisions(gpu2).items()}
        assert loaded == fresh_decisions

    def test_timing_equivalent_to_warm_run(self, tmp_path):
        glp, gpu = warmed_framework()
        work = lower_conv_forward(CIFAR10_CONVS[2])
        t_warm = glp.run_layer(gpu, work).elapsed_us

        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)
        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        t_loaded = glp2.run_layer(gpu2, work).elapsed_us
        assert t_loaded == pytest.approx(t_warm, rel=0.05)


class TestGuards:
    def test_wrong_device_rejected(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)

        k40 = fresh("K40C")
        glp2 = GLP4NN([k40])
        with pytest.raises(SchedulingError, match="recorded on"):
            glp2.load_decisions(k40, path)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "d.json"
        path.write_text('{"format": 99, "device": "P100", "decisions": []}')
        gpu = fresh()
        glp = GLP4NN([gpu])
        with pytest.raises(SchedulingError, match="format"):
            glp.load_decisions(gpu, path)

    def test_loaded_analysis_time_is_zero(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)
        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        for d in glp2.decisions(gpu2).values():
            assert d.analysis_time_us == 0.0
