"""Tests for persisted concurrency decisions (skip re-profiling)."""

import pytest

from repro.core import GLP4NN
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.lowering import lower_conv_forward


def fresh(name="P100"):
    return GPU(get_device(name), record_timeline=False)


def warmed_framework():
    gpu = fresh()
    glp = GLP4NN([gpu])
    for cfg in CIFAR10_CONVS:
        glp.run_layer(gpu, lower_conv_forward(cfg))
    return glp, gpu


class TestRoundTrip:
    def test_save_and_load_counts(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "decisions.json"
        saved = glp.save_decisions(gpu, path)
        assert saved == 3

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        loaded = glp2.load_decisions(gpu2, path)
        assert loaded == 3

    def test_loaded_decisions_skip_profiling(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "decisions.json"
        glp.save_decisions(gpu, path)

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        work = lower_conv_forward(CIFAR10_CONVS[2])
        run = glp2.run_layer(gpu2, work)
        assert not run.profiled                       # no profiling pass
        assert not glp2.tracker.has(gpu2, work.key)   # tracker never ran
        assert run.streams_used == run.decision.c_out

    def test_loaded_decisions_match_fresh_ones(self, tmp_path):
        glp, gpu = warmed_framework()
        fresh_decisions = {k: d.c_out for k, d in glp.decisions(gpu).items()}
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        loaded = {k: d.c_out for k, d in glp2.decisions(gpu2).items()}
        assert loaded == fresh_decisions

    def test_timing_equivalent_to_warm_run(self, tmp_path):
        glp, gpu = warmed_framework()
        work = lower_conv_forward(CIFAR10_CONVS[2])
        t_warm = glp.run_layer(gpu, work).elapsed_us

        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)
        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        t_loaded = glp2.run_layer(gpu2, work).elapsed_us
        assert t_loaded == pytest.approx(t_warm, rel=0.05)


class TestGuards:
    def test_wrong_device_rejected(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)

        k40 = fresh("K40C")
        glp2 = GLP4NN([k40])
        with pytest.raises(SchedulingError, match="recorded on"):
            glp2.load_decisions(k40, path)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "d.json"
        path.write_text('{"format": 99, "device": "P100", "decisions": []}')
        gpu = fresh()
        glp = GLP4NN([gpu])
        with pytest.raises(SchedulingError, match="format"):
            glp.load_decisions(gpu, path)

    def test_loaded_analysis_time_is_zero(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)
        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        glp2.load_decisions(gpu2, path)
        for d in glp2.decisions(gpu2).values():
            assert d.analysis_time_us == 0.0


class TestSafeLoad:
    """``load_decisions_safe`` must never crash — only quarantine."""

    def saved_cache(self, tmp_path):
        glp, gpu = warmed_framework()
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)
        return path

    def test_good_cache_loads_everything(self, tmp_path):
        path = self.saved_cache(tmp_path)
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.ok
        assert report.loaded == 3
        assert report.quarantined == []
        assert len(glp.decisions(gpu)) == 3

    def test_missing_file_quarantined(self, tmp_path):
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, tmp_path / "nope.json")
        assert report.loaded == 0
        assert report.quarantined[0][0] == "*"
        assert "unreadable" in report.quarantined[0][1]

    def test_truncated_json_quarantined(self, tmp_path):
        path = self.saved_cache(tmp_path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.loaded == 0
        assert "corrupt JSON" in report.quarantined[0][1]

    def test_wrong_format_version_quarantined(self, tmp_path):
        path = tmp_path / "d.json"
        path.write_text('{"format": 99, "device": "P100", "decisions": []}')
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.loaded == 0
        assert "unsupported format" in report.quarantined[0][1]

    def test_device_mismatch_quarantined(self, tmp_path):
        path = self.saved_cache(tmp_path)
        k40 = fresh("K40C")
        glp = GLP4NN([k40])
        report = glp.load_decisions_safe(k40, path)
        assert report.loaded == 0
        assert "recorded on" in report.quarantined[0][1]

    def test_non_object_document_quarantined(self, tmp_path):
        path = tmp_path / "d.json"
        path.write_text("[1, 2, 3]")
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.loaded == 0
        assert "not an object" in report.quarantined[0][1]

    def test_tampered_entry_quarantined_others_load(self, tmp_path):
        import json

        path = self.saved_cache(tmp_path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["decisions"][1]["c_out"] = 999          # tamper one entry
        path.write_text(json.dumps(doc), encoding="utf-8")
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.loaded == 2                   # the intact entries
        assert len(report.quarantined) == 1
        key, reason = report.quarantined[0]
        assert key == doc["decisions"][1]["layer_key"]
        assert "fingerprint mismatch" in reason
        assert key not in glp.decisions(gpu)
        assert "quarantined" in report.describe()

    def test_missing_fingerprint_quarantined(self, tmp_path):
        import json

        path = self.saved_cache(tmp_path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        del doc["decisions"][0]["fingerprint"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert report.loaded == 2
        assert "missing kernel-bound fingerprint" in report.quarantined[0][1]

    def test_quarantined_layer_simply_reprofiles(self, tmp_path):
        import json

        path = self.saved_cache(tmp_path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        victim = doc["decisions"][2]["layer_key"]
        doc["decisions"][2]["counts"] = {}          # stale/tampered
        path.write_text(json.dumps(doc), encoding="utf-8")
        gpu = fresh()
        glp = GLP4NN([gpu])
        report = glp.load_decisions_safe(gpu, path)
        assert not report.ok
        work = lower_conv_forward(CIFAR10_CONVS[2])
        assert work.key == victim
        run = glp.run_layer(gpu, work)
        assert run.profiled                         # paid T_p again, no crash
        assert run.decision is not None

    def test_strict_load_rejects_tampered_entry(self, tmp_path):
        import json

        path = self.saved_cache(tmp_path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["decisions"][0]["c_out"] = 999
        path.write_text(json.dumps(doc), encoding="utf-8")
        gpu = fresh()
        glp = GLP4NN([gpu])
        with pytest.raises(SchedulingError, match="fingerprint"):
            glp.load_decisions(gpu, path)
