"""The static/dynamic cross-check: mutants and always-sync plans.

The directional guarantees under test (docs/static_analysis.md):

* a plan the static detector certifies under the always-sync dispatch
  must never produce a dynamic divergence witness;
* a seeded sync-deletion mutant must be flagged by the static detector
  AND confirmed divergent by the dynamic schedule runner.
"""

import pytest

from repro.analyze import (
    derive_accesses,
    detect,
    drop_sync_mutant,
    find_flagged_mutant,
    program_from_schedule_plan,
)
from repro.errors import AnalyzeError
from repro.verify.schedule import (
    ScheduleRunner,
    identity_plan,
    random_plan,
    works_for,
)
from repro.verify.witness import ScheduleWitness, replay_witness


@pytest.fixture(scope="module")
def cifar():
    from repro.serve.engine import resolve_net

    net = resolve_net("cifar10")(batch=4, seed=0)
    works = works_for("cifar10", batch=4, seed=0)
    return net, works, derive_accesses(net, works)


def _identity(works):
    return identity_plan(works, "cifar10", "p100", 4, 0)


class TestCrossCheck:
    def test_identity_plan_clean_both_ways(self, cifar):
        net, works, accesses = cifar
        plan = _identity(works)
        assert detect(program_from_schedule_plan(works, accesses,
                                                 plan)) == []
        runner = ScheduleRunner(works, pool_size=plan.pool_size)
        assert runner.run(plan, device="p100").ok

    def test_always_sync_fuzz_plans_statically_clean(self, cifar):
        """Static 'safe' must cover everything the fuzzer samples."""
        net, works, accesses = cifar
        runner = ScheduleRunner(works, pool_size=4)
        for round_ in range(5):
            plan = random_plan(works, "cifar10", "p100", 4, seed=0,
                               round_=round_)
            prog = program_from_schedule_plan(works, accesses, plan)
            assert detect(prog) == [], f"round {round_} flagged"
            assert runner.run(plan, device="p100").ok, f"round {round_}"

    def test_mutant_flagged_by_both(self, cifar):
        net, works, accesses = cifar
        plan = _identity(works)
        runner = ScheduleRunner(works, pool_size=plan.pool_size)

        def confirm(cand):
            return not runner.run(cand, device="p100").ok

        mutant, hazards = find_flagged_mutant(works, accesses, plan,
                                              seed=0, confirm=confirm)
        assert hazards
        h = hazards[0]
        # a minimal two-kernel witness
        assert h.first and h.second and h.regions
        assert h.first_stream != h.second_stream
        result = runner.run(mutant, device="p100")
        assert not result.ok
        assert any("[layer-order]" in v or "[chain-order]" in v
                   for v in result.violations)

    def test_mutant_witness_replays(self, cifar, tmp_path):
        net, works, accesses = cifar
        plan = _identity(works)
        runner = ScheduleRunner(works, pool_size=plan.pool_size)
        mutant, _ = find_flagged_mutant(
            works, accesses, plan, seed=0,
            confirm=lambda c: not runner.run(c, device="p100").ok)
        path = tmp_path / "mutant.json"
        ScheduleWitness(plan=mutant,
                        original_layers=len(plan.layers)).save(path)
        replay = replay_witness(path)
        assert replay.reproduced
        assert replay.result.violations


class TestMutation:
    def test_drop_sync_sets_fields(self, cifar):
        net, works, accesses = cifar
        plan = _identity(works)
        mut = drop_sync_mutant(plan, 2, 1)
        assert mut.layers[2].sync is False
        assert mut.layers[2].serial_stream == 1
        assert mut.layers[3].serial_stream == 2
        # untouched layers keep the safe defaults
        assert mut.layers[0].sync is True
        assert mut.layers[0].serial_stream is None

    def test_out_of_range_index_raises(self, cifar):
        net, works, accesses = cifar
        plan = _identity(works)
        with pytest.raises(AnalyzeError):
            drop_sync_mutant(plan, len(plan.layers), 0)

    def test_pool_of_one_has_no_flaggable_mutant(self):
        """Pool of 1: zero hazards by construction, search must fail."""
        from repro.serve.engine import resolve_net

        net = resolve_net("lenet")(batch=2, seed=0)
        works = works_for("lenet", batch=2, seed=0)
        accesses = derive_accesses(net, works)
        plan = identity_plan(works, "lenet", "p100", 2, 0, pool_size=1)
        with pytest.raises(AnalyzeError):
            find_flagged_mutant(works, accesses, plan, seed=0)

    def test_mutant_search_is_deterministic(self, cifar):
        net, works, accesses = cifar
        plan = _identity(works)
        a, _ = find_flagged_mutant(works, accesses, plan, seed=3)
        b, _ = find_flagged_mutant(works, accesses, plan, seed=3)
        assert a == b


class TestWitnessFormat:
    def test_version_2_carries_mutation_fields(self, cifar, tmp_path):
        net, works, accesses = cifar
        plan = drop_sync_mutant(_identity(works), 1, 0)
        path = tmp_path / "w.json"
        ScheduleWitness(plan=plan).save(path)
        loaded = ScheduleWitness.load(path)
        assert loaded.version == 2
        assert loaded.plan.layers[1].sync is False
        assert loaded.plan.layers[1].serial_stream == 0

    def test_version_1_files_still_load(self, cifar, tmp_path):
        import json

        net, works, accesses = cifar
        path = tmp_path / "v1.json"
        ScheduleWitness(plan=_identity(works)).save(path)
        doc = json.loads(path.read_text())
        doc["version"] = 1
        for layer in doc["plan"]["layers"]:
            layer.pop("sync", None)
            layer.pop("serial_stream", None)
        path.write_text(json.dumps(doc))
        loaded = ScheduleWitness.load(path)
        assert loaded.plan.layers[0].sync is True
        assert loaded.plan.layers[0].serial_stream is None
