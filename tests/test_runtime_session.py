"""Tests for training sessions and metrics helpers."""

import math

import numpy as np
import pytest

from repro.data import BatchLoader, make_dataset
from repro.errors import ReproError
from repro.gpusim import GPU, get_device
from repro.nn.solver import SolverConfig
from repro.nn.zoo import build_cifar10
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.metrics import TimingSummary, geometric_mean, speedup
from repro.runtime.session import TrainingSession


def fresh():
    return GPU(get_device("P100"), record_timeline=False)


def small_session(executor_cls=NaiveExecutor, numeric=True, seed=0):
    net = build_cifar10(batch=20, seed=seed, with_accuracy=False)
    return TrainingSession(
        net, executor_cls(fresh()),
        solver_config=SolverConfig(base_lr=0.001, momentum=0.9),
        compute_numeric=numeric,
    )


def batches(seed=1):
    ds = make_dataset("cifar10", 100, seed=seed)
    return BatchLoader(ds, 20, seed=seed + 1)


class TestTrainingSession:
    def test_iteration_records_timing_and_loss(self):
        session = small_session()
        loader = batches()
        t = session.run_iteration(loader.next_batch())
        assert t.loss > 0
        assert t.sim_time_us == pytest.approx(t.forward_us + t.backward_us)
        assert t.forward_us > 0 and t.backward_us > 0

    def test_numeric_requires_batch(self):
        session = small_session()
        with pytest.raises(ReproError):
            session.run_iteration(None)

    def test_timing_only_mode(self):
        session = small_session(numeric=False)
        t = session.run_iteration()
        assert math.isnan(t.loss)
        assert t.sim_time_us > 0

    def test_steady_state_excludes_warmup(self):
        session = small_session(GLP4NNExecutor, numeric=False)
        for _ in range(3):
            session.run_iteration()
        steady = session.steady_state_time_us(skip=1)
        first = session.timings[0].sim_time_us
        assert steady < first   # profiling iteration excluded

    def test_steady_state_needs_iterations(self):
        session = small_session(numeric=False)
        with pytest.raises(ReproError):
            session.steady_state_time_us()

    def test_run_helper(self):
        session = small_session()
        loader = batches()
        out = session.run(iter(loader), iterations=3)
        assert len(out) == 3
        assert session.losses == [t.loss for t in out]

    def test_losses_decrease_over_training(self):
        session = small_session()
        loader = batches()
        for _ in range(60):
            session.run_iteration(loader.next_batch())
        assert session.losses[-1] < session.losses[0]


class TestConvergenceInvariance:
    """The core claim: scheduling does not change the numbers."""

    def test_identical_losses_naive_vs_glp4nn(self):
        s1 = small_session(NaiveExecutor, seed=3)
        s2 = small_session(GLP4NNExecutor, seed=3)
        l1 = batches(seed=9)
        l2 = batches(seed=9)
        for _ in range(8):
            s1.run_iteration(l1.next_batch())
            s2.run_iteration(l2.next_batch())
        assert s1.losses == s2.losses     # bit-identical

    def test_identical_parameters_after_training(self):
        s1 = small_session(NaiveExecutor, seed=3)
        s2 = small_session(GLP4NNExecutor, seed=3)
        l1, l2 = batches(seed=9), batches(seed=9)
        for _ in range(5):
            s1.run_iteration(l1.next_batch())
            s2.run_iteration(l2.next_batch())
        for (p1, _, _), (p2, _, _) in zip(s1.net.unique_params(),
                                          s2.net.unique_params()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_glp4nn_is_faster_per_iteration(self):
        s1 = small_session(NaiveExecutor, numeric=False)
        s2 = small_session(GLP4NNExecutor, numeric=False)
        for _ in range(3):
            s1.run_iteration()
            s2.run_iteration()
        assert s2.steady_state_time_us() < s1.steady_state_time_us()


class TestMetrics:
    def test_speedup(self):
        assert speedup(200.0, 100.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_summary(self):
        s = TimingSummary.of([1.0, 2.0, 3.0])
        assert s.mean == 2.0 and s.minimum == 1.0 and s.maximum == 3.0
        assert s.stdev == pytest.approx(1.0)

    def test_summary_single_sample(self):
        assert TimingSummary.of([5.0]).stdev == 0.0

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingSummary.of([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_percentile_endpoints_and_interpolation(self):
        s = TimingSummary.of([10.0, 20.0, 30.0, 40.0])
        assert s.percentile(0) == 10.0
        assert s.percentile(100) == 40.0
        assert s.percentile(50) == 25.0     # midway between 20 and 30
        assert s.percentile(25) == pytest.approx(17.5)

    def test_percentile_single_sample_is_constant(self):
        s = TimingSummary.of([7.0])
        assert s.percentile(0) == s.percentile(50) == s.percentile(99) == 7.0

    def test_percentile_order_independent(self):
        shuffled = TimingSummary.of([30.0, 10.0, 40.0, 20.0])
        ordered = TimingSummary.of([10.0, 20.0, 30.0, 40.0])
        assert shuffled.percentile(95) == ordered.percentile(95)

    def test_percentile_validates_range(self):
        s = TimingSummary.of([1.0])
        with pytest.raises(ValueError):
            s.percentile(-1)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_tail_shorthands(self):
        samples = [float(i) for i in range(1, 101)]    # 1..100
        s = TimingSummary.of(samples)
        assert s.p50 == s.percentile(50) == pytest.approx(50.5)
        assert s.p95 == s.percentile(95) == pytest.approx(95.05)
        assert s.p99 == s.percentile(99) == pytest.approx(99.01)
        assert s.p50 <= s.p95 <= s.p99 <= s.maximum


class TestH2DTransfers:
    def test_h2d_adds_time(self):
        s_plain = small_session(numeric=False)
        net2 = build_cifar10(batch=20, seed=0, with_accuracy=False)
        s_h2d = TrainingSession(net2, NaiveExecutor(fresh()),
                                compute_numeric=False, include_h2d=True)
        t_plain = s_plain.run_iteration().sim_time_us
        t_h2d = s_h2d.run_iteration().sim_time_us
        assert t_h2d > t_plain

    def test_h2d_bytes_accounted_on_device(self):
        net = build_cifar10(batch=20, seed=0, with_accuracy=False)
        ex = NaiveExecutor(fresh())
        session = TrainingSession(net, ex, compute_numeric=False,
                                  include_h2d=True)
        session.run_iteration()
        expected = 4 * (20 * 3 * 32 * 32 + 20)   # data + label blobs
        assert ex.gpu.bytes_copied["h2d"] == expected


class TestInference:
    def test_forward_only_timing(self):
        session = small_session(numeric=False)
        t = session.run_inference()
        assert t.backward_us == 0.0
        assert t.sim_time_us == t.forward_us > 0

    def test_inference_faster_than_training_iteration(self):
        s = small_session(numeric=False)
        train = s.run_iteration()
        infer = s.run_inference()
        assert infer.sim_time_us < train.sim_time_us

    def test_numeric_inference_reports_loss(self):
        session = small_session()
        loader = batches()
        t = session.run_inference(loader.next_batch())
        assert t.loss > 0

    def test_inference_respects_test_mode(self):
        """Dropout must be off during run_inference and restored after."""
        from repro.nn.layer import LayerDef
        from repro.nn.layers import (DropoutLayer, InnerProductLayer,
                                     SoftmaxWithLossLayer)
        from repro.nn.net import Net
        net = Net(
            "d",
            [
                LayerDef(DropoutLayer("drop", 0.5), ["data"], ["dd"]),
                LayerDef(InnerProductLayer("ip", 3), ["dd"], ["ip"]),
                LayerDef(SoftmaxWithLossLayer("loss"), ["ip", "label"],
                         ["loss"]),
            ],
            input_shapes={"data": (4, 8), "label": (4,)},
        )
        session = TrainingSession(net, NaiveExecutor(fresh()))
        rng = np.random.default_rng(0)
        batch = {"data": rng.normal(size=(4, 8)).astype(np.float32),
                 "label": rng.integers(0, 3, 4).astype(np.float32)}
        a = session.run_inference(batch).loss
        b = session.run_inference(batch).loss
        assert a == b                      # deterministic: no dropout noise
        assert net.layer("drop").train_mode is True
