"""CompiledGraph artifact: nodes, serialization, IR lowering, keying."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.compiled import (
    CompiledGraph,
    GraphNode,
    works_fingerprint,
)
from repro.nn.zoo import build_lenet
from repro.runtime.lowering import lower_net


def _launch(kernel="k", stream=1, **kw):
    return GraphNode(kind="launch", kernel=kernel, stream=stream, **kw)


def _graph() -> CompiledGraph:
    return CompiledGraph(
        name="g", network="lenet", device="P100", pool_size=2,
        nodes=[
            _launch("a", 1, writes=("x",), layer="l1/forward", chain=0),
            GraphNode(kind="record", stream=1, event=0),
            GraphNode(kind="wait", stream=2, event=0),
            _launch("b", 2, reads=("x",), writes=("y",),
                    layer="l1/forward", chain=1),
            GraphNode(kind="barrier"),
            _launch("c", 0, reads=("y",), writes=("z",),
                    layer="l2/forward"),
        ])


class TestGraphNode:
    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError, match="unknown graph node kind"):
            GraphNode(kind="jump")

    def test_launch_needs_kernel_name(self):
        with pytest.raises(GraphError, match="kernel name"):
            GraphNode(kind="launch")

    def test_record_wait_need_event_id(self):
        for kind in ("record", "wait"):
            with pytest.raises(GraphError, match="event id"):
                GraphNode(kind=kind, stream=1)

    def test_spec_materializes_fresh_uids(self):
        node = _launch(grid=(4, 1, 1), block=(128, 1, 1),
                       duration_us=7.5, tag="t")
        a, b = node.spec(), node.spec()
        assert a.name == "k" and a.launch.grid == (4, 1, 1)
        assert a.duration_us == 7.5 and a.tag == "t"
        assert a.uid != b.uid           # replays never alias capture uids
        assert a.signature == b.signature

    def test_non_launch_has_no_spec(self):
        with pytest.raises(GraphError):
            GraphNode(kind="barrier").spec()

    def test_round_trip_every_kind(self):
        for node in _graph().nodes:
            assert GraphNode.from_dict(node.to_dict()) == node


class TestCompiledGraph:
    def test_queries(self):
        g = _graph()
        assert len(g) == 6 and g.launches == 3
        assert g.streams_used() == {0, 1, 2}

    def test_round_trip_and_fingerprint_stability(self):
        g = _graph()
        h = CompiledGraph.from_dict(g.to_dict())
        assert h == g
        assert h.fingerprint() == g.fingerprint()

    def test_fingerprint_detects_tampering(self):
        g = _graph()
        d = g.to_dict()
        d["nodes"][0]["stream"] = 2     # reassign a stream
        assert CompiledGraph.from_dict(d).fingerprint() != g.fingerprint()

    def test_program_lowering_preserves_op_order(self):
        prog = _graph().program()
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["Launch", "RecordEvent", "WaitEvent", "Launch",
                         "SyncAll", "Launch"]
        first = prog.ops[0]
        assert first.kernel == "a" and first.stream == 1
        assert "x" in first.writes and first.layer == "l1/forward"


class TestWorksFingerprint:
    def test_same_lowering_same_key_despite_fresh_uids(self):
        net = build_lenet(batch=4, seed=0)
        a = lower_net(net, "forward")
        b = lower_net(net, "forward")       # all-new spec objects
        assert {id(x) for x in a} != {id(x) for x in b}
        assert (works_fingerprint(a, "P100")
                == works_fingerprint(b, "P100"))

    def test_device_and_extra_distinguish(self):
        works = lower_net(build_lenet(batch=4, seed=0), "forward")
        base = works_fingerprint(works, "P100")
        assert works_fingerprint(works, "K40C") != base
        assert works_fingerprint(works, "P100", extra="fused") != base

    def test_phase_distinguishes(self):
        net = build_lenet(batch=4, seed=0)
        assert (works_fingerprint(lower_net(net, "forward"), "P100")
                != works_fingerprint(lower_net(net, "backward"), "P100"))
