"""Tests for branch-and-bound MILP solving, with scipy.optimize.milp oracle."""

import numpy as np
import pytest

from repro.milp.branch_and_bound import solve_milp
from repro.milp.simplex import LinearProgram
from repro.milp.solution import SolveStatus

_opt = pytest.importorskip("scipy.optimize")


class TestHandCases:
    def test_knapsack(self):
        # max 10a + 6b + 4c st a+b+c<=10, 5a+4b+3c<=30 (integers)
        lp = LinearProgram(
            c=[-10, -6, -4],
            a_ub=[[1, 1, 1], [5, 4, 3]],
            b_ub=[10, 30],
            lo=[0, 0, 0], hi=[10, 10, 10],
        )
        res = solve_milp(lp, integers=[0, 1, 2])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-60.0)  # a=6: weight 30, value 60

    def test_integrality_changes_optimum(self):
        # LP optimum fractional: max x st 2x <= 5 -> x = 2.5; MILP -> 2
        lp = LinearProgram(c=[-1], a_ub=[[2]], b_ub=[5], lo=[0], hi=[10])
        res = solve_milp(lp, integers=[0])
        assert res.x[0] == pytest.approx(2.0)

    def test_mixed_integer(self):
        # y continuous, x integer
        lp = LinearProgram(c=[-1, -1], a_ub=[[2, 1]], b_ub=[5.5],
                           lo=[0, 0], hi=[10, 0.25])
        res = solve_milp(lp, integers=[0])
        assert res.x[0] == pytest.approx(2.0)
        assert res.x[1] == pytest.approx(0.25)

    def test_infeasible_integrality(self):
        # 0.4 <= x <= 0.6 has no integer point
        lp = LinearProgram(c=[1], lo=[0.4], hi=[0.6])
        res = solve_milp(lp, integers=[0])
        assert res.status is SolveStatus.INFEASIBLE

    def test_integers_snapped_exactly(self):
        lp = LinearProgram(c=[-3, -2], a_ub=[[1, 1]], b_ub=[7.3],
                           lo=[0, 0], hi=[5, 5])
        res = solve_milp(lp, integers=[0, 1])
        assert res.x[0] == float(int(res.x[0]))
        assert res.x[1] == float(int(res.x[1]))

    def test_root_infeasible(self):
        lp = LinearProgram(c=[1], a_ub=[[1]], b_ub=[-1], lo=[0], hi=[5])
        assert solve_milp(lp, [0]).status is SolveStatus.INFEASIBLE


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_pure_integer(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(1, 5))
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.normal(size=m) + 2.0
        lo, hi = np.zeros(n), np.full(n, 8.0)
        ours = solve_milp(LinearProgram(c, a, b, lo=lo, hi=hi),
                          integers=range(n))
        ref = _opt.milp(
            c, constraints=_opt.LinearConstraint(a, -np.inf, b),
            bounds=_opt.Bounds(lo, hi), integrality=np.ones(n),
        )
        assert (ours.status is SolveStatus.OPTIMAL) == bool(ref.success)
        if ref.success:
            assert ours.objective == pytest.approx(ref.fun, rel=1e-6,
                                                   abs=1e-7)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mixed(self, seed):
        rng = np.random.default_rng(500 + seed)
        n = 4
        c = rng.normal(size=n)
        a = rng.normal(size=(3, n))
        b = rng.normal(size=3) + 2.0
        lo, hi = np.zeros(n), np.full(n, 6.0)
        integrality = np.array([1, 0, 1, 0], dtype=float)
        ours = solve_milp(LinearProgram(c, a, b, lo=lo, hi=hi),
                          integers=[0, 2])
        ref = _opt.milp(
            c, constraints=_opt.LinearConstraint(a, -np.inf, b),
            bounds=_opt.Bounds(lo, hi), integrality=integrality,
        )
        assert (ours.status is SolveStatus.OPTIMAL) == bool(ref.success)
        if ref.success:
            assert ours.objective == pytest.approx(ref.fun, rel=1e-6,
                                                   abs=1e-6)
