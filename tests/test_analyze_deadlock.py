"""Deadlock detector edge cases: the five shapes the ISSUE pins down.

Self-wait, the two-stream crossed record/wait cycle (minimal 4-op
witness), wait-on-never-recorded, a cycle reaching admission through a
graph-replayed segment, and the pool-of-1 degeneration — plus the
suppression plumbing shared with the hazard detector.
"""

import pytest

from repro.analyze.deadlock import (DEADLOCK_RULES, deadlock_verdict_for,
                                    detect_deadlocks)
from repro.analyze.program import DispatchProgram
from repro.errors import GraphValidationError
from repro.graphs.admission import admit, validate_deadlocks
from repro.graphs.compiled import CompiledGraph, GraphNode


def _clean() -> DispatchProgram:
    prog = DispatchProgram("clean")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.wait(event=1, stream=2)
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    return prog


def test_clean_program_is_certified():
    assert detect_deadlocks(_clean()) == []
    verdict = deadlock_verdict_for(_clean(), network="t", plan="rr")
    assert verdict.ok and verdict.suppressed == 0 and verdict.waits == 1


def test_self_wait_single_stream():
    prog = DispatchProgram("self-wait")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.wait(event=5, stream=1)
    prog.record(event=5, stream=1)
    findings = detect_deadlocks(prog)
    assert [f.rule for f in findings] == ["deadlock/self-wait"]
    f = findings[0]
    assert f.wait_index == 1 and f.event == 5 and f.stream == 1
    # minimal witness: the wait and the record it can never reach past
    kinds = [c.kind for c in f.cycle]
    assert "wait" in kinds and "record" in kinds
    assert {c.stream for c in f.cycle} == {1}
    assert "cycle" in f.describe()


def test_two_stream_crossed_pair_is_a_four_op_cycle():
    prog = DispatchProgram("crossed")
    prog.wait(event=1, stream=1)       # op 0: A waits on e1 (B records)
    prog.record(event=2, stream=1)     # op 1: A records e2 after its wait
    prog.wait(event=2, stream=2)       # op 2: B waits on e2
    prog.record(event=1, stream=2)     # op 3: B records e1 after *its* wait
    findings = detect_deadlocks(prog)
    assert any(f.rule == "deadlock/cycle" for f in findings)
    f = next(f for f in findings if f.rule == "deadlock/cycle")
    assert len(f.cycle) == 4           # minimal witness: all four ops
    assert {c.op_index for c in f.cycle} == {0, 1, 2, 3}
    assert {c.stream for c in f.cycle} == {1, 2}


def test_wait_on_never_recorded_event():
    prog = DispatchProgram("orphan-wait")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.wait(event=99, stream=2)
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    findings = detect_deadlocks(prog)
    assert [f.rule for f in findings] == ["deadlock/never-recorded"]
    assert findings[0].cycle == ()     # nothing to cycle through
    assert "never recorded" in findings[0].missing


def test_record_after_wait_without_a_cycle():
    prog = DispatchProgram("mis-ordered")
    prog.wait(event=3, stream=1)       # forward binding, but acyclic:
    prog.record(event=3, stream=2)     # the record's stream never waits
    findings = detect_deadlocks(prog)
    assert [f.rule for f in findings] == ["deadlock/record-after-wait"]
    f = findings[0]
    assert [c.kind for c in f.cycle] == ["wait", "record"]
    assert "after the wait" in f.missing


def test_cycle_reached_through_a_graph_replayed_segment():
    """A captured graph whose program deadlocks must be refused replay."""
    graph = CompiledGraph(name="bad-capture", network="t", device="p100",
                          pool_size=2, batch=1, seed=0)
    graph.nodes = [
        GraphNode(kind="launch", stream=1, kernel="k1", writes=("x",),
                  layer="conv1", chain=0),
        GraphNode(kind="wait", stream=1, event=1),
        GraphNode(kind="record", stream=1, event=2),
        GraphNode(kind="wait", stream=2, event=2),
        GraphNode(kind="record", stream=2, event=1),
        GraphNode(kind="barrier"),
    ]
    verdict = validate_deadlocks(graph)
    assert not verdict.ok
    assert any(f.rule == "deadlock/cycle" for f in verdict.findings)
    with pytest.raises(GraphValidationError, match="deadlock finding"):
        admit(graph)


def test_pool_of_one_degenerates_to_self_wait():
    """Two events, one stream: the cycle never leaves the pool of 1."""
    prog = DispatchProgram("pool-1")
    prog.wait(event=1, stream=1)
    prog.record(event=2, stream=1)
    prog.wait(event=2, stream=1)
    prog.record(event=1, stream=1)
    findings = detect_deadlocks(prog)
    cyclic = [f for f in findings if f.cycle]
    assert cyclic and all(f.rule == "deadlock/self-wait" for f in cyclic)
    assert all({c.stream for c in f.cycle} == {1} for f in cyclic)


def test_suppression_by_rule_id():
    prog = DispatchProgram("suppressed")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.wait(event=5, stream=1)
    prog.record(event=5, stream=1)
    prog.allow("deadlock/self-wait")
    verdict = deadlock_verdict_for(prog, network="t", plan="rr")
    assert verdict.ok and verdict.suppressed == 1
    # raw detection is unaffected: suppression only counts, never hides
    assert len(detect_deadlocks(prog)) == 1


def test_suppression_from_allow_marker_text():
    prog = DispatchProgram("marked")
    prog.wait(event=9, stream=1)
    prog.allow_from("lowered by hand  # repro: allow(deadlock/never-recorded)")
    verdict = deadlock_verdict_for(prog)
    assert verdict.ok and verdict.suppressed == 1


def test_wildcard_suppression():
    prog = DispatchProgram("wildcard")
    prog.wait(event=9, stream=1)
    prog.allow("*")
    verdict = deadlock_verdict_for(prog)
    assert verdict.ok and verdict.suppressed == 1


def test_all_emitted_rules_are_registered():
    emitted = set()
    progs = []
    p = DispatchProgram("a"); p.wait(event=1, stream=1); p.record(event=1, stream=1); progs.append(p)
    p = DispatchProgram("b"); p.wait(event=1, stream=1); progs.append(p)
    p = DispatchProgram("c"); p.wait(event=1, stream=1); p.record(event=1, stream=2); progs.append(p)
    p = DispatchProgram("d")
    p.wait(event=1, stream=1); p.record(event=2, stream=1)
    p.wait(event=2, stream=2); p.record(event=1, stream=2); progs.append(p)
    for prog in progs:
        emitted |= {f.rule for f in detect_deadlocks(prog)}
    assert emitted == set(DEADLOCK_RULES)
