"""Schedule fuzzer: permutation legality, the planted bug, shrink, replay.

The acceptance scenario for the whole harness lives here: a test-only
dispatcher bug (chains sprayed across pool streams, breaking intra-chain
program order) must be *caught* by the fuzzer, *shrunk* to a minimal
witness, and *reproduced* from the saved replay file — then vanish once
the bug is removed.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.verify.schedule import (
    ScheduleRunner,
    fuzz_schedules,
    identity_plan,
    random_plan,
    works_for,
)
from repro.verify.witness import ScheduleWitness, replay_witness

NETWORK, BATCH, SEED = "lenet", 4, 0


@pytest.fixture(scope="module")
def lenet_works():
    return works_for(NETWORK, BATCH, SEED)


def _spray_chains(self, gpu, chain, pool, slot):
    """The planted bug: each kernel of a chain lands on a different
    stream, so kernel k+1 no longer waits for kernel k."""
    return [gpu.launch(spec, stream=pool[(slot + j) % len(pool)])
            for j, spec in enumerate(chain)]


def test_identity_and_random_plans_run_clean(lenet_works) -> None:
    runner = ScheduleRunner(lenet_works, pool_size=4)
    ident = identity_plan(lenet_works, NETWORK, "p100", BATCH, SEED)
    res = runner.run(ident)
    assert res.ok and res.kernels > 0 and res.elapsed_us > 0
    rand = random_plan(lenet_works, NETWORK, "p100", BATCH, SEED, 0)
    assert runner.run(rand).ok
    # Seeded: the same round always draws the same plan.
    assert rand == random_plan(lenet_works, NETWORK, "p100", BATCH, SEED, 0)
    assert rand != random_plan(lenet_works, NETWORK, "p100", BATCH, SEED, 1)


def test_malformed_plans_rejected(lenet_works) -> None:
    import dataclasses

    runner = ScheduleRunner(lenet_works)
    ident = identity_plan(lenet_works, NETWORK, "p100", BATCH, SEED)
    bad_index = dataclasses.replace(
        ident, layers=(dataclasses.replace(ident.layers[0], index=9999),))
    with pytest.raises(ReproError, match="layer index"):
        runner.run(bad_index)
    ls = ident.layers[0]
    bad_perm = dataclasses.replace(
        ident,
        layers=(dataclasses.replace(ls, chain_order=(0,) * len(ls.chain_order)),))
    if len(ls.chain_order) > 1:
        with pytest.raises(ReproError, match="permutation"):
            runner.run(bad_perm)


def test_fuzz_campaign_passes_on_clean_dispatcher(tmp_path) -> None:
    report = fuzz_schedules(network=NETWORK, seed=SEED, rounds=3,
                            batch=BATCH,
                            witness_path=str(tmp_path / "w.json"))
    assert report.ok
    assert report.rounds_run == 3
    assert report.kernels_checked > 0
    assert not (tmp_path / "w.json").exists()
    assert "OK" in report.render()


def test_planted_bug_caught_shrunk_and_replayable(
        tmp_path, monkeypatch) -> None:
    witness_file = tmp_path / "witness.json"
    monkeypatch.setattr(ScheduleRunner, "_launch_chain", _spray_chains)
    report = fuzz_schedules(network=NETWORK, seed=SEED, rounds=2,
                            batch=BATCH, witness_path=str(witness_file))
    assert not report.ok
    failure = report.failure
    assert failure is not None and failure.violations
    assert any("chain-order" in v for v in failure.violations)
    # Shrinking found a strictly smaller witness and recorded its work.
    assert len(failure.shrunk_plan.layers) < len(failure.plan.layers)
    assert failure.shrink_attempts > 0
    assert failure.witness_path == str(witness_file)

    # The witness file round-trips and reproduces while the bug is live.
    witness = ScheduleWitness.load(witness_file)
    assert witness.plan == failure.shrunk_plan
    assert ScheduleWitness.from_dict(witness.to_dict()).plan == witness.plan
    replay = replay_witness(witness_file)
    assert replay.reproduced
    assert "REPRODUCED" in replay.render()

    # Fix the bug: the same witness no longer reproduces — the replay
    # file doubles as a regression test for the fix.
    monkeypatch.undo()
    replay = replay_witness(witness_file)
    assert not replay.reproduced


def test_witness_load_rejects_foreign_files(tmp_path) -> None:
    not_a_witness = tmp_path / "x.json"
    not_a_witness.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ReproError, match="not a schedule witness"):
        ScheduleWitness.load(not_a_witness)
    ident = identity_plan(works_for(NETWORK, 2, 0), NETWORK, "p100", 2, 0)
    future = ScheduleWitness(plan=ident).to_dict()
    future["version"] = 99
    newer = tmp_path / "future.json"
    newer.write_text(json.dumps(future))
    with pytest.raises(ReproError, match="newer"):
        ScheduleWitness.load(newer)
    with pytest.raises(ReproError, match="cannot read"):
        ScheduleWitness.load(tmp_path / "missing.json")
