"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import hooks as fault_hooks
from repro.gpusim import GPU, KernelSpec, LaunchConfig, get_device
from repro.gpusim.stream import reset_handle_ids
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@pytest.fixture(autouse=True)
def _hermetic_globals():
    """Isolate every test from process-global state.

    The runtime keeps three process-wide installation slots (span
    recorder, metrics registry, fault injector) plus a global stream
    handle counter.  A test that installs one and fails before its
    cleanup would otherwise leak observers — or fault plans — into every
    later test; the handle counter would make stream names depend on
    test execution order.  Reset all four on both sides of each test.
    """
    def _reset():
        reset_handle_ids()
        obs_spans.install(None)
        obs_metrics.install(None)
        fault_hooks.install(None)
    _reset()
    yield
    _reset()


@pytest.fixture
def p100() -> GPU:
    return GPU(get_device("P100"))

@pytest.fixture
def k40c() -> GPU:
    return GPU(get_device("K40C"))

@pytest.fixture
def titanxp() -> GPU:
    return GPU(get_device("TitanXP"))


def small_kernel(name: str = "k", blocks: int = 4, threads: int = 256,
                 flops: float = 5000.0, bytes_: float = 64.0,
                 smem: int = 0, regs: int = 32, tag: str = "") -> KernelSpec:
    """A kernel spec builder with convenient defaults for engine tests."""
    return KernelSpec(
        name=name,
        launch=LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                            shared_mem_dynamic=smem,
                            registers_per_thread=regs),
        flops_per_thread=flops,
        bytes_per_thread=bytes_,
        tag=tag,
    )


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-2) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``.

    Works on float32 layer parameters: ``eps`` is large enough to dominate
    single-precision rounding for the smooth layers under test.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray,
                      rtol: float = 5e-2, atol: float = 1e-3) -> None:
    """Compare gradients with float32-friendly tolerances."""
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
