"""Hazard certification: clean plans sign, poisoned plans fall back."""

import pytest

from repro.analyze.program import Launch, RecordEvent, SyncAll, WaitEvent
from repro.interop.certify import (
    certify,
    plan_program,
    structural_effects,
)
from repro.interop.planner import PLAN_POLICIES, build_plan
from repro.interop.report import run_interop_session
from repro.interop.workloads import inception_unit, single_branch
from repro.serve.engine import resolve_device

P100 = resolve_device("p100")


@pytest.fixture(scope="module")
def unit():
    return inception_unit("5a", batch=2)


@pytest.fixture(scope="module")
def effects(unit):
    return structural_effects(unit.graph, in_place=unit.in_place)


class TestStructuralEffects:
    def test_node_writes_own_region_reads_deps(self, unit, effects):
        node = next(n for n in unit.graph.nodes if n.deps)
        reads, writes = effects[node.node_id]
        assert reads == frozenset(f"n{d}" for d in node.deps)
        if node.node_id not in unit.in_place:
            assert writes == frozenset({f"n{node.node_id}"})

    def test_in_place_join_also_writes_dep_regions(self, unit, effects):
        join = next(iter(unit.in_place))
        reads, writes = effects[join]
        assert reads <= writes          # concat assembles in the branches
        assert f"n{join}" in writes


class TestPlanProgram:
    def test_streams_are_slot_plus_one(self, unit, effects):
        plan = build_plan(unit.graph, "round-robin", 3)
        prog = plan_program(unit.graph, plan, effects)
        launch_streams = {op.stream for op in prog.ops
                          if isinstance(op, Launch)}
        assert launch_streams == {1, 2, 3}    # 0 = default stream, unused

    def test_ends_in_synchronize(self, unit, effects):
        plan = build_plan(unit.graph, "layer-serial", 1)
        prog = plan_program(unit.graph, plan, effects)
        assert isinstance(prog.ops[-1], SyncAll)

    def test_cross_edges_get_record_wait_pairs(self, unit, effects):
        plan = build_plan(unit.graph, "round-robin", 3)
        prog = plan_program(unit.graph, plan, effects)
        assert any(isinstance(op, RecordEvent) for op in prog.ops)
        assert any(isinstance(op, WaitEvent) for op in prog.ops)

    def test_drop_waits_removes_every_wait(self, unit, effects):
        plan = build_plan(unit.graph, "round-robin", 3)
        prog = plan_program(unit.graph, plan, effects, drop_waits=True)
        assert not any(isinstance(op, WaitEvent) for op in prog.ops)


class TestCertifyClean:
    @pytest.mark.parametrize("policy", PLAN_POLICIES)
    def test_every_policy_certifies(self, unit, effects, policy):
        plan = build_plan(unit.graph, policy, 4, device=P100)
        cert = certify(unit.graph, plan, effects=effects, device=P100)
        assert cert.plan.certified
        assert not cert.fell_back
        assert cert.plan.policy == policy
        assert len(cert.verdicts) == 1       # first attempt passed

    def test_single_branch_certifies_without_in_place(self):
        wl = single_branch(batch=2)
        plan = build_plan(wl.graph, "opara", 2, device=P100)
        cert = certify(wl.graph, plan,
                       effects=structural_effects(wl.graph), device=P100)
        assert cert.plan.certified and not cert.fell_back


class TestFallbackLadder:
    def test_poisoned_plan_falls_back_to_chain_affine(self, unit, effects):
        plan = build_plan(unit.graph, "opara", 4, device=P100)
        assert plan.cross_edges(unit.graph) > 0    # poison has teeth
        cert = certify(unit.graph, plan, effects=effects,
                       drop_waits=True, device=P100)
        assert cert.fell_back
        assert cert.plan.policy == "chain-affine"
        assert cert.plan.fallback_from == "opara"
        assert cert.plan.hazards > 0
        assert cert.plan.certified
        # both the rejection and the acceptance are on record
        assert [v.ok for v in cert.verdicts] == [False, True]

    def test_poisoned_chain_affine_falls_back_to_layer_serial(
            self, unit, effects):
        plan = build_plan(unit.graph, "chain-affine", 4)
        cert = certify(unit.graph, plan, effects=effects,
                       drop_waits=True, device=P100)
        assert cert.plan.policy == "layer-serial"
        assert cert.plan.fallback_from == "chain-affine"

    def test_poison_is_harmless_without_cross_edges(self, unit, effects):
        # layer-serial has no cross-stream edges, so dropping waits
        # changes nothing and the plan certifies as itself.
        plan = build_plan(unit.graph, "layer-serial", 1)
        cert = certify(unit.graph, plan, effects=effects,
                       drop_waits=True, device=P100)
        assert cert.plan.policy == "layer-serial"
        assert not cert.fell_back


class TestSessionHazardInjection:
    def test_injected_session_reports_ok_only_via_fallback(self):
        report = run_interop_session(action="plan", unit="5a", batch=2,
                                     streams=4, inject_hazard=True)
        assert report.ok
        poisoned = [e for e in report.entries if e.cross_edges > 0]
        assert poisoned
        assert all(e.fell_back for e in poisoned)

    def test_clean_session_has_no_fallbacks(self):
        report = run_interop_session(action="plan", unit="5a", batch=2,
                                     streams=4)
        assert report.ok
        assert not any(e.fell_back for e in report.entries)
        assert all(e.plan.certified for e in report.entries)
