"""Tests for activation, LRN, inner-product, dropout and concat layers."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layers import (
    ConcatLayer,
    DropoutLayer,
    InnerProductLayer,
    LRNLayer,
    ReLULayer,
    SigmoidLayer,
    TanHLayer,
)
from tests.conftest import assert_grad_close, numeric_gradient

RNG = lambda s=0: np.random.default_rng(s)


def grad_check_elementwise(layer, shape=(2, 3, 4, 4), seed=1, eps=1e-2):
    layer.setup([shape], RNG(seed))
    rng = RNG(seed + 1)
    x = rng.normal(size=shape).astype(np.float32)
    # keep inputs away from non-differentiable kinks (ReLU at 0) so the
    # central difference does not straddle them
    x = np.where(np.abs(x) < 5 * eps, np.sign(x) * 5 * eps + x, x)
    dout = rng.normal(size=shape).astype(np.float32)

    def loss():
        return float(np.sum(layer.forward([x])[0] * dout))

    (y,) = layer.forward([x])
    (dx,) = layer.backward([dout], [x], [y])
    num = numeric_gradient(loss, x, eps=eps)
    assert_grad_close(dx, num)


class TestActivations:
    def test_relu_forward(self):
        layer = ReLULayer("r")
        layer.setup([(1, 4)], RNG())
        (y,) = layer.forward([np.array([[-1, 0, 2, -3]], dtype=np.float32)])
        np.testing.assert_array_equal(y, [[0, 0, 2, 0]])

    def test_leaky_relu(self):
        layer = ReLULayer("r", negative_slope=0.1)
        layer.setup([(1, 2)], RNG())
        (y,) = layer.forward([np.array([[-10.0, 10.0]], dtype=np.float32)])
        np.testing.assert_allclose(y, [[-1.0, 10.0]], rtol=1e-6)

    def test_relu_gradient(self):
        grad_check_elementwise(ReLULayer("r"))

    def test_sigmoid_range_and_gradient(self):
        layer = SigmoidLayer("s")
        layer.setup([(2, 8)], RNG())
        x = RNG(3).normal(size=(2, 8)).astype(np.float32) * 5
        (y,) = layer.forward([x])
        assert (y > 0).all() and (y < 1).all()
        grad_check_elementwise(SigmoidLayer("s2"), shape=(2, 8))

    def test_sigmoid_extreme_values_stable(self):
        layer = SigmoidLayer("s")
        layer.setup([(1, 2)], RNG())
        (y,) = layer.forward([np.array([[-100.0, 100.0]], dtype=np.float32)])
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y, [[0.0, 1.0]], atol=1e-6)

    def test_tanh_gradient(self):
        grad_check_elementwise(TanHLayer("t"), shape=(3, 5))


class TestLRN:
    def test_identity_when_alpha_zero(self):
        layer = LRNLayer("n", local_size=5, alpha=0.0, beta=0.75)
        layer.setup([(1, 8, 3, 3)], RNG())
        x = RNG(1).normal(size=(1, 8, 3, 3)).astype(np.float32)
        (y,) = layer.forward([x])
        np.testing.assert_allclose(y, x, rtol=1e-5)

    def test_matches_reference(self):
        layer = LRNLayer("n", local_size=3, alpha=0.5, beta=0.75, k=2.0)
        layer.setup([(1, 4, 1, 1)], RNG())
        x = np.arange(1, 5, dtype=np.float32).reshape(1, 4, 1, 1)
        (y,) = layer.forward([x])
        for c in range(4):
            lo, hi = max(0, c - 1), min(4, c + 2)
            scale = 2.0 + (0.5 / 3) * float(np.sum(x[0, lo:hi] ** 2))
            assert y[0, c, 0, 0] == pytest.approx(
                x[0, c, 0, 0] * scale ** -0.75, rel=1e-5
            )

    def test_gradient(self):
        layer = LRNLayer("n", local_size=3, alpha=0.3, beta=0.75)
        layer.setup([(2, 5, 2, 2)], RNG())
        rng = RNG(4)
        x = rng.normal(size=(2, 5, 2, 2)).astype(np.float32)
        dout = rng.normal(size=(2, 5, 2, 2)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([x])[0] * dout))

        (y,) = layer.forward([x])
        (dx,) = layer.backward([dout], [x], [y])
        num = numeric_gradient(loss, x)
        assert_grad_close(dx, num)

    def test_even_size_rejected(self):
        with pytest.raises(NetworkError):
            LRNLayer("n", local_size=4)


class TestInnerProduct:
    def test_forward_shape_flattens(self):
        layer = InnerProductLayer("ip", 7)
        layer.setup([(3, 2, 4, 4)], RNG())
        x = RNG(1).normal(size=(3, 2, 4, 4)).astype(np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (3, 7)

    def test_linear_algebra(self):
        layer = InnerProductLayer("ip", 2)
        layer.setup([(1, 3)], RNG())
        layer.params[0].data[...] = [[1, 0, 0], [0, 2, 0]]
        layer.params[1].data[...] = [10, 20]
        (y,) = layer.forward([np.array([[1, 2, 3]], dtype=np.float32)])
        np.testing.assert_allclose(y, [[11, 24]])

    def test_gradients(self):
        layer = InnerProductLayer("ip", 4)
        layer.setup([(2, 6)], RNG(5))
        rng = RNG(6)
        x = rng.normal(size=(2, 6)).astype(np.float32)
        dout = rng.normal(size=(2, 4)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([x])[0] * dout))

        layer.forward([x])
        layer.zero_param_diffs()
        (dx,) = layer.backward([dout], [x], [None])
        assert_grad_close(dx, numeric_gradient(loss, x))
        assert_grad_close(layer.params[0].diff,
                          numeric_gradient(loss, layer.params[0].data))
        assert_grad_close(layer.params[1].diff,
                          numeric_gradient(loss, layer.params[1].data))

    def test_lr_mult_defaults(self):
        layer = InnerProductLayer("ip", 4)
        layer.setup([(2, 6)], RNG())
        assert layer.lr_mult == [1.0, 2.0]
        assert layer.decay_mult == [1.0, 0.0]


class TestDropout:
    def test_test_mode_identity(self):
        layer = DropoutLayer("d", 0.5)
        layer.setup([(4, 10)], RNG())
        layer.train_mode = False
        x = RNG(1).normal(size=(4, 10)).astype(np.float32)
        (y,) = layer.forward([x])
        np.testing.assert_array_equal(y, x)

    def test_inverted_scaling_preserves_expectation(self):
        layer = DropoutLayer("d", 0.5)
        layer.setup([(1, 100_000)], RNG(3))
        x = np.ones((1, 100_000), dtype=np.float32)
        (y,) = layer.forward([x])
        assert float(y.mean()) == pytest.approx(1.0, abs=0.02)
        assert set(np.unique(y)).issubset({0.0, 2.0})

    def test_backward_uses_same_mask(self):
        layer = DropoutLayer("d", 0.5)
        layer.setup([(1, 1000)], RNG(4))
        x = np.ones((1, 1000), dtype=np.float32)
        (y,) = layer.forward([x])
        dout = np.ones_like(x)
        (dx,) = layer.backward([dout], [x], [y])
        np.testing.assert_array_equal(dx, y)

    def test_phase_flag(self):
        assert DropoutLayer("d", 0.5).phase_train_only

    def test_invalid_ratio(self):
        with pytest.raises(NetworkError):
            DropoutLayer("d", 1.0)


class TestConcat:
    def test_forward_concatenates_channels(self):
        layer = ConcatLayer("c")
        layer.setup([(1, 2, 3, 3), (1, 5, 3, 3)], RNG())
        a = np.zeros((1, 2, 3, 3), dtype=np.float32)
        b = np.ones((1, 5, 3, 3), dtype=np.float32)
        (y,) = layer.forward([a, b])
        assert y.shape == (1, 7, 3, 3)
        assert (y[:, :2] == 0).all() and (y[:, 2:] == 1).all()

    def test_backward_splits(self):
        layer = ConcatLayer("c")
        layer.setup([(1, 2, 2, 2), (1, 3, 2, 2)], RNG())
        a = np.zeros((1, 2, 2, 2), dtype=np.float32)
        b = np.zeros((1, 3, 2, 2), dtype=np.float32)
        layer.forward([a, b])
        dout = np.arange(20, dtype=np.float32).reshape(1, 5, 2, 2)
        da, db = layer.backward([dout], [a, b], [None])
        np.testing.assert_array_equal(da, dout[:, :2])
        np.testing.assert_array_equal(db, dout[:, 2:])

    def test_mismatched_spatial_rejected(self):
        layer = ConcatLayer("c")
        with pytest.raises(NetworkError):
            layer.setup([(1, 2, 3, 3), (1, 2, 4, 4)], RNG())
