"""Tests for timeline trace analysis."""

import pytest

from repro.gpusim import GPU, get_device
from repro.gpusim.timeline import Timeline, TraceRecord
from repro.gpusim.traceanalysis import TraceStats, analyze, per_stream_busy
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.executor import FixedStreamExecutor, NaiveExecutor
from repro.runtime.lowering import lower_conv_forward


def rec(stream=1, start=0.0, end=10.0, enqueue=None):
    return TraceRecord(
        name="k", tag="", stream_id=stream,
        enqueue_us=start - 1.0 if enqueue is None else enqueue,
        start_us=start, end_us=end,
        grid=(1, 1, 1), block=(32, 1, 1), registers=8, shared_mem=0,
    )


class TestAnalyze:
    def test_empty(self):
        stats = analyze(Timeline())
        assert stats.kernels == 0 and stats.busy_us == 0.0

    def test_disjoint_intervals(self):
        t = Timeline()
        t.add(rec(start=0, end=10))
        t.add(rec(start=20, end=25))
        stats = analyze(t)
        assert stats.busy_us == pytest.approx(15.0)
        assert stats.overlap_us == 0.0
        assert stats.span_us == pytest.approx(25.0)
        assert stats.busy_fraction == pytest.approx(15 / 25)

    def test_overlapping_intervals(self):
        t = Timeline()
        t.add(rec(stream=1, start=0, end=10))
        t.add(rec(stream=2, start=5, end=15))
        stats = analyze(t)
        assert stats.busy_us == pytest.approx(15.0)
        assert stats.overlap_us == pytest.approx(5.0)
        assert stats.overlap_fraction == pytest.approx(5 / 15)
        assert stats.max_concurrency == 2

    def test_launch_gap(self):
        t = Timeline()
        t.add(rec(start=0, end=1, enqueue=0.0))
        t.add(rec(start=2, end=3, enqueue=6.0))
        t.add(rec(start=4, end=5, enqueue=12.0))
        assert analyze(t).mean_launch_gap_us == pytest.approx(6.0)

    def test_per_stream_busy(self):
        t = Timeline()
        t.add(rec(stream=1, start=0, end=10))
        t.add(rec(stream=1, start=20, end=25))
        t.add(rec(stream=2, start=0, end=3))
        busy = per_stream_busy(t)
        assert busy[1] == pytest.approx(15.0)
        assert busy[2] == pytest.approx(3.0)


class TestOnRealTraces:
    def test_multistream_overlaps_naive_does_not(self):
        work = lower_conv_forward(CIFAR10_CONVS[2])

        g1 = GPU(get_device("P100"))
        NaiveExecutor(g1).run(work)
        serial = analyze(g1.timeline)
        assert serial.overlap_us == 0.0

        g2 = GPU(get_device("P100"))
        FixedStreamExecutor(g2, 8).run(work)
        concurrent = analyze(g2.timeline)
        assert concurrent.overlap_fraction > 0.3
        assert concurrent.max_concurrency >= 4

    def test_launch_gap_tracks_device_latency(self):
        work = lower_conv_forward(CIFAR10_CONVS[0])
        gpu = GPU(get_device("K40C"))
        NaiveExecutor(gpu).run(work)
        stats = analyze(gpu.timeline)
        assert stats.mean_launch_gap_us >= gpu.props.launch_latency_us * 0.9
