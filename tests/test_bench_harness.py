"""Tests for the bench harness and reporting (cheap experiments only)."""

import json

import pytest

from repro.bench.harness import ExperimentResult, cached, clear_cache
from repro.bench.reporting import format_series, format_table
from repro.bench.table1 import run_table1


class TestReporting:
    def test_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1   # all rows aligned

    def test_series_bars_scale(self):
        out = format_series("s", ["x1", "x2"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[2].count("#") == 10       # peak gets full width
        assert lines[1].count("#") == 5

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment="figX", title="demo",
            headers=["k", "v"], rows=[["a", 1.0], ["b", 2.0]],
            notes="n",
        )

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "[figX]" in text and "demo" in text and "note: n" in text

    def test_column(self):
        assert self._result().column("v") == [1.0, 2.0]

    def test_json_roundtrip(self):
        doc = json.loads(self._result().to_json())
        assert doc["experiment"] == "figX"
        assert doc["rows"][1] == ["b", 2.0]

    def test_cached_decorator_runs_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nowhere"))
        calls = []

        @cached("test_only_key")
        def runner():
            calls.append(1)
            return ExperimentResult("test_only_key", "t", ["a"], [[1]])

        runner()
        runner()
        assert len(calls) == 1
        clear_cache()
        runner()
        assert len(calls) == 2
        clear_cache()

    def test_dump_writes_files(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))

        @cached("dump_test_key")
        def runner():
            return ExperimentResult("dump_test_key", "t", ["a"], [[1]])

        runner()
        clear_cache()
        assert (tmp_path / "dump_test_key.json").exists()
        assert (tmp_path / "dump_test_key.txt").exists()


class TestCheapExperiments:
    def test_table1_matches_paper(self):
        result = run_table1()
        col = result.column("Max Concurrent Kernels")
        assert col == [1, 16, 32, 16, 128, 128]

    def test_fig3_shows_overlap(self):
        from repro.bench.fig3 import run_fig3
        result = run_fig3()
        assert result.extra["max_concurrency"] >= 2
        assert len(result.rows) == 4  # one lane per stream
