"""Tests for async memcpy on the DMA copy engines."""

import pytest

from repro.errors import DeviceError
from repro.gpusim import GPU, get_device
from tests.conftest import small_kernel

MB = 1024 * 1024


class TestMemcpyBasics:
    def test_completes_with_duration(self, p100):
        op = p100.memcpy(12 * MB, "h2d")
        p100.synchronize()
        # 12 MiB over ~12 GB/s ~ 1 ms + latency
        assert op.duration_us == pytest.approx(
            p100.props.copy_latency_us
            + 12 * MB / (p100.props.pcie_bandwidth_gbps * 1e3),
            rel=1e-6,
        )

    def test_d2d_uses_device_bandwidth(self, p100):
        h2d = p100.memcpy(64 * MB, "h2d")
        d2d = p100.memcpy(64 * MB, "d2d")
        p100.synchronize()
        assert d2d.duration_us < h2d.duration_us

    def test_bytes_accounted(self, p100):
        p100.memcpy(1000, "h2d")
        p100.memcpy(500, "d2h")
        p100.synchronize()
        assert p100.bytes_copied["h2d"] == 1000
        assert p100.bytes_copied["d2h"] == 500

    def test_invalid_kind(self, p100):
        with pytest.raises(DeviceError):
            p100.memcpy(10, "sideways")

    def test_invalid_size(self, p100):
        with pytest.raises(DeviceError):
            p100.memcpy(0)

    def test_timeline_record(self, p100):
        p100.memcpy(MB, "h2d")
        p100.synchronize()
        (rec,) = p100.timeline.records
        assert rec.name == "memcpyH2D"


class TestCopyEngineSemantics:
    def test_same_direction_serializes(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.memcpy(32 * MB, "h2d", stream=s1)
        b = p100.memcpy(32 * MB, "h2d", stream=s2)
        p100.synchronize()
        # one engine per direction: no overlap even across streams
        assert b.start_time >= a.end_time - 1e-6

    def test_opposite_directions_overlap(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.memcpy(32 * MB, "h2d", stream=s1)
        b = p100.memcpy(32 * MB, "d2h", stream=s2)
        p100.synchronize()
        assert b.start_time < a.end_time

    def test_copy_overlaps_compute_on_other_stream(self, p100):
        s1, s2 = p100.create_stream(), p100.create_stream()
        copy = p100.memcpy(64 * MB, "h2d", stream=s1)
        k = p100.launch(small_kernel(flops=3_000_000.0), stream=s2)
        p100.synchronize()
        assert k.start_time < copy.end_time   # genuine overlap

    def test_stream_order_with_kernels(self, p100):
        """Copy then kernel on one stream: the kernel waits for the data."""
        s = p100.create_stream()
        copy = p100.memcpy(32 * MB, "h2d", stream=s)
        k = p100.launch(small_kernel(), stream=s)
        p100.synchronize()
        assert k.start_time >= copy.end_time - 1e-6

    def test_default_stream_barrier_applies(self, p100):
        s = p100.create_stream()
        k = p100.launch(small_kernel(flops=2_000_000.0), stream=s)
        copy = p100.memcpy(MB, "h2d")   # default stream: waits for all
        p100.synchronize()
        assert copy.start_time >= k.end_time - 1e-6
