"""Tests for the occupancy calculator."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.device import get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.occupancy import (
    max_active_blocks_per_sm,
    occupancy,
    validate_launch,
)


def lc(blocks=100, threads=256, smem=0, regs=32):
    return LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1),
                        shared_mem_dynamic=smem, registers_per_thread=regs)


class TestResidencyLimits:
    def test_thread_limited(self):
        res = max_active_blocks_per_sm(get_device("P100"), lc(threads=256))
        assert res.blocks_per_sm == 2048 // 256
        assert res.limiter == "threads"

    def test_smem_limited(self):
        # 20 KiB blocks on a 64 KiB SM -> 3 resident
        res = max_active_blocks_per_sm(get_device("P100"),
                                       lc(threads=64, smem=20 * 1024))
        assert res.blocks_per_sm == 3
        assert res.limiter == "shared_mem"

    def test_register_limited(self):
        # 128 regs x 512 threads = 64Ki regs per block on a 64Ki file
        res = max_active_blocks_per_sm(get_device("P100"),
                                       lc(threads=512, regs=128))
        assert res.blocks_per_sm == 1
        assert res.limiter == "registers"

    def test_block_slot_limited(self):
        res = max_active_blocks_per_sm(get_device("K40C"),
                                       lc(threads=32, regs=8))
        assert res.blocks_per_sm == 16          # Kepler rho_max
        assert res.limiter == "blocks"

    def test_active_warps_capped_at_device_max(self):
        res = max_active_blocks_per_sm(get_device("P100"), lc(threads=1024))
        assert res.active_warps <= res.max_warps


class TestOccupancyRatio:
    def test_full_occupancy(self):
        # 8 x 256-thread blocks per SM saturate 2048 thread slots
        assert occupancy(get_device("P100"), lc(blocks=10_000)) == 1.0

    def test_tiny_grid_low_occupancy(self):
        # 2 blocks on 56 SMs: the paper's underutilization scenario
        ratio = occupancy(get_device("P100"), lc(blocks=2, threads=512))
        assert ratio < 0.05

    def test_ratio_monotone_in_grid(self):
        dev = get_device("P100")
        r = [occupancy(dev, lc(blocks=b)) for b in (1, 28, 56, 112, 448)]
        assert all(r[i] <= r[i + 1] + 1e-12 for i in range(len(r) - 1))

    def test_ratio_in_unit_interval(self):
        dev = get_device("K40C")
        for blocks in (1, 7, 15, 16, 100, 10_000):
            assert 0.0 < occupancy(dev, lc(blocks=blocks)) <= 1.0


class TestValidation:
    def test_oversized_block_rejected(self):
        with pytest.raises(LaunchError, match="exceeds device"):
            validate_launch(get_device("P100"), lc(threads=2048))

    def test_oversized_smem_rejected(self):
        with pytest.raises(LaunchError):
            validate_launch(get_device("P100"), lc(smem=49 * 1024))

    def test_oversized_registers_rejected(self):
        with pytest.raises(LaunchError):
            validate_launch(get_device("P100"), lc(threads=1024, regs=128))

    def test_valid_launch_passes(self):
        validate_launch(get_device("P100"), lc())
