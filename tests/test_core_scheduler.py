"""Tests for the runtime scheduler (Fig. 6 workflow)."""

import pytest

from repro.core import GLP4NN
from repro.core.runtime_scheduler import DispatchPolicy
from repro.errors import DeviceError
from repro.gpusim import GPU, get_device
from repro.kernels.ir import KernelChain, LayerWork
from tests.conftest import small_kernel


def work(layer="conv1", samples=6, flops=150_000.0):
    chains = tuple(
        KernelChain((
            small_kernel("im2col", blocks=2, threads=512, regs=33,
                         flops=flops / 4, tag=f"s{i}"),
            small_kernel("sgemm", blocks=4, threads=256, smem=4096,
                         flops=flops, tag=f"s{i}"),
        ))
        for i in range(samples)
    )
    return LayerWork(layer=layer, phase="forward", parallel_chains=chains)


class TestWorkflow:
    def test_first_run_profiles(self, p100):
        glp = GLP4NN([p100])
        run = glp.run_layer(p100, work())
        assert run.profiled
        assert run.streams_used == 1
        assert glp.tracker.has(p100, "conv1/forward")

    def test_second_run_dispatches_concurrently(self, p100):
        glp = GLP4NN([p100])
        glp.run_layer(p100, work())
        run = glp.run_layer(p100, work())
        assert not run.profiled
        assert run.decision is not None
        assert run.streams_used == run.decision.c_out

    def test_kernels_all_executed_both_paths(self, p100):
        glp = GLP4NN([p100])
        w = work(samples=5)
        glp.run_layer(p100, w)
        glp.run_layer(p100, w)
        assert p100.kernels_completed == 2 * w.num_kernels

    def test_profiling_pass_slower_than_steady_state(self, p100):
        glp = GLP4NN([p100])
        w = work()
        first = glp.run_layer(p100, w)
        second = glp.run_layer(p100, w)
        assert second.elapsed_us < first.elapsed_us

    def test_decision_cached_not_recomputed(self, p100):
        glp = GLP4NN([p100])
        w = work()
        glp.run_layer(p100, w)
        glp.run_layer(p100, w)
        d1 = glp.run_layer(p100, w).decision
        maintainer = glp.analyzer_for(p100).maintainer
        assert maintainer.get("conv1/forward") is d1

    def test_serial_kernels_run_after_chains(self, p100):
        chains = (KernelChain((small_kernel("a", flops=300_000.0,
                                            tag="s0"),)),
                  KernelChain((small_kernel("a", flops=300_000.0,
                                            tag="s1"),)))
        serial = (small_kernel("reduce", tag="r"),)
        w = LayerWork(layer="l", phase="backward",
                      parallel_chains=chains, serial_kernels=serial)
        glp = GLP4NN([p100])
        glp.run_layer(p100, w)        # profile
        p100.timeline.clear()
        glp.run_layer(p100, w)        # concurrent dispatch
        recs = {r.name: r for r in p100.timeline.records}
        chain_end = max(r.end_us for r in p100.timeline.records
                        if r.name == "a")
        assert recs["reduce"].start_us >= chain_end

    def test_run_records_accumulate(self, p100):
        glp = GLP4NN([p100])
        sched = glp.scheduler_for(p100)
        glp.run_layer(p100, work())
        glp.run_layer(p100, work())
        assert len(sched.runs) == 2
        assert sched.total_time_us() > 0
        sched.reset_runs()
        assert sched.runs == []


class TestPolicies:
    def test_single_policy_never_profiles(self, p100):
        glp = GLP4NN([p100], policy=DispatchPolicy.SINGLE)
        run = glp.run_layer(p100, work())
        assert not run.profiled
        assert run.streams_used == 1
        assert not glp.tracker.has(p100, "conv1/forward")

    def test_fixed_policy_uses_requested_streams(self, p100):
        glp = GLP4NN([p100], policy=DispatchPolicy.FIXED, fixed_streams=5)
        run = glp.run_layer(p100, work())
        assert run.streams_used == 5

    def test_max_policy(self, p100):
        glp = GLP4NN([p100], policy=DispatchPolicy.MAX)
        run = glp.run_layer(p100, work())
        assert run.streams_used == p100.props.max_concurrent_kernels

    def test_round_robin_assignment(self, p100):
        glp = GLP4NN([p100], policy=DispatchPolicy.FIXED, fixed_streams=3)
        p100.timeline.clear()
        glp.run_layer(p100, work(samples=6))
        by_stream = p100.timeline.by_stream()
        # 6 chains over 3 streams -> 2 chains (4 kernels) per stream
        non_default = {k: v for k, v in by_stream.items() if k != 0}
        assert len(non_default) == 3
        assert all(len(v) == 4 for v in non_default.values())


class TestFramework:
    def test_multi_gpu_private_modules(self, p100, k40c):
        glp = GLP4NN([p100, k40c])
        assert glp.scheduler_for(p100) is not glp.scheduler_for(k40c)
        assert glp.analyzer_for(p100) is not glp.analyzer_for(k40c)
        # shared tracker and stream manager
        assert glp.scheduler_for(p100).tracker is \
            glp.scheduler_for(k40c).tracker
        assert glp.scheduler_for(p100).streams is \
            glp.scheduler_for(k40c).streams

    def test_unmanaged_gpu_rejected(self, p100, k40c):
        glp = GLP4NN([p100])
        with pytest.raises(DeviceError):
            glp.run_layer(k40c, work())

    def test_no_gpus_rejected(self):
        with pytest.raises(DeviceError):
            GLP4NN([])

    def test_warm_up(self, p100):
        glp = GLP4NN([p100])
        glp.warm_up(p100, [work("a"), work("b")])
        assert glp.tracker.has(p100, "a/forward")
        assert glp.tracker.has(p100, "b/forward")

    def test_decisions_view(self, p100):
        glp = GLP4NN([p100])
        glp.run_layer(p100, work())
        decisions = glp.decisions(p100)
        assert "conv1/forward" in decisions
