"""Tests for the multi-threaded dispatch baseline."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.gpusim import GPU, get_device
from repro.kernels.ir import KernelChain, LayerWork
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import NaiveExecutor
from repro.runtime.lowering import lower_conv_forward
from repro.runtime.multithread import (
    DRIVER_CONTENTION,
    MultiThreadDispatcher,
    THREAD_SPAWN_US,
)
from tests.conftest import small_kernel


def fresh():
    return GPU(get_device("P100"), record_timeline=False)


def kernel_starts(gpu) -> list[float]:
    """Sorted start times of every kernel on the device's timeline."""
    return sorted(rec.start_us
                  for recs in gpu.timeline.by_stream().values()
                  for rec in recs)


def toy_work(chains: int, depth: int = 1) -> LayerWork:
    """A layer of ``chains`` independent chains, ``depth`` kernels each."""
    return LayerWork(
        layer="toy", phase="forward",
        parallel_chains=tuple(
            KernelChain(tuple(small_kernel(f"c{i}k{j}", flops=200_000.0)
                              for j in range(depth)), label=f"c{i}")
            for i in range(chains)
        ),
    )


class TestEnqueueAt:
    def test_explicit_enqueue_time_respected(self, p100):
        s = p100.create_stream()
        ke = p100.launch(small_kernel(), stream=s, enqueue_at=100.0)
        p100.synchronize()
        assert ke.enqueue_time == pytest.approx(100.0)
        assert ke.start_time >= 100.0

    def test_past_enqueue_rejected(self, p100):
        p100.launch(small_kernel(flops=500_000.0))
        p100.synchronize()             # device time has advanced
        with pytest.raises(SimulationError, match="past"):
            p100.launch(small_kernel(), enqueue_at=0.0)

    def test_parallel_lanes_overlap_launches(self, p100):
        """Two 'threads' stamping t=10 get concurrent starts, unlike the
        serialized single-thread pipeline."""
        s1, s2 = p100.create_stream(), p100.create_stream()
        a = p100.launch(small_kernel("a", flops=300_000.0), stream=s1,
                        enqueue_at=10.0)
        b = p100.launch(small_kernel("b", flops=300_000.0), stream=s2,
                        enqueue_at=10.0)
        p100.synchronize()
        assert abs(a.start_time - b.start_time) < 1.0


class TestDispatcher:
    def test_requires_valid_thread_count(self):
        with pytest.raises(SchedulingError):
            MultiThreadDispatcher(fresh(), 0)

    def test_thread_count_capped_by_device(self):
        gpu = GPU(get_device("GTX980"))     # C = 16
        with pytest.raises(SchedulingError):
            MultiThreadDispatcher(gpu, 17)

    def test_all_kernels_execute(self):
        work = lower_conv_forward(SIAMESE_CONVS[0])
        d = MultiThreadDispatcher(fresh(), 4)
        run = d.run(work)
        assert run.launches == work.num_kernels
        assert d.gpu.kernels_completed == work.num_kernels

    def test_chain_order_preserved_within_thread(self):
        gpu = GPU(get_device("P100"))
        d = MultiThreadDispatcher(gpu, 2)
        d.run(lower_conv_forward(SIAMESE_CONVS[0]))
        for sid, recs in gpu.timeline.by_stream().items():
            for a, b in zip(recs, recs[1:]):
                assert b.start_us >= a.end_us - 1e-6

    def test_more_threads_faster_on_launch_bound_layer(self):
        """Parallel launch pipelines lift the Eq. 7 bottleneck ..."""
        work = lower_conv_forward(SIAMESE_CONVS[0])
        times = {}
        for k in (1, 4):
            d = MultiThreadDispatcher(fresh(), k)
            d.run(work)
            times[k] = d.run(work).elapsed_us
        assert times[4] < times[1]

    def test_but_costs_cpu_threads(self):
        """... which is the trade-off the paper's critique is about."""
        d = MultiThreadDispatcher(fresh(), 8)
        run = d.run(lower_conv_forward(SIAMESE_CONVS[0]))
        assert run.threads_used == 8

    def test_spawn_overhead_charged(self):
        work = lower_conv_forward(CIFAR10_CONVS[0])
        naive = NaiveExecutor(fresh())
        naive.run(work)
        t_naive = naive.run(work).elapsed_us
        d = MultiThreadDispatcher(fresh(), 1)
        d.run(work)
        t_one_thread = d.run(work).elapsed_us
        # one dispatch thread ~ the naive pipeline + fork/join overhead
        assert t_one_thread >= t_naive
        assert t_one_thread <= t_naive + 4 * THREAD_SPAWN_US


class TestEdgeCases:
    def test_single_thread_is_the_serialized_baseline_shifted(self):
        """k=1: the exact serialized launch pipeline, delayed one spawn.

        With one dispatch thread there is no contention (the inflation
        factor degenerates to 1.0) and no chain interleaving, so every
        kernel start matches a plain single-stream launch loop shifted by
        exactly ``THREAD_SPAWN_US``.
        """
        work = lower_conv_forward(CIFAR10_CONVS[0])
        serial_gpu = GPU(get_device("P100"))
        for chain in work.parallel_chains:
            for spec in chain:
                serial_gpu.launch(spec)
        serial_gpu.synchronize()
        mt_gpu = GPU(get_device("P100"))
        MultiThreadDispatcher(mt_gpu, 1).run(work)
        serial, mt = kernel_starts(serial_gpu), kernel_starts(mt_gpu)
        assert len(mt) == len(serial) == work.num_kernels
        for a, b in zip(serial, mt):
            assert b == pytest.approx(a + THREAD_SPAWN_US)

    def test_more_threads_than_chains_leaves_threads_idle(self):
        work = toy_work(chains=4)
        gpu = GPU(get_device("P100"))
        d = MultiThreadDispatcher(gpu, 8)
        run = d.run(work)
        assert run.launches == work.num_kernels == 4
        assert gpu.kernels_completed == 4
        # Round-robin touches only the first ``chains`` threads; the other
        # four streams never see a kernel.
        busy = {sid for sid, recs in gpu.timeline.by_stream().items()
                if recs}
        assert len(busy) == 4

    def test_driver_contention_monotonic_in_thread_count(self):
        """More launchers, more lock contention: a single-chain layer gets
        strictly slower as threads are added (they cannot help — there is
        only one chain — but they still inflate every launch)."""
        work = toy_work(chains=1, depth=8)
        elapsed = []
        for k in (1, 2, 4, 8):
            d = MultiThreadDispatcher(fresh(), k)
            elapsed.append(d.run(work).elapsed_us)
        assert elapsed == sorted(elapsed)
        assert all(a < b for a, b in zip(elapsed, elapsed[1:]))

    def test_contention_factor_matches_model(self):
        """The per-launch inflation is exactly the documented formula."""
        gpu = GPU(get_device("P100"))
        d = MultiThreadDispatcher(gpu, 4)
        d.run(toy_work(chains=1, depth=4))
        per_launch = gpu.props.launch_latency_us * (
            1.0 + 3 * DRIVER_CONTENTION)
        enqueues = sorted(rec.enqueue_us
                          for recs in gpu.timeline.by_stream().values()
                          for rec in recs)
        gaps = [b - a for a, b in zip(enqueues, enqueues[1:])]
        assert gaps == pytest.approx([per_launch] * 3)
