"""Tests for the architecture feature table (paper Table 1)."""

import pytest

from repro.gpusim.arch import (
    ARCH_FEATURES,
    Architecture,
    concurrency_degree,
    features_of,
)


class TestTable1Contents:
    """The feature table must match the paper's Table 1 exactly."""

    @pytest.mark.parametrize("arch,expected", [
        (Architecture.TESLA, 1),
        (Architecture.FERMI, 16),
        (Architecture.KEPLER, 32),
        (Architecture.MAXWELL, 16),
        (Architecture.PASCAL, 128),
        (Architecture.VOLTA, 128),
    ])
    def test_max_concurrent_kernels(self, arch, expected):
        assert concurrency_degree(arch) == expected

    def test_tesla_has_no_streams(self):
        assert not features_of(Architecture.TESLA).streams

    def test_streams_from_fermi_on(self):
        for arch in (Architecture.FERMI, Architecture.KEPLER,
                     Architecture.MAXWELL, Architecture.PASCAL,
                     Architecture.VOLTA):
            assert features_of(arch).streams

    def test_dynamic_parallelism_starts_at_kepler(self):
        assert not features_of(Architecture.FERMI).dynamic_parallelism
        assert features_of(Architecture.KEPLER).dynamic_parallelism

    def test_uvm_starts_at_pascal(self):
        assert not features_of(Architecture.MAXWELL).uvm
        assert features_of(Architecture.PASCAL).uvm
        assert features_of(Architecture.VOLTA).uvm

    def test_tensor_cores_only_volta(self):
        only = [a for a in Architecture if features_of(a).tensor_cores]
        assert only == [Architecture.VOLTA]

    def test_every_architecture_has_features(self):
        assert set(ARCH_FEATURES) == set(Architecture)

    def test_concurrency_degree_positive(self):
        for arch in Architecture:
            assert concurrency_degree(arch) >= 1
