"""Tests for inference requests and arrival-trace generation."""

import pytest

from repro.errors import ReproError
from repro.serve.request import (
    ArrivalTrace,
    InferenceRequest,
    bursty_trace,
    make_trace,
    poisson_trace,
)


class TestInferenceRequest:
    def test_slo_budget(self):
        r = InferenceRequest(0, arrival_us=10.0, deadline_us=110.0)
        assert r.slo_us == 100.0

    def test_rejects_negative_arrival(self):
        with pytest.raises(ReproError, match="negative arrival"):
            InferenceRequest(0, arrival_us=-1.0, deadline_us=10.0)

    def test_rejects_deadline_before_arrival(self):
        with pytest.raises(ReproError, match="precedes"):
            InferenceRequest(0, arrival_us=50.0, deadline_us=10.0)


class TestPoissonTrace:
    def test_same_seed_same_trace(self):
        a = poisson_trace(5_000, 20_000, 1_000, seed=42)
        b = poisson_trace(5_000, 20_000, 1_000, seed=42)
        assert a.requests == b.requests

    def test_different_seed_different_trace(self):
        a = poisson_trace(5_000, 20_000, 1_000, seed=1)
        b = poisson_trace(5_000, 20_000, 1_000, seed=2)
        assert a.requests != b.requests

    def test_offered_rate_near_nominal(self):
        # Long trace: realized rate within 15% of the requested rate.
        t = poisson_trace(10_000, 1_000_000, 1_000, seed=0)
        assert t.offered_rps == pytest.approx(10_000, rel=0.15)

    def test_arrivals_sorted_with_deadlines(self):
        t = poisson_trace(2_000, 50_000, 3_000, seed=3)
        arrivals = [r.arrival_us for r in t]
        assert arrivals == sorted(arrivals)
        assert all(r.deadline_us == r.arrival_us + 3_000 for r in t)
        assert [r.rid for r in t] == list(range(len(t)))

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            poisson_trace(0, 1_000, 1_000)
        with pytest.raises(ReproError):
            poisson_trace(1_000, 0, 1_000)
        with pytest.raises(ReproError):
            poisson_trace(1_000, 1_000, 0)


class TestBurstyTrace:
    def test_deterministic(self):
        a = bursty_trace(5_000, 50_000, 1_000, seed=9)
        b = bursty_trace(5_000, 50_000, 1_000, seed=9)
        assert a.requests == b.requests

    def test_average_rate_preserved(self):
        t = bursty_trace(10_000, 1_000_000, 1_000, seed=0)
        assert t.offered_rps == pytest.approx(10_000, rel=0.2)

    def test_bursts_are_denser_than_quiet_phases(self):
        t = bursty_trace(10_000, 500_000, 1_000, seed=1,
                         burst_factor=4.0, period_us=2_000, duty_cycle=0.25)
        burst = sum(1 for r in t if (r.arrival_us % 2_000) / 2_000 < 0.25)
        quiet = len(t) - burst
        # Burst windows are 1/4 of the time but carry most arrivals.
        assert burst > quiet

    def test_validation(self):
        with pytest.raises(ReproError, match="burst factor"):
            bursty_trace(1_000, 1_000, 100, burst_factor=0.5)
        with pytest.raises(ReproError, match="duty cycle"):
            bursty_trace(1_000, 1_000, 100, duty_cycle=1.5)


class TestMakeTrace:
    def test_dispatches_by_kind(self):
        p = make_trace("poisson", 1_000, 10_000, 500, seed=1)
        b = make_trace("bursty", 1_000, 10_000, 500, seed=1)
        assert p.kind == "poisson" and b.kind == "bursty"

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown trace kind"):
            make_trace("adversarial", 1_000, 10_000, 500)


class TestArrivalTrace:
    def test_rejects_unsorted(self):
        reqs = (InferenceRequest(0, 10.0, 20.0),
                InferenceRequest(1, 5.0, 25.0))
        with pytest.raises(ReproError, match="sorted"):
            ArrivalTrace(reqs, kind="poisson", rps=1.0, duration_us=20.0,
                         seed=0)
