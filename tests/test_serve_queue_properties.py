"""Property-based invariants for the bounded admission queue.

Random arrival traces (nondecreasing arrival times, random SLO budgets)
interleaved with random batch pops must preserve three invariants
whatever the overflow policy:

* boundedness — the queue never exceeds its capacity, and ``high_water``
  records the true maximum;
* conservation — every offered request is accounted for exactly once:
  popped, still waiting, evicted (DROP_OLDEST) or rejected
  (REJECT_NEWEST); nothing is silently dropped;
* ordering — concatenated pops come out EDF-sorted by
  ``(deadline_us, rid)`` or FIFO-sorted by ``(enqueue_time, rid)``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.queue import BoundedQueue, OverflowPolicy, QueueOrder
from repro.serve.request import InferenceRequest


@st.composite
def arrival_traces(draw) -> list[tuple[InferenceRequest, bool, int]]:
    """Requests with nondecreasing arrivals, each tagged with a pop op.

    The tag ``(do_pop, batch)`` interleaves dequeues between offers so
    the invariants are exercised on a queue that drains and refills, not
    just one that monotonically fills.
    """
    n = draw(st.integers(1, 40))
    out = []
    now = 0.0
    for rid in range(n):
        now += draw(st.integers(0, 5))
        slo = draw(st.integers(0, 50))
        req = InferenceRequest(rid, now, now + slo)
        out.append((req, draw(st.booleans()), draw(st.integers(1, 4))))
    return out


@given(arrival_traces(), st.integers(1, 8),
       st.sampled_from(list(OverflowPolicy)),
       st.sampled_from(list(QueueOrder)))
@settings(max_examples=60, deadline=None)
def test_bounded_and_conserving(trace, capacity, overflow, order) -> None:
    q = BoundedQueue(capacity, overflow=overflow, order=order)
    popped: list[InferenceRequest] = []
    rejected: list[InferenceRequest] = []
    evicted: list[InferenceRequest] = []
    high = 0
    for req, do_pop, batch in trace:
        if not q.offer(req, now=req.arrival_us):
            rejected.append(req)
        assert len(q) <= capacity
        high = max(high, len(q))
        evicted.extend(q.drain_evicted())
        if do_pop:
            popped.extend(q.pop_batch(batch))

    assert q.high_water == high <= capacity
    # DROP_OLDEST always admits the newcomer; REJECT_NEWEST never evicts.
    if overflow is OverflowPolicy.DROP_OLDEST:
        assert not rejected
    else:
        assert not evicted
    assert q.admitted == len(trace) - len(rejected)
    assert q.shed_overflow == len(rejected) + len(evicted)

    # Conservation: drain the remainder and check the four bins
    # partition the offered set exactly.
    while len(q):
        popped.extend(q.pop_batch(capacity))
    bins = [r.rid for r in popped + rejected + evicted]
    assert sorted(bins) == [r.rid for r, _, _ in trace]
    assert len(bins) == len(set(bins))


@given(arrival_traces(), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_edf_pop_order(trace, batch) -> None:
    q = BoundedQueue(capacity=len(trace), order=QueueOrder.EDF)
    for req, _, _ in trace:
        assert q.offer(req, now=req.arrival_us)
    popped: list[InferenceRequest] = []
    while len(q):
        chunk = q.pop_batch(batch)
        assert chunk, "pop_batch on a non-empty queue returned nothing"
        popped.extend(chunk)
    keys = [(r.deadline_us, r.rid) for r in popped]
    assert keys == sorted(keys)


@given(arrival_traces(), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_fifo_pop_order(trace, batch) -> None:
    q = BoundedQueue(capacity=len(trace), order=QueueOrder.FIFO)
    for req, _, _ in trace:
        assert q.offer(req, now=req.arrival_us)
    popped: list[InferenceRequest] = []
    while len(q):
        popped.extend(q.pop_batch(batch))
    # Arrivals are nondecreasing and rids increasing, so FIFO order
    # (enqueue time, rid) is exactly offer order.
    assert [r.rid for r in popped] == [r.rid for r, _, _ in trace]
