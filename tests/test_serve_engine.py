"""End-to-end tests for the serving engine and its CLI-facing helpers."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.gpusim import GPU
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.serve import (
    ServingEngine,
    make_executor,
    poisson_trace,
    resolve_device,
    resolve_net,
    serve_trace,
)
from repro.serve.engine import SERVE_NETS


DEVICE = "p100"


def small_trace(rps=5_000.0, duration_us=4_000.0, slo_us=3_000.0, seed=3):
    return poisson_trace(rps=rps, duration_us=duration_us, slo_us=slo_us,
                         seed=seed)


def lenet_engine(executor_kind="naive", **kwargs):
    gpu = GPU(resolve_device(DEVICE), record_timeline=False)
    executor = make_executor(executor_kind, gpu)
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_us", 150.0)
    return ServingEngine(executor, resolve_net("lenet"), net_name="lenet",
                         **kwargs)


class TestResolvers:
    def test_resolve_net_case_insensitive(self):
        assert resolve_net("LeNet") is SERVE_NETS["lenet"]
        assert resolve_net("CIFAR10") is SERVE_NETS["cifar10"]

    def test_resolve_net_unknown(self):
        with pytest.raises(ReproError, match="unknown network"):
            resolve_net("resnet152")

    def test_resolve_device_cli_spellings(self):
        assert resolve_device("titan-xp").name == "TitanXP"
        assert resolve_device("p100").name == "P100"
        assert resolve_device("TitanXP").name == "TitanXP"

    def test_make_executor_kinds(self):
        gpu = GPU(resolve_device(DEVICE), record_timeline=False)
        assert isinstance(make_executor("naive", gpu), NaiveExecutor)
        assert isinstance(make_executor("glp4nn", gpu), GLP4NNExecutor)
        with pytest.raises(ReproError, match="unknown executor"):
            make_executor("cudnn", gpu)


class TestServingEngine:
    def test_every_request_accounted_exactly_once(self):
        trace = small_trace()
        engine = lenet_engine()
        report = engine.serve(trace)
        assert report.requests == len(trace)
        assert report.requests == (report.ok + report.late
                                   + report.shed_queue
                                   + report.shed_admission + report.failed)
        rids = sorted(r.rid for r in engine.slo.records)
        assert rids == [r.rid for r in trace]

    def test_no_wall_clock_no_failures_on_clean_run(self):
        report = lenet_engine().serve(small_trace())
        assert report.failed == 0
        assert report.extra["failed_batches"] == 0
        assert report.makespan_us > 0
        assert report.batches > 0
        assert 1.0 <= report.mean_batch <= 4.0

    def test_warmup_excluded_and_estimate_seeded(self):
        engine = lenet_engine()
        engine.warm_up()
        assert engine.service_estimate_us is not None
        assert engine.service_estimate_us > 0
        before = engine.gpu.host_time
        engine.serve(small_trace())
        # warm_up() is idempotent: serving did not re-profile the buckets.
        assert engine.cache.lowerings == len(engine.cache.buckets)
        assert engine.gpu.host_time > before

    def test_no_warmup_still_serves(self):
        report = lenet_engine(warmup=False, slo_admission=False).serve(
            small_trace())
        assert report.requests > 0
        assert report.failed == 0
        # Lowering happened lazily, only for the shapes actually served.
        assert 1 <= report.lowerings <= 3

    def test_same_seed_identical_reports(self):
        runs = [serve_trace("lenet", DEVICE, "glp4nn", small_trace(),
                            max_batch=4, seed=5) for _ in range(2)]
        assert runs[0].render() == runs[1].render()
        assert runs[0].to_json() == runs[1].to_json()

    def test_overload_sheds_instead_of_collapsing(self):
        # A tiny queue under heavy load: requests are shed, never lost.
        trace = small_trace(rps=50_000.0, duration_us=3_000.0, slo_us=500.0)
        report = lenet_engine(queue_capacity=4).serve(trace)
        assert report.shed_queue + report.shed_admission > 0
        assert report.requests == len(trace)

    def test_rejects_bad_ewma_alpha(self):
        with pytest.raises(ReproError, match="alpha"):
            lenet_engine(ewma_alpha=0.0)


class TestServingUnderFaults:
    def test_unrecoverable_fault_fails_batches_not_the_engine(self):
        engine = lenet_engine(slo_admission=False, queue_capacity=256)
        engine.warm_up()
        trace = small_trace(rps=3_000.0, duration_us=3_000.0)
        # Every launch fails transiently from here on: retries exhaust,
        # each batch degrades past recovery and is failed as a unit.
        plan = FaultPlan((FaultSpec(site="launch", kind="transient"),),
                         seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        assert report.failed == report.requests > 0
        assert report.extra["failed_batches"] == report.batches > 0

    def test_stream_pool_fault_degrades_to_serial_but_completes(self):
        engine = lenet_engine("glp4nn", slo_admission=False)
        trace = small_trace(rps=2_000.0, duration_us=3_000.0,
                            slo_us=50_000.0)
        plan = FaultPlan((FaultSpec(site="stream_create",
                                    kind="persistent"),), seed=0)
        with chaos_session(plan):
            report = engine.serve(trace)
        # Pool creation fails, dispatch falls back to serial: slower,
        # degraded, but every request still completes.
        assert report.failed == 0
        assert report.ok + report.late == report.requests > 0
        assert report.degraded_layers > 0
