"""The documentation link/reference checker passes on the repo itself."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_check_docs_passes():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"), str(ROOT)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/nope.md) and `repro.nosuch.module`\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"),
         str(tmp_path)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "broken link" in proc.stdout
    assert "unresolved module" in proc.stdout
