"""The documentation link/reference checker passes on the repo itself."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_check_docs_passes():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"), str(ROOT)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/nope.md) and `repro.nosuch.module`\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"),
         str(tmp_path)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "broken link" in proc.stdout
    assert "unresolved module" in proc.stdout


def test_checker_flags_unknown_cli_subcommand(tmp_path):
    # The subcommand list is scraped from src/repro/cli.py, so give the
    # temp repo a minimal one; the fake invocation sits inside a fenced
    # block because that is where real usage examples live.
    cli = tmp_path / "src" / "repro"
    cli.mkdir(parents=True)
    (cli / "cli.py").write_text(
        'sub.add_parser("run")\nsub.add_parser("serve")\n',
        encoding="utf-8",
    )
    (tmp_path / "README.md").write_text(
        "```bash\npython -m repro nosuchcmd --flag\n"
        "python -m repro run fig9\n"
        "python -m repro --help\n"
        "python -m repro.bench.some_module\n```\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"),
         str(tmp_path)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "unknown CLI subcommand" in proc.stdout
    assert "nosuchcmd" in proc.stdout
    # the valid subcommand, the option and the module runner all pass
    assert proc.stdout.count("unknown CLI subcommand") == 1


def test_checker_flags_unknown_bench_target(tmp_path):
    # Bench targets are scraped from cli.py's BENCH_TARGETS tuple the same
    # import-free way as subcommands.
    cli = tmp_path / "src" / "repro"
    cli.mkdir(parents=True)
    (cli / "cli.py").write_text(
        'BENCH_TARGETS = ("engine",)\n'
        'sub.add_parser("bench")\n',
        encoding="utf-8",
    )
    (tmp_path / "README.md").write_text(
        "```bash\npython -m repro bench engine --quick\n"
        "python -m repro bench warpdrive\n"
        "python -m repro bench --help\n```\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py"),
         str(tmp_path)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "unknown bench target" in proc.stdout
    assert "warpdrive" in proc.stdout
    # the valid target and the bare --help invocation both pass
    assert proc.stdout.count("unknown bench target") == 1
