"""Tests for the DAG-dependency kernel dispatcher."""

import pytest

from repro.core import GLP4NN
from repro.errors import SchedulingError
from repro.gpusim import GPU, get_device
from repro.runtime.executor import NaiveExecutor
from repro.runtime.graph import GraphScheduler, KernelGraph, dispatch_graph
from tests.conftest import small_kernel


def fresh():
    return GPU(get_device("P100"), record_timeline=True)


def diamond(flops=300_000.0) -> KernelGraph:
    g = KernelGraph("diamond")
    a = g.add(small_kernel("a", flops=flops, tag="a"))
    b = g.add(small_kernel("b", flops=flops, tag="b"), deps=[a])
    c = g.add(small_kernel("c", flops=flops, tag="c"), deps=[a])
    g.add(small_kernel("d", flops=flops, tag="d"), deps=[b, c])
    return g


class TestKernelGraph:
    def test_add_and_len(self):
        g = diamond()
        assert len(g) == 4

    def test_forward_reference_rejected(self):
        g = KernelGraph()
        with pytest.raises(SchedulingError, match="must be added first"):
            g.add(small_kernel(), deps=[99])

    def test_add_chain_links_serially(self):
        g = KernelGraph()
        ids = g.add_chain([small_kernel("x"), small_kernel("y"),
                           small_kernel("z")])
        nodes = g.nodes
        assert nodes[1].deps == (ids[0],)
        assert nodes[2].deps == (ids[1],)

    def test_sinks(self):
        g = diamond()
        assert g.sinks() == [3]

    def test_as_layer_work_is_topological(self):
        work = diamond().as_layer_work("dmd")
        (chain,) = work.parallel_chains
        assert [k.name for k in chain] == ["a", "b", "c", "d"]

    def test_assign_streams_chain_affinity(self):
        g = KernelGraph()
        chain = g.add_chain([small_kernel(str(i)) for i in range(4)])
        assignment = g.assign_streams(4)
        # one chain stays on one stream
        assert len({assignment[i] for i in chain}) == 1

    def test_assign_streams_spreads_branches(self):
        g = diamond()
        assignment = g.assign_streams(3)
        # b and c are independent: different streams
        assert assignment[1] != assignment[2]

    def test_assign_streams_requires_positive(self):
        with pytest.raises(SchedulingError):
            diamond().assign_streams(0)


class TestDispatchGraph:
    def test_dependencies_respected(self):
        gpu = fresh()
        streams = [gpu.create_stream() for _ in range(3)]
        dispatch_graph(gpu, diamond(), streams)
        recs = {r.tag: r for r in gpu.timeline.records}
        assert recs["b"].start_us >= recs["a"].end_us
        assert recs["c"].start_us >= recs["a"].end_us
        assert recs["d"].start_us >= max(recs["b"].end_us, recs["c"].end_us)

    def test_independent_branches_overlap(self):
        gpu = fresh()
        streams = [gpu.create_stream() for _ in range(3)]
        dispatch_graph(gpu, diamond(flops=1_000_000.0), streams)
        recs = {r.tag: r for r in gpu.timeline.records}
        assert recs["c"].start_us < recs["b"].end_us  # b, c concurrent

    def test_all_kernels_execute(self):
        gpu = fresh()
        streams = [gpu.create_stream() for _ in range(2)]
        g = diamond()
        dispatch_graph(gpu, g, streams)
        assert gpu.kernels_completed == len(g)

    def test_needs_streams(self):
        with pytest.raises(SchedulingError):
            dispatch_graph(fresh(), diamond(), [])

    def test_single_stream_equals_serial_order(self):
        gpu = fresh()
        dispatch_graph(gpu, diamond(), [gpu.create_stream()])
        recs = sorted(gpu.timeline.records, key=lambda r: r.start_us)
        assert [r.tag for r in recs] == ["a", "b", "c", "d"]


class TestGraphScheduler:
    def test_profile_then_dispatch(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        sched = GraphScheduler(glp, gpu)
        g = diamond()
        sched.run(g)
        assert glp.tracker.has(gpu, "diamond/forward")
        t = sched.run(g)
        assert t > 0
        assert gpu.kernels_completed == 2 * len(g)

    def test_wide_graph_beats_serial(self):
        """Many independent heavy branches: DAG dispatch wins clearly."""
        def wide():
            g = KernelGraph("wide")
            ends = []
            for i in range(8):
                ids = g.add_chain([
                    small_kernel("work", blocks=2, flops=2_000_000.0,
                                 tag=f"br{i}")
                ])
                ends.extend(ids)
            g.add(small_kernel("join", tag="join"), deps=ends)
            return g

        gpu_serial = GPU(get_device("P100"), record_timeline=False)
        serial = NaiveExecutor(gpu_serial)
        work = wide().as_layer_work("wide")
        serial.run(work)
        t_serial = serial.run(work).elapsed_us

        gpu = GPU(get_device("P100"), record_timeline=False)
        glp = GLP4NN([gpu])
        sched = GraphScheduler(glp, gpu)
        sched.run(wide())
        t_graph = sched.run(wide())
        assert t_graph < 0.6 * t_serial
