"""Tests for net state dicts and solver snapshots (checkpoint/resume)."""

import numpy as np
import pytest

from repro.data import BatchLoader, make_dataset
from repro.errors import NetworkError
from repro.nn.solver import Solver, SolverConfig
from repro.nn.zoo import build_cifar10


def fresh_solver(seed=11):
    net = build_cifar10(batch=20, seed=seed, with_accuracy=False)
    return Solver(net, SolverConfig(base_lr=0.01, momentum=0.9,
                                    weight_decay=0.004))


def loader(seed=5):
    return BatchLoader(make_dataset("cifar10", 100, seed=3), 20, seed=seed)


class TestStateDict:
    def test_roundtrip(self):
        net = build_cifar10(batch=4, seed=1)
        state = net.state_dict()
        # mutate, then restore
        for p, _, _ in net.unique_params():
            p.data += 1.0
        net.load_state_dict(state)
        for name, arr in net.state_dict().items():
            np.testing.assert_array_equal(arr, state[name])

    def test_state_is_a_copy(self):
        net = build_cifar10(batch=4, seed=1)
        state = net.state_dict()
        first = next(iter(state.values()))
        first += 99.0
        fresh = net.state_dict()
        assert not np.array_equal(next(iter(fresh.values())), first)

    def test_missing_key_rejected(self):
        net = build_cifar10(batch=4, seed=1)
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(NetworkError, match="missing"):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = build_cifar10(batch=4, seed=1)
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(NetworkError, match="shape"):
            net.load_state_dict(state)

    def test_transfer_between_identical_nets(self):
        a = build_cifar10(batch=4, seed=1)
        b = build_cifar10(batch=4, seed=2)
        b.load_state_dict(a.state_dict())
        rng = np.random.default_rng(0)
        batch = {
            "data": rng.normal(size=(4, 3, 32, 32)).astype(np.float32),
            "label": rng.integers(0, 10, 4).astype(np.float32),
        }
        la = a.forward(batch)["loss"][0]
        lb = b.forward(batch)["loss"][0]
        assert la == lb


class TestSolverSnapshot:
    def test_resume_is_bit_exact(self):
        """train(10) == train(5) + snapshot/restore + train(5)."""
        straight = fresh_solver()
        l1 = loader()
        losses_straight = [straight.step(l1.next_batch()) for _ in range(10)]

        first = fresh_solver()
        l2 = loader()
        for _ in range(5):
            first.step(l2.next_batch())
        snap = first.snapshot()

        resumed = fresh_solver(seed=999)   # different init: must not matter
        resumed.restore(snap)
        losses_tail = [resumed.step(l2.next_batch()) for _ in range(5)]
        assert losses_straight[5:] == losses_tail
        assert resumed.iteration == 10

    def test_snapshot_contains_momentum(self):
        solver = fresh_solver()
        l = loader()
        solver.step(l.next_batch())
        snap = solver.snapshot()
        assert snap["momentum"]
        for v in snap["momentum"].values():
            assert np.abs(v).sum() > 0

    def test_snapshot_is_isolated(self):
        solver = fresh_solver()
        l = loader()
        solver.step(l.next_batch())
        snap = solver.snapshot()
        before = {k: v.copy() for k, v in snap["params"].items()}
        solver.step(l.next_batch())   # keep training
        for k in before:
            np.testing.assert_array_equal(snap["params"][k], before[k])

    def test_restore_rejects_unknown_momentum(self):
        solver = fresh_solver()
        l = loader()
        solver.step(l.next_batch())
        snap = solver.snapshot()
        snap["momentum"]["bogus/param"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(NetworkError):
            fresh_solver().restore(snap)
