"""Tests for im2col / col2im, including the adjoint property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.nn.im2col import col2im, im2col


def naive_im2col(x, f, stride, pad):
    """Reference implementation with explicit loops."""
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - f) // stride + 1
    ow = (w + 2 * pad - f) // stride + 1
    out = np.zeros((n, c * f * f, oh * ow), dtype=x.dtype)
    for ni in range(n):
        col = 0
        for y in range(oh):
            for xcol in range(ow):
                patch = xp[ni, :, y * stride:y * stride + f,
                           xcol * stride:xcol * stride + f]
                out[ni, :, col] = patch.reshape(-1)
                col += 1
    return out


class TestAgainstNaive:
    @pytest.mark.parametrize("shape,f,s,p", [
        ((2, 3, 8, 8), 3, 1, 0),
        ((1, 1, 28, 28), 5, 1, 0),
        ((2, 3, 32, 32), 5, 1, 2),
        ((1, 3, 227, 227), 11, 4, 0),
        ((3, 2, 7, 7), 1, 1, 0),
        ((1, 4, 9, 9), 3, 2, 1),
    ])
    def test_matches_reference(self, shape, f, s, p):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape).astype(np.float32)
        np.testing.assert_allclose(im2col(x, f, s, p),
                                   naive_im2col(x, f, s, p), rtol=1e-6)

    def test_requires_nchw(self):
        with pytest.raises(NetworkError):
            im2col(np.zeros((3, 8, 8), dtype=np.float32), 3, 1, 0)

    def test_output_contiguous(self):
        x = np.zeros((1, 2, 6, 6), dtype=np.float32)
        assert im2col(x, 3, 1, 1).flags["C_CONTIGUOUS"]


class TestAdjointProperty:
    """col2im must be the exact adjoint of im2col:

    ``<im2col(x), y> == <x, col2im(y)>`` for all x, y.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 2), st.integers(1, 3), st.integers(5, 10),
        st.integers(1, 3), st.sampled_from([1, 2]), st.integers(0, 2),
        st.integers(0, 2 ** 31 - 1),
    )
    def test_dot_product_identity(self, n, c, hw, f, s, p, seed):
        if hw + 2 * p < f:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, hw, hw)).astype(np.float32)
        cols_shape = im2col(x, f, s, p).shape
        y = rng.normal(size=cols_shape).astype(np.float32)
        lhs = float(np.sum(im2col(x, f, s, p) * y))
        rhs = float(np.sum(x * col2im(y, x.shape, f, s, p)))
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)

    def test_col2im_counts_overlaps(self):
        # all-ones columns: each input pixel receives one count per window
        # containing it
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        cols = np.ones_like(im2col(x, 3, 1, 0))
        back = col2im(cols, x.shape, 3, 1, 0)
        # the centre pixels of a 4x4 with 3x3/stride-1 appear in 4 windows
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0
