"""Tests for the simulated CUPTI profiling interface."""

import pytest

from repro.cupti import (
    ACTIVITY_BUFFER_BYTES,
    CONFIG_RECORD_BYTES,
    CuptiProfiler,
    CuptiSubscriber,
    KERNEL_RECORD_BYTES,
    TIMESTAMP_BYTES,
)
from repro.cupti.subscriber import PER_KERNEL_OVERHEAD_US
from repro.errors import ProfilerError
from tests.conftest import small_kernel


class TestSubscriber:
    def test_completion_callback_fires(self, p100):
        seen = []
        sub = CuptiSubscriber(p100, lambda ke: seen.append(ke.spec.name))
        p100.launch(small_kernel("a"))
        p100.synchronize()
        assert seen == ["a"]
        sub.unsubscribe()

    def test_overhead_charged_per_launch(self, p100):
        sub = CuptiSubscriber(p100, lambda ke: None)
        t0 = p100.host_time
        p100.launch(small_kernel())
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us + PER_KERNEL_OVERHEAD_US
        )
        assert sub.overhead_us == pytest.approx(PER_KERNEL_OVERHEAD_US)
        sub.unsubscribe()

    def test_no_overhead_when_disabled(self, p100):
        sub = CuptiSubscriber(p100, lambda ke: None, charge_overhead=False)
        t0 = p100.host_time
        p100.launch(small_kernel())
        assert p100.host_time == pytest.approx(
            t0 + p100.props.launch_latency_us
        )
        sub.unsubscribe()

    def test_single_subscriber_per_device(self, p100):
        sub = CuptiSubscriber(p100, lambda ke: None)
        with pytest.raises(ProfilerError, match="already has"):
            CuptiSubscriber(p100, lambda ke: None)
        sub.unsubscribe()
        CuptiSubscriber(p100, lambda ke: None).unsubscribe()

    def test_unsubscribe_stops_callbacks(self, p100):
        seen = []
        sub = CuptiSubscriber(p100, lambda ke: seen.append(1))
        sub.unsubscribe()
        p100.launch(small_kernel())
        p100.synchronize()
        assert seen == []

    def test_context_manager(self, p100):
        with CuptiSubscriber(p100, lambda ke: None) as sub:
            assert sub.is_active
        assert not sub.is_active


class TestProfiler:
    def test_records_carry_launch_config(self, p100):
        prof = CuptiProfiler(p100)
        prof.start()
        spec = small_kernel("sgemm", blocks=9, threads=128, smem=4096,
                            regs=63, tag="conv1/s0")
        p100.launch(spec)
        p100.synchronize()
        rep = prof.stop()
        (r,) = rep.records
        assert r.name == "sgemm" and r.tag == "conv1/s0"
        assert r.grid == (9, 1, 1) and r.block == (128, 1, 1)
        assert r.registers_per_thread == 63
        assert r.dynamic_shared_memory == 4096
        assert r.end_ns > r.start_ns
        assert r.duration_us > 0

    def test_memory_accounting(self, p100):
        prof = CuptiProfiler(p100)
        prof.start()
        for i in range(7):
            p100.launch(small_kernel(tag=str(i)))
        p100.synchronize()
        rep = prof.stop()
        assert rep.mem_tt == 7 * TIMESTAMP_BYTES
        assert rep.mem_k == 7 * CONFIG_RECORD_BYTES
        assert rep.mem_cupti >= ACTIVITY_BUFFER_BYTES
        assert rep.mem_total == rep.mem_tt + rep.mem_k + rep.mem_cupti

    def test_profiling_time_scales_with_kernels(self, p100):
        prof = CuptiProfiler(p100)
        prof.start()
        for i in range(10):
            p100.launch(small_kernel(tag=str(i)))
        p100.synchronize()
        t10 = prof.stop().profiling_time_us

        prof.start()
        for i in range(20):
            p100.launch(small_kernel(tag=str(i)))
        p100.synchronize()
        t20 = prof.stop().profiling_time_us
        assert t20 > t10

    def test_stop_without_start_raises(self, p100):
        with pytest.raises(ProfilerError):
            CuptiProfiler(p100).stop()

    def test_double_start_raises(self, p100):
        prof = CuptiProfiler(p100)
        prof.start()
        with pytest.raises(ProfilerError):
            prof.start()
        prof.stop()

    def test_stop_detaches(self, p100):
        prof = CuptiProfiler(p100)
        prof.start()
        prof.stop()
        p100.launch(small_kernel())
        p100.synchronize()
        # a second session starts clean
        prof.start()
        rep = prof.stop()
        assert rep.num_kernels == 0

    def test_context_manager(self, p100):
        with CuptiProfiler(p100) as prof:
            p100.launch(small_kernel())
            p100.synchronize()
        assert not prof.is_running

    def test_record_size_is_cupti_like(self):
        assert KERNEL_RECORD_BYTES == 144
        assert TIMESTAMP_BYTES == 16
        assert CONFIG_RECORD_BYTES == 48
