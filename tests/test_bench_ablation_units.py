"""Unit tests for the ablation helpers (fast, no full experiments)."""

import pytest

from repro.bench.ablations import greedy_analyze
from repro.bench.graph_ablation import UNITS, inception_graph
from repro.core.resource_tracker import KernelProfile
from repro.gpusim.device import get_device


def profile(name="k", blocks=4, threads=256, smem=0, duration=100.0,
            instances=10, regs=32):
    return KernelProfile(
        name=name, grid=(blocks, 1, 1), block=(threads, 1, 1),
        registers_per_thread=regs, shared_mem_per_block=smem,
        duration_us=duration, instances=instances,
    )


class TestGreedyAnalyzer:
    def test_respects_thread_budget(self):
        analyze = greedy_analyze("P100")
        d = analyze("l", [profile(threads=1024, duration=1e5)])
        dev = get_device("P100")
        b = d.bounds[0]
        assert b.tau * b.beta * d.counts["k"] <= dev.max_threads_per_sm

    def test_respects_smem_budget(self):
        analyze = greedy_analyze("P100")
        d = analyze("l", [profile(smem=16 * 1024, duration=1e5)])
        dev = get_device("P100")
        b = d.bounds[0]
        assert b.smem * b.beta * d.counts["k"] <= dev.shared_mem_per_sm

    def test_respects_launch_bound(self):
        analyze = greedy_analyze("P100")
        d = analyze("l", [profile(duration=4.0)])   # < T_launch
        assert d.counts["k"] <= 1

    def test_cout_at_least_one(self):
        analyze = greedy_analyze("P100")
        d = analyze("l", [profile(threads=1024, blocks=2000, duration=1e5)])
        assert d.c_out >= 1

    def test_never_beats_milp_objective(self):
        """Greedy occupancy can at best tie the exact solve."""
        from repro.core.analytical_model import AnalyticalModel
        dev = get_device("P100")
        profiles = [
            profile("a", threads=512, duration=200.0),
            profile("b", threads=192, smem=4096, duration=150.0),
            profile("c", threads=64, duration=90.0),
        ]
        exact = AnalyticalModel(dev).solve("l", profiles)
        greedy = greedy_analyze("P100")("l", profiles)

        def occupancy(decision):
            return sum(
                b.tau * b.beta * decision.counts[b.name]
                for b in decision.bounds
            )

        assert occupancy(greedy) <= occupancy(exact) + 1e-9


class TestInceptionGraph:
    def test_branch_structure(self):
        g = inception_graph()
        # 32 samples x (1x1: 2 kernels, 3x3: 5, 5x5: 5)
        assert len(g) == 32 * 12

    def test_units_match_table5_shapes(self):
        one = UNITS["1x1"][0]
        assert (one.ci, one.co, one.f) == (832, 384, 1)
        reduce3, conv3 = UNITS["3x3"]
        assert reduce3.co == conv3.ci == 192

    def test_branches_are_independent(self):
        g = inception_graph()
        deps = g.dependents()
        roots = [n for n in g.nodes if not n.deps]
        # every sample of every branch starts a fresh chain
        assert len(roots) == 32 * 3
