"""Unit tests for the bit-exact network fingerprints."""

from __future__ import annotations

import numpy as np

from repro.nn.zoo import build_lenet
from repro.verify.differential import make_batches
from repro.verify.fingerprint import (
    Divergence,
    NetFingerprint,
    array_digest,
    fingerprint_net,
    first_divergence,
)


def test_array_digest_sensitivity() -> None:
    a = np.arange(6, dtype=np.float32).reshape(2, 3)
    assert array_digest(a) == array_digest(a.copy())
    assert array_digest(a) != array_digest(a.astype(np.float64))
    assert array_digest(a) != array_digest(a.reshape(3, 2))
    b = a.copy()
    b[0, 0] += 1e-7  # any bit flip counts; there are no tolerances
    assert array_digest(a) != array_digest(b)


def test_fingerprint_is_deterministic_and_complete() -> None:
    net = build_lenet(batch=2, seed=0)
    batch = make_batches(net, 1, seed=0)[0]
    net.forward(batch)
    net.backward()
    fp1 = fingerprint_net(net)
    fp2 = fingerprint_net(net)
    assert fp1.to_dict() == fp2.to_dict()
    assert fp1.sections["blob"] and fp1.sections["param"]
    assert fp1.loss is not None
    assert first_divergence(fp1, fp2) is None
    # Without activations only the parameter sections are populated.
    lean = fingerprint_net(net, include_activations=False)
    assert not lean.sections["blob"] and lean.sections["param"]


def test_first_divergence_reports_earliest_section() -> None:
    base = NetFingerprint(sections={
        "blob": {"conv1": "aa"}, "blob_grad": {"conv1": "bb"},
        "param_grad": {"w": "cc"}, "param": {"w": "dd"},
    }, loss=1.0)
    # Divergence planted in both "blob" and "param": the causally
    # earliest one (the forward activation) must be the one reported.
    other = NetFingerprint(sections={
        "blob": {"conv1": "XX"}, "blob_grad": {"conv1": "bb"},
        "param_grad": {"w": "cc"}, "param": {"w": "YY"},
    }, loss=1.0)
    d = first_divergence(base, other)
    assert d == Divergence("blob", "conv1", "aa", "XX")
    assert "blob[conv1]" in str(d)


def test_first_divergence_absent_tensor_and_loss() -> None:
    base = NetFingerprint(sections={"blob": {"a": "x"}}, loss=1.0)
    missing = NetFingerprint(sections={"blob": {}}, loss=1.0)
    d = first_divergence(base, missing)
    assert d is not None and d.actual == "<absent>"
    # Identical tensors but different losses: reported as the last check.
    other_loss = NetFingerprint(sections={"blob": {"a": "x"}}, loss=2.0)
    d = first_divergence(base, other_loss)
    assert d is not None and d.section == "loss"


def test_make_batches_deterministic() -> None:
    net = build_lenet(batch=4, seed=0)
    b1 = make_batches(net, 2, seed=7)
    b2 = make_batches(net, 2, seed=7)
    b3 = make_batches(net, 2, seed=8)
    for one, two in zip(b1, b2):
        assert sorted(one) == sorted(two)
        for name in one:
            assert one[name].tobytes() == two[name].tobytes()
    assert any(b1[0][n].tobytes() != b3[0][n].tobytes() for n in b1[0])
