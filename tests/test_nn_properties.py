"""Property-based tests of the NN framework's mathematical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import (
    ConvolutionLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.layers.losses import softmax

RNG = lambda s=0: np.random.default_rng(s)

_images = st.tuples(
    st.integers(1, 3),              # batch
    st.integers(1, 4),              # channels
    st.integers(4, 10),             # spatial
    st.integers(0, 2 ** 31 - 1),    # seed
)


@settings(max_examples=30, deadline=None)
@given(_images)
def test_maxpool_output_bounded_by_input(args):
    n, c, hw, seed = args
    layer = PoolingLayer("p", 3, 2, op="max")
    layer.setup([(n, c, hw, hw)], RNG(0))
    x = RNG(seed).normal(size=(n, c, hw, hw)).astype(np.float32)
    (y,) = layer.forward([x])
    assert float(y.max()) <= float(x.max()) + 1e-6
    assert float(y.min()) >= float(x.min()) - 1e-6


@settings(max_examples=30, deadline=None)
@given(_images)
def test_avepool_preserves_mean_range(args):
    n, c, hw, seed = args
    layer = PoolingLayer("p", 2, 2, op="ave")
    layer.setup([(n, c, hw, hw)], RNG(0))
    x = RNG(seed).normal(size=(n, c, hw, hw)).astype(np.float32)
    (y,) = layer.forward([x])
    assert float(y.max()) <= float(x.max()) + 1e-5
    assert float(y.min()) >= float(x.min()) - 1e-5


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(2, 12), st.integers(0, 2 ** 31 - 1))
def test_softmax_is_a_distribution(rows, cols, seed):
    logits = RNG(seed).normal(scale=5.0, size=(rows, cols)).astype(np.float32)
    p = softmax(logits)
    assert (p >= 0).all()
    np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-4)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(2, 6), st.integers(0, 2 ** 31 - 1))
def test_softmax_loss_lower_bounded_by_zero(batch, classes, seed):
    layer = SoftmaxWithLossLayer("l")
    layer.setup([(batch, classes), (batch,)], RNG(0))
    rng = RNG(seed)
    logits = rng.normal(scale=3.0, size=(batch, classes)).astype(np.float32)
    labels = rng.integers(0, classes, batch).astype(np.float32)
    (loss,) = layer.forward([logits, labels])
    assert float(loss[0]) >= 0.0


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(2, 6), st.integers(0, 2 ** 31 - 1))
def test_softmax_loss_gradient_sums_to_zero_per_row(batch, classes, seed):
    """Softmax gradient rows sum to 0: probability mass is conserved."""
    layer = SoftmaxWithLossLayer("l")
    layer.setup([(batch, classes), (batch,)], RNG(0))
    rng = RNG(seed)
    logits = rng.normal(size=(batch, classes)).astype(np.float32)
    labels = rng.integers(0, classes, batch).astype(np.float32)
    layer.forward([logits, labels])
    grad, _ = layer.backward([np.ones(1, dtype=np.float32)],
                             [logits, labels], [None])
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(_images)
def test_relu_is_idempotent(args):
    n, c, hw, seed = args
    layer = ReLULayer("r")
    layer.setup([(n, c, hw, hw)], RNG(0))
    x = RNG(seed).normal(size=(n, c, hw, hw)).astype(np.float32)
    (y1,) = layer.forward([x])
    (y2,) = layer.forward([y1])
    np.testing.assert_array_equal(y1, y2)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(5, 9),
       st.integers(0, 2 ** 31 - 1))
def test_convolution_is_linear_in_input(n, c, hw, seed):
    """With zero bias, conv(a*x) == a * conv(x)."""
    layer = ConvolutionLayer("c", 4, 3, pad=1)
    layer.setup([(n, c, hw, hw)], RNG(1))
    layer.params[1].data[...] = 0.0
    x = RNG(seed).normal(size=(n, c, hw, hw)).astype(np.float32)
    (y1,) = layer.forward([x])
    (y2,) = layer.forward([2.0 * x])
    np.testing.assert_allclose(y2, 2.0 * y1, rtol=1e-4, atol=1e-4)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_forward_is_deterministic(seed):
    from repro.nn.zoo import build_cifar10
    net1 = build_cifar10(batch=2, seed=7, with_accuracy=False)
    net2 = build_cifar10(batch=2, seed=7, with_accuracy=False)
    rng = RNG(seed)
    batch = {
        "data": rng.normal(size=(2, 3, 32, 32)).astype(np.float32),
        "label": rng.integers(0, 10, 2).astype(np.float32),
    }
    l1 = net1.forward(batch)["loss"][0]
    l2 = net2.forward(batch)["loss"][0]
    assert l1 == l2
