"""Tests for the analytic cost model vs the discrete-event engine."""

import pytest

from repro.gpusim import GPU, get_device
from repro.kernels.costmodel import (
    block_work_us,
    chain_solo_time_us,
    kernel_flop_rate,
    kernel_solo_time_us,
)
from repro.kernels.ir import KernelChain
from repro.kernels.ops import im2col_spec, sgemm_spec
from tests.conftest import small_kernel


class TestBlockWork:
    def test_compute_bound(self):
        dev = get_device("P100")
        spec = small_kernel(flops=1e6, bytes_=1.0)
        w = block_work_us(spec, dev)
        expected = 1e6 * 256 / dev.sm_flops_per_us + dev.block_overhead_us
        assert w == pytest.approx(expected)

    def test_memory_bound(self):
        dev = get_device("P100")
        spec = small_kernel(flops=1.0, bytes_=1e5)
        w = block_work_us(spec, dev)
        expected = 1e5 * 256 / dev.sm_bytes_per_us + dev.block_overhead_us
        assert w == pytest.approx(expected)

    def test_duration_override(self):
        dev = get_device("P100")
        spec = small_kernel()
        spec = type(spec)(name="x", launch=spec.launch, duration_us=50.0)
        # demand of a 256-thread block on P100 is 1.0 -> work = 50
        assert block_work_us(spec, dev) == pytest.approx(50.0)


class TestSoloTimeMatchesEngine:
    @pytest.mark.parametrize("spec", [
        sgemm_spec(256, 729, 2400),
        sgemm_spec(20, 576, 25),
        im2col_spec(3, 55, 55, 11, 11),
        small_kernel(blocks=500),
        small_kernel(blocks=1, threads=64),
    ], ids=["big-gemm", "small-gemm", "im2col", "multiwave", "tiny"])
    @pytest.mark.parametrize("device", ["P100", "K40C", "TitanXP"])
    def test_estimate_close_to_simulation(self, spec, device):
        dev = get_device(device)
        est = kernel_solo_time_us(spec, dev)
        gpu = GPU(dev)
        gpu.launch(spec)
        gpu.synchronize()
        sim = gpu.timeline.records[0].duration_us
        assert est == pytest.approx(sim, rel=0.35)

    def test_longer_kernel_estimated_longer(self):
        dev = get_device("P100")
        a = kernel_solo_time_us(sgemm_spec(64, 64, 100), dev)
        b = kernel_solo_time_us(sgemm_spec(64, 64, 10_000), dev)
        assert b > a

    def test_chain_time_is_sum(self):
        dev = get_device("P100")
        k1, k2 = small_kernel("a"), small_kernel("b")
        chain = KernelChain((k1, k2))
        assert chain_solo_time_us(chain, dev) == pytest.approx(
            kernel_solo_time_us(k1, dev) + kernel_solo_time_us(k2, dev)
        )

    def test_flop_rate_below_peak(self):
        dev = get_device("P100")
        spec = sgemm_spec(512, 512, 512)
        rate = kernel_flop_rate(spec, dev)
        assert 0 < rate <= dev.peak_gflops

    def test_faster_device_is_faster(self):
        spec = sgemm_spec(256, 256, 1024)
        t_k40 = kernel_solo_time_us(spec, get_device("K40C"))
        t_p100 = kernel_solo_time_us(spec, get_device("P100"))
        assert t_p100 < t_k40
