"""Tests for the device catalog (paper Table 3)."""

import pytest

from repro.errors import DeviceError
from repro.gpusim.arch import Architecture
from repro.gpusim.device import (
    DEVICE_CATALOG,
    PAPER_DEVICES,
    DeviceProperties,
    GIB,
    KIB,
    get_device,
    list_devices,
)


class TestTable3Catalog:
    """Hardware profile rows from the paper's Table 3."""

    def test_k40c_profile(self):
        d = get_device("K40C")
        assert d.arch is Architecture.KEPLER
        assert d.sm_count == 15 and d.cores_per_sm == 192
        assert d.clock_ghz == pytest.approx(0.745)
        assert d.memory_bytes == 12 * GIB
        assert d.mem_bandwidth_gbps == pytest.approx(288.0)
        assert d.memory_type == "GDDR5"
        assert d.shared_mem_per_sm == 48 * KIB

    def test_p100_profile(self):
        d = get_device("P100")
        assert d.arch is Architecture.PASCAL
        assert d.sm_count == 56 and d.cores_per_sm == 64
        assert d.memory_type == "HBM2.0"
        assert d.shared_mem_per_sm == 64 * KIB

    def test_titanxp_profile(self):
        d = get_device("TitanXP")
        assert d.arch is Architecture.PASCAL
        assert d.sm_count == 30 and d.cores_per_sm == 128
        assert d.clock_ghz == pytest.approx(1.455)
        assert d.memory_type == "GDDR5X"

    def test_paper_devices_all_present(self):
        for name in PAPER_DEVICES:
            assert name in DEVICE_CATALOG

    def test_core_counts_match_products(self):
        # paper Table 3 lists core count as SMs x cores/SM
        assert get_device("K40C").total_cores == 15 * 192
        assert get_device("P100").total_cores == 56 * 64
        assert get_device("TitanXP").total_cores == 30 * 128


class TestDerivedQuantities:
    def test_concurrency_degree_follows_architecture(self):
        assert get_device("K40C").max_concurrent_kernels == 32
        assert get_device("P100").max_concurrent_kernels == 128
        assert get_device("GTX980").max_concurrent_kernels == 16

    def test_max_warps(self):
        assert get_device("P100").max_warps_per_sm == 64

    def test_peak_gflops_ballpark(self):
        # P100 FP32 peak is ~9-10 TFLOP/s at boost clocks
        assert 7000 < get_device("P100").peak_gflops < 11000

    def test_sm_rates_positive(self):
        for name in list_devices():
            d = get_device(name)
            assert d.sm_flops_per_us > 0
            assert d.sm_bytes_per_us > 0

    def test_describe_mentions_name_and_arch(self):
        text = get_device("K40C").describe()
        assert "K40C" in text and "kepler" in text


class TestLookup:
    def test_case_insensitive(self):
        assert get_device("p100") is get_device("P100")

    def test_unknown_device_raises(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device("H100")

    def test_list_devices_nonempty(self):
        names = list_devices()
        assert len(names) >= 6
        assert "K40C" in names

    def test_invalid_sm_count_rejected(self):
        with pytest.raises(DeviceError):
            DeviceProperties(
                name="bad", arch=Architecture.PASCAL, sm_count=0,
                cores_per_sm=64, clock_ghz=1.0, memory_bytes=GIB,
                mem_bandwidth_gbps=100.0, memory_type="X",
                shared_mem_per_sm=48 * KIB,
            )

    def test_unaligned_threads_rejected(self):
        with pytest.raises(DeviceError, match="warp-aligned"):
            DeviceProperties(
                name="bad", arch=Architecture.PASCAL, sm_count=1,
                cores_per_sm=64, clock_ghz=1.0, memory_bytes=GIB,
                mem_bandwidth_gbps=100.0, memory_type="X",
                shared_mem_per_sm=48 * KIB, max_threads_per_sm=2000,
            )


class TestAuxiliaryDevices:
    def test_k80_has_doubled_register_file(self):
        d = get_device("K80")
        assert d.registers_per_sm == 131072
        assert d.arch is Architecture.KEPLER
        assert d.max_concurrent_kernels == 32

    def test_gtx1080_profile(self):
        d = get_device("GTX1080")
        assert d.arch is Architecture.PASCAL
        assert d.total_cores == 2560
        assert d.max_concurrent_kernels == 128

    def test_catalog_names_unique_case_insensitively(self):
        names = [n.lower() for n in DEVICE_CATALOG]
        assert len(names) == len(set(names))

    def test_all_devices_runnable(self):
        """Every catalog device executes a kernel end to end."""
        from repro.gpusim import GPU
        from tests.conftest import small_kernel
        for name in DEVICE_CATALOG:
            gpu = GPU(get_device(name))
            gpu.launch(small_kernel())
            gpu.synchronize()
            assert gpu.kernels_completed == 1, name


class TestSelfTest:
    def test_report_matches_configuration(self):
        from repro.gpusim.selftest import run_selftest
        report = run_selftest(get_device("P100"))
        import pytest as _pytest
        assert report.launch_latency_us == _pytest.approx(
            report.configured_launch_latency_us, rel=0.01)
        assert report.h2d_bandwidth_gbps == _pytest.approx(
            report.configured_pcie_gbps, rel=0.05)
        assert 0.5 < report.gemm_efficiency <= 1.0
        assert "self-test: P100" in report.render()

    def test_concurrency_flood_observes_device_degree(self):
        from repro.gpusim.selftest import measure_concurrency
        from repro.gpusim import GPU
        for name, degree in (("K40C", 32), ("GTX980", 16)):
            gpu = GPU(get_device(name))
            assert measure_concurrency(gpu) == degree

    def test_cli_selftest(self, capsys):
        from repro.cli import main
        assert main(["selftest", "K40C"]) == 0
        out = capsys.readouterr().out
        assert "self-test: K40C" in out and "SGEMM" in out
