"""Tests (including property-based) for the device memory allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError, SimulationError
from repro.gpusim.memory import ALIGNMENT, DeviceAllocator


class TestBasics:
    def test_alignment(self):
        a = DeviceAllocator(1 << 20)
        alloc = a.malloc(100)
        assert alloc.size == ALIGNMENT
        assert alloc.requested == 100
        assert alloc.offset % ALIGNMENT == 0

    def test_accounting(self):
        a = DeviceAllocator(1 << 20)
        x = a.malloc(1000)
        assert a.bytes_in_use == x.size
        a.free(x)
        assert a.bytes_in_use == 0
        assert a.bytes_free == 1 << 20

    def test_peak_tracking(self):
        a = DeviceAllocator(1 << 20)
        x = a.malloc(1024)
        y = a.malloc(2048)
        a.free(x)
        a.free(y)
        assert a.peak_bytes == 3072

    def test_oom(self):
        a = DeviceAllocator(1024)
        with pytest.raises(OutOfMemoryError):
            a.malloc(2048)

    def test_zero_size_rejected(self):
        a = DeviceAllocator(1024)
        with pytest.raises(SimulationError):
            a.malloc(0)

    def test_double_free_rejected(self):
        a = DeviceAllocator(1 << 20)
        x = a.malloc(128)
        a.free(x)
        with pytest.raises(SimulationError, match="double free"):
            a.free(x)

    def test_coalescing_allows_reuse(self):
        a = DeviceAllocator(3 * ALIGNMENT)
        x = a.malloc(ALIGNMENT)
        y = a.malloc(ALIGNMENT)
        z = a.malloc(ALIGNMENT)
        a.free(x)
        a.free(z)
        a.free(y)  # middle free must merge all three holes
        big = a.malloc(3 * ALIGNMENT)
        assert big.size == 3 * ALIGNMENT

    def test_fragmentation_blocks_large_alloc(self):
        a = DeviceAllocator(4 * ALIGNMENT)
        chunks = [a.malloc(ALIGNMENT) for _ in range(4)]
        a.free(chunks[0])
        a.free(chunks[2])
        # 2 holes of 1 unit each: a 2-unit request must fail
        with pytest.raises(OutOfMemoryError, match="fragmented"):
            a.malloc(2 * ALIGNMENT)


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 8 * ALIGNMENT)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=60,
    ))
    def test_invariants_under_random_workload(self, ops):
        """The free list stays sorted, coalesced, and byte-exact."""
        a = DeviceAllocator(64 * ALIGNMENT)
        live = []
        for op, arg in ops:
            if op == "alloc":
                try:
                    live.append(a.malloc(arg))
                except OutOfMemoryError:
                    pass
            elif live:
                a.free(live.pop(arg % len(live)))
            a.check_invariants()
        for alloc in live:
            a.free(alloc)
        a.check_invariants()
        assert a.bytes_in_use == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 4 * ALIGNMENT), min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        a = DeviceAllocator(1 << 20)
        allocs = [a.malloc(s) for s in sizes]
        spans = sorted((x.offset, x.offset + x.size) for x in allocs)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
