"""Tests for the fault-injection subsystem and graceful degradation.

Covers the plan/trigger semantics, injector determinism, every injection
site's degradation path, the chaos-session helper, the CLI flag, and the
headline acceptance criterion: training under a fault plan that forces
retries and serial fallback is *bit-identical* to a fault-free run in its
losses and weights — only the simulated timeline moves.
"""

import json

import numpy as np
import pytest

from repro.core import GLP4NN, DegradePolicy, DispatchPolicy
from repro.data import BatchLoader, make_dataset
from repro.errors import (
    DegradedError,
    FaultInjected,
    FaultPlanError,
    TransientError,
    TransientFault,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SITES,
    active_injector,
    chaos_session,
    install,
    uninstall,
)
from repro.gpusim import GPU, get_device
from repro.kernels.ir import KernelChain, LayerWork
from repro.nn.solver import SolverConfig
from repro.nn.zoo import build_cifar10
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.session import TrainingSession
from tests.conftest import small_kernel


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends with no installed injector."""
    uninstall()
    yield
    uninstall()


def fresh():
    return GPU(get_device("P100"), record_timeline=False)


def work(layer="conv1", samples=6, flops=150_000.0):
    chains = tuple(
        KernelChain((
            small_kernel("im2col", blocks=2, threads=512, regs=33,
                         flops=flops / 4, tag=f"s{i}"),
            small_kernel("sgemm", blocks=4, threads=256, smem=4096,
                         flops=flops, tag=f"s{i}"),
        ))
        for i in range(samples)
    )
    return LayerWork(layer=layer, phase="forward", parallel_chains=chains)


def plan_of(*specs, seed=0):
    return FaultPlan(tuple(specs), seed=seed)


# ----------------------------------------------------------------------
# Plan & trigger semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_roundtrip_through_json(self, tmp_path):
        plan = plan_of(
            FaultSpec(site="launch", kind="transient", key="sgemm*", nth=3),
            FaultSpec(site="milp_solve", effect="infeasible", every=2,
                      max_fires=5),
            seed=42,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="warp_scheduler")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(site="launch", kind="intermittent")

    def test_multiple_triggers_rejected(self):
        with pytest.raises(FaultPlanError, match="multiple triggers"):
            FaultSpec(site="launch", nth=1, every=2)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(site="launch", probability=1.5)

    def test_effect_validated_per_site(self):
        with pytest.raises(FaultPlanError, match="effect"):
            FaultSpec(site="launch", effect="infeasible")
        # valid where it belongs
        FaultSpec(site="milp_solve", effect="infeasible")

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec"):
            FaultSpec.from_dict({"site": "launch", "when": "always"})

    def test_bad_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.load(path)

    def test_sites_are_documented_set(self):
        assert set(SITES) == {"launch", "stream_create", "profiler_record",
                              "milp_solve", "cache_load", "sync",
                              "graph_launch", "replica_crash",
                              "replica_slow", "link_drop"}


class TestTriggers:
    def fires(self, spec, calls, key="k"):
        inj = FaultInjector(plan_of(spec))
        return [inj.poll(spec.site, key) is not None for _ in range(calls)]

    def test_nth_fires_once(self):
        out = self.fires(FaultSpec(site="launch", nth=3), 6)
        assert out == [False, False, True, False, False, False]

    def test_every_k(self):
        out = self.fires(FaultSpec(site="launch", every=2), 6)
        assert out == [False, True, False, True, False, True]

    def test_after_n(self):
        out = self.fires(FaultSpec(site="launch", after=4), 6)
        assert out == [False, False, False, False, True, True]

    def test_untriggered_fires_always(self):
        assert all(self.fires(FaultSpec(site="launch"), 4))

    def test_max_fires_caps(self):
        out = self.fires(FaultSpec(site="launch", max_fires=2), 5)
        assert out == [True, True, False, False, False]

    def test_key_glob_filters(self):
        spec = FaultSpec(site="launch", key="sgemm*")
        inj = FaultInjector(plan_of(spec))
        assert inj.poll("launch", "im2col") is None
        assert inj.poll("launch", "sgemm_nt") is spec
        # non-matching calls do not advance the spec's counter
        spec2 = FaultSpec(site="launch", key="sgemm*", nth=1)
        inj2 = FaultInjector(plan_of(spec2))
        assert inj2.poll("launch", "im2col") is None
        assert inj2.poll("launch", "sgemm") is spec2

    def seq(self, spec, seed, n=64):
        inj = FaultInjector(plan_of(spec, seed=seed))
        return [inj.poll("launch", "k") is not None for _ in range(n)]

    def test_probability_deterministic_per_seed(self):
        spec = FaultSpec(site="launch", probability=0.4)
        seq1 = self.seq(spec, seed=7)
        seq2 = self.seq(spec, seed=7)
        seq3 = self.seq(spec, seed=8)
        assert seq1 == seq2
        assert seq1 != seq3          # astronomically unlikely to collide
        assert any(seq1) and not all(seq1)

    def test_transient_check_raises_transient_fault(self):
        inj = FaultInjector(plan_of(
            FaultSpec(site="sync", kind="transient")))
        with pytest.raises(TransientFault) as ei:
            inj.check("sync", "P100")
        assert isinstance(ei.value, TransientError)
        assert isinstance(ei.value, FaultInjected)
        assert ei.value.site == "sync"

    def test_persistent_check_raises_fault_injected(self):
        inj = FaultInjector(plan_of(FaultSpec(site="launch")))
        with pytest.raises(FaultInjected) as ei:
            inj.check("launch", "sgemm")
        assert not isinstance(ei.value, TransientError)
        assert ei.value.kind == "persistent"

    def test_event_log_records_firings(self):
        inj = FaultInjector(plan_of(FaultSpec(site="launch", every=2)))
        for _ in range(4):
            inj.poll("launch", "k")
        assert inj.fires == 2
        assert inj.fires_at("launch") == 2
        assert inj.summary() == {"launch": 2}
        assert [e.call_index for e in inj.events] == [2, 4]
        assert "launch" in inj.events[0].describe()


# ----------------------------------------------------------------------
# Hook installation & zero-impact guarantee
# ----------------------------------------------------------------------
class TestHooks:
    def test_chaos_session_installs_and_restores(self):
        assert active_injector() is None
        with chaos_session(plan_of(FaultSpec(site="launch", nth=99))) as inj:
            assert active_injector() is inj
            with chaos_session(plan_of(), seed=3) as inner:
                assert active_injector() is inner
            assert active_injector() is inj     # nesting restores
        assert active_injector() is None

    def test_chaos_session_accepts_path_and_seed(self, tmp_path):
        path = tmp_path / "p.json"
        plan_of(FaultSpec(site="sync", nth=1), seed=1).save(path)
        with chaos_session(path, seed=99) as inj:
            assert inj.plan.seed == 99
            assert inj.plan.specs[0].site == "sync"

    def test_install_returns_previous(self):
        a = FaultInjector(plan_of())
        b = FaultInjector(plan_of())
        assert install(a) is None
        assert install(b) is a
        assert uninstall() is b

    def test_empty_plan_changes_nothing(self):
        """Installed-but-empty plan == no plan: identical timelines.

        The first (profiling) run's elapsed time includes the *measured*
        analysis wall clock ``T_a``, which jitters between processes by
        design — so the comparison covers the steady-state runs, which are
        purely simulated time.
        """
        def run_workload():
            gpu = fresh()
            glp = GLP4NN([gpu])
            w = work()
            for _ in range(3):
                glp.run_layer(gpu, w)
            runs = glp.scheduler_for(gpu).runs
            return ([r.elapsed_us for r in runs[1:]],
                    [(r.streams_used, r.degraded, r.retries) for r in runs])
        baseline = run_workload()
        with chaos_session(plan_of()):
            under_empty_plan = run_workload()
        assert under_empty_plan[1] == baseline[1]
        np.testing.assert_allclose(under_empty_plan[0], baseline[0],
                                   rtol=1e-9)


# ----------------------------------------------------------------------
# Per-site degradation behavior
# ----------------------------------------------------------------------
class TestLaunchFaults:
    def test_transient_launch_is_retried(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        glp.run_layer(gpu, w)                  # profile + decide
        before = gpu.kernels_completed
        with chaos_session(plan_of(
                FaultSpec(site="launch", kind="transient", nth=2))):
            run = glp.run_layer(gpu, w)
        assert run.retries == 1
        assert not run.degraded
        # steady-state retry is per-launch: every kernel ran exactly once
        assert gpu.kernels_completed - before == w.num_kernels

    def test_transient_fault_during_profiling_still_completes(self):
        # a fault mid-profiling retries the whole (idempotent) profiling
        # pass; the layer's work is complete and a decision is cached
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(
                FaultSpec(site="launch", kind="transient", nth=2))):
            run = glp.run_layer(gpu, w)
        assert run.profiled and not run.degraded
        assert run.retries == 1
        assert run.decision is not None
        assert gpu.kernels_completed >= w.num_kernels

    def test_retry_budget_exhaustion_raises_degraded(self):
        gpu = fresh()
        glp = GLP4NN([gpu], degrade_policy=DegradePolicy(max_retries=2))
        with chaos_session(plan_of(
                FaultSpec(site="launch", kind="transient"))):  # every call
            with pytest.raises(DegradedError, match="retries"):
                glp.run_layer(gpu, work())

    def test_backoff_charges_simulated_clock(self):
        policy = DegradePolicy(max_retries=3, backoff_us=40.0,
                               backoff_factor=2.0)
        gpu = fresh()
        glp = GLP4NN([gpu], degrade_policy=policy)
        w = work()
        glp.run_layer(gpu, w)                  # profile + decide (pays T_a)
        healthy = glp.run_layer(gpu, w)        # steady state: simulated only
        with chaos_session(plan_of(
                FaultSpec(site="launch", kind="transient", nth=1))):
            retried = glp.run_layer(gpu, w)
        # exactly one retry at first-attempt backoff: +40 simulated µs
        assert retried.retries == 1
        assert retried.elapsed_us == pytest.approx(
            healthy.elapsed_us + policy.delay_us(1))

    def test_persistent_launch_fault_propagates(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        with chaos_session(plan_of(FaultSpec(site="launch"))):
            with pytest.raises(FaultInjected):
                glp.run_layer(gpu, work())


class TestSyncFaults:
    def test_transient_sync_is_retried(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        with chaos_session(plan_of(
                FaultSpec(site="sync", kind="transient", nth=1))):
            run = glp.run_layer(gpu, work())
        assert run.retries == 1
        assert not run.degraded

    def test_sync_watchdog_raises_after_budget(self):
        gpu = fresh()
        glp = GLP4NN([gpu], degrade_policy=DegradePolicy(max_retries=1))
        w = work()
        glp.run_layer(gpu, w)                  # profile + decide
        with chaos_session(plan_of(
                FaultSpec(site="sync", kind="transient"))):
            with pytest.raises(DegradedError, match="synchronize"):
                glp.run_layer(gpu, w)


class TestStreamPoolFaults:
    def warmed(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        glp.run_layer(gpu, w)          # profile + decide
        first = glp.run_layer(gpu, w)  # concurrent dispatch, pool created
        assert first.streams_used > 1
        return gpu, glp, w

    def test_pool_failure_falls_back_to_serial(self):
        gpu, glp, w = self.warmed()
        with chaos_session(plan_of(FaultSpec(site="stream_create"))):
            run = glp.run_layer(gpu, w)
        assert run.degraded
        assert run.streams_used == 1
        assert "stream pool unavailable" in run.degrade_reason
        # the decision itself is still cached and intact
        assert run.decision is not None and run.decision.c_out > 1

    def test_recovers_after_fault_clears(self):
        gpu, glp, w = self.warmed()
        with chaos_session(plan_of(
                FaultSpec(site="stream_create", nth=1))):
            degraded = glp.run_layer(gpu, w)
            healthy = glp.run_layer(gpu, w)
        assert degraded.degraded and degraded.streams_used == 1
        assert not healthy.degraded
        assert healthy.streams_used == healthy.decision.c_out


class TestMilpFaults:
    def test_solver_timeout_degrades_then_recovers(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(
                FaultSpec(site="milp_solve", nth=1))):   # timeout once
            first = glp.run_layer(gpu, w)
            second = glp.run_layer(gpu, w)
        assert first.degraded
        assert "analyzer unavailable" in first.degrade_reason
        assert first.streams_used == 1
        # profile survived; the analysis retried and succeeded
        assert not second.degraded
        assert second.decision is not None

    def test_injected_infeasible_clamps_c_out_to_one(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(FaultSpec(
                site="milp_solve", effect="infeasible", nth=1))):
            run = glp.run_layer(gpu, w)
        # the clamp is a *decision*, not a degradation: cached and reused
        assert not run.degraded
        assert run.decision is not None
        assert run.decision.c_out == 1
        assert run.decision.occupancy_ratio == 0.0


class TestProfilerFaults:
    def test_all_records_dropped_degrades_serially(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(FaultSpec(site="profiler_record"))):
            run = glp.run_layer(gpu, w)
        assert run.degraded
        assert "profiling unavailable" in run.degrade_reason
        assert run.streams_used == 1
        assert not glp.tracker.has(gpu, w.key)   # nothing cached

    def test_reprofiles_once_records_flow_again(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(FaultSpec(
                site="profiler_record", max_fires=100))):
            glp.run_layer(gpu, w)
        # fault gone: the next execution profiles successfully
        second = glp.run_layer(gpu, w)
        assert second.profiled
        assert glp.tracker.has(gpu, w.key)
        third = glp.run_layer(gpu, w)
        assert third.streams_used == third.decision.c_out

    def test_partial_drop_still_yields_decision(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(plan_of(FaultSpec(
                site="profiler_record", key="im2col"))):
            run = glp.run_layer(gpu, w)
        assert run.profiled and not run.degraded
        profile = glp.tracker.get(gpu, w.key)
        assert [k.name for k in profile.kernels] == ["sgemm"]
        assert run.decision is not None


class TestCacheFaults:
    def test_injected_cache_fault_quarantines_document(self, tmp_path):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        glp.run_layer(gpu, w)
        path = tmp_path / "d.json"
        glp.save_decisions(gpu, path)

        gpu2 = fresh()
        glp2 = GLP4NN([gpu2])
        with chaos_session(plan_of(FaultSpec(site="cache_load"))):
            report = glp2.load_decisions_safe(gpu2, path)
        assert report.loaded == 0
        assert not report.ok
        assert report.quarantined[0][1].startswith("injected fault")
        # session still functional: layer simply re-profiles
        run = glp2.run_layer(gpu2, w)
        assert run.profiled


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    PLAN = FaultPlan((
        FaultSpec(site="launch", kind="transient", probability=0.05),
        FaultSpec(site="stream_create", every=3),
        FaultSpec(site="sync", kind="transient", nth=4),
    ), seed=1234)

    def run_once(self):
        gpu = fresh()
        glp = GLP4NN([gpu])
        w = work()
        with chaos_session(self.PLAN) as inj:
            for _ in range(5):
                glp.run_layer(gpu, w)
        sched = glp.scheduler_for(gpu)
        return (
            [(e.seq, e.site, e.key, e.call_index, e.spec_index)
             for e in inj.events],
            # runs[0] pays the measured (wall-clock) analysis time T_a;
            # every later run is purely simulated and must be bit-stable.
            [r.elapsed_us for r in sched.runs[1:]],
            [(r.streams_used, r.degraded, r.retries) for r in sched.runs],
        )

    def test_same_plan_same_seed_same_everything(self):
        events1, elapsed1, flags1 = self.run_once()
        events2, elapsed2, flags2 = self.run_once()
        assert events1 == events2
        assert flags1 == flags2
        np.testing.assert_allclose(elapsed1, elapsed2, rtol=1e-9)

    def test_different_seed_different_fault_sequence(self):
        events, *_ = self.run_once()
        gpu = fresh()
        glp = GLP4NN([gpu])
        with chaos_session(self.PLAN, seed=99) as inj:
            for _ in range(5):
                glp.run_layer(gpu, work())
        reseeded = [(e.seq, e.site, e.key, e.call_index, e.spec_index)
                    for e in inj.events]
        # deterministic triggers (every/nth) are seed-independent; the
        # probability spec's firing pattern is not
        assert events != reseeded


# ----------------------------------------------------------------------
# Convergence invariance under chaos (the acceptance criterion)
# ----------------------------------------------------------------------
class TestChaosConvergenceInvariance:
    CHAOS_PLAN = FaultPlan((
        # transient launch hiccups -> bounded retries with backoff
        FaultSpec(site="launch", kind="transient", every=150, max_fires=6),
        # periodic stream-pool loss -> serial fallback for those layers
        FaultSpec(site="stream_create", every=2),
        # first MILP solve times out -> decision unavailable once
        FaultSpec(site="milp_solve", nth=1),
        # an occasional sync hiccup -> retried by the watchdog
        FaultSpec(site="sync", kind="transient", nth=7),
    ), seed=7)

    def train(self, plan):
        net = build_cifar10(batch=20, seed=3, with_accuracy=False)
        session = TrainingSession(
            net, GLP4NNExecutor(fresh()),
            solver_config=SolverConfig(base_lr=0.001, momentum=0.9),
        )
        ds = make_dataset("cifar10", 100, seed=11)
        loader = BatchLoader(ds, 20, seed=12)
        if plan is None:
            for _ in range(6):
                session.run_iteration(loader.next_batch())
            injector = None
        else:
            with chaos_session(plan) as injector:
                for _ in range(6):
                    session.run_iteration(loader.next_batch())
        params = [p.data.copy() for p, _, _ in net.unique_params()]
        return session, params, injector

    def test_bit_identical_losses_and_weights_under_chaos(self):
        clean, clean_params, _ = self.train(None)
        chaotic, chaos_params, injector = self.train(self.CHAOS_PLAN)

        # the plan actually bit: retries happened and layers fell back
        assert injector.fires > 0
        assert injector.fires_at("stream_create") > 0
        assert chaotic.total_retries() > 0
        degraded = chaotic.degraded_layers()
        assert degraded, "expected at least one degraded layer"
        assert any("unavailable" in r or "stream pool" in r
                   for r in degraded.values())

        # convergence invariance: numerics are bit-identical
        assert chaotic.losses == clean.losses
        for a, b in zip(chaos_params, clean_params):
            np.testing.assert_array_equal(a, b)

        # only the simulated timeline may differ (compared past iteration
        # 0, which carries the measured analysis wall clock either way)
        clean_t = [t.sim_time_us for t in clean.timings[1:]]
        chaos_t = [t.sim_time_us for t in chaotic.timings[1:]]
        assert clean_t != chaos_t

    def test_chaos_timeline_is_reproducible(self):
        s1, _, i1 = self.train(self.CHAOS_PLAN)
        s2, _, i2 = self.train(self.CHAOS_PLAN)
        # iteration 0 pays the measured analysis wall clock T_a, which both
        # jitters between processes and offsets the absolute simulated
        # clock — later deltas agree up to float roundoff at that offset
        np.testing.assert_allclose(
            [t.sim_time_us for t in s1.timings[1:]],
            [t.sim_time_us for t in s2.timings[1:]],
            rtol=1e-9,
        )
        assert [(e.site, e.key, e.call_index) for e in i1.events] == \
            [(e.site, e.key, e.call_index) for e in i2.events]
        assert s1.degraded_layers() == s2.degraded_layers()

    def test_layer_runs_expose_what_degraded_and_why(self):
        chaotic, _, _ = self.train(self.CHAOS_PLAN)
        runs = chaotic.executor.scheduler.runs
        flagged = [r for r in runs if r.degraded]
        assert flagged
        for r in flagged:
            assert r.degrade_reason       # reason always recorded
            assert r.streams_used == 1    # fallback is serial
        healthy = [r for r in runs if not r.degraded]
        assert all(r.degrade_reason == "" for r in healthy)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliFaults:
    def test_run_under_fault_plan(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "plan.json"
        plan_of(FaultSpec(site="milp_solve", effect="infeasible", every=2),
                seed=5).save(path)
        assert main(["run", "table1", "--faults", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fault injection" in out

    def test_bad_plan_is_reported(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "plan.json"
        path.write_text("{broken", encoding="utf-8")
        assert main(["run", "table1", "--faults", str(path)]) == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_faults_flag_is_optional(self, capsys):
        from repro.cli import main
        assert main(["run", "table1"]) == 0
        assert "fault injection" not in capsys.readouterr().out
