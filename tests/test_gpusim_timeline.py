"""Tests for timeline recording and rendering."""

import json

import pytest

from repro.gpusim.timeline import (
    Timeline,
    TraceRecord,
    ascii_timeline,
    to_chrome_trace,
)


def rec(name="k", stream=1, start=0.0, end=10.0, tag=""):
    return TraceRecord(
        name=name, tag=tag, stream_id=stream,
        enqueue_us=start - 1.0, start_us=start, end_us=end,
        grid=(4, 1, 1), block=(256, 1, 1), registers=32, shared_mem=0,
    )


class TestTimeline:
    def test_add_and_len(self):
        t = Timeline("P100")
        t.add(rec())
        assert len(t) == 1

    def test_disabled_timeline_drops_records(self):
        t = Timeline("P100", enabled=False)
        t.add(rec())
        assert len(t) == 0

    def test_record_properties(self):
        r = rec(start=5.0, end=12.0)
        assert r.duration_us == pytest.approx(7.0)
        assert r.queue_delay_us == pytest.approx(1.0)

    def test_by_stream_sorted(self):
        t = Timeline()
        t.add(rec(stream=1, start=10, end=20))
        t.add(rec(stream=1, start=0, end=5))
        t.add(rec(stream=2, start=3, end=4))
        groups = t.by_stream()
        assert [r.start_us for r in groups[1]] == [0, 10]
        assert set(groups) == {1, 2}

    def test_by_name(self):
        t = Timeline()
        t.add(rec(name="a"))
        t.add(rec(name="b"))
        t.add(rec(name="a"))
        assert len(t.by_name("a")) == 2

    def test_span(self):
        t = Timeline()
        t.add(rec(start=2, end=9))
        t.add(rec(start=5, end=30))
        assert t.span_us() == pytest.approx(28.0)

    def test_span_empty(self):
        assert Timeline().span_us() == 0.0

    def test_max_concurrency(self):
        t = Timeline()
        t.add(rec(stream=1, start=0, end=10))
        t.add(rec(stream=2, start=5, end=15))
        t.add(rec(stream=3, start=20, end=25))
        assert t.max_concurrency() == 2

    def test_max_concurrency_touching_intervals_do_not_overlap(self):
        t = Timeline()
        t.add(rec(stream=1, start=0, end=10))
        t.add(rec(stream=2, start=10, end=20))
        assert t.max_concurrency() == 1


class TestRendering:
    def test_ascii_empty(self):
        assert "empty" in ascii_timeline(Timeline())

    def test_ascii_has_lane_per_stream(self):
        t = Timeline("P100")
        t.add(rec(stream=0, name="x"))
        t.add(rec(stream=3, name="y"))
        out = ascii_timeline(t, width=40)
        assert "default" in out and "s3" in out
        assert "x" in out and "y" in out

    def test_chrome_trace_valid_json(self):
        t = Timeline("P100")
        t.add(rec(name="sgemm", tag="conv1/s0"))
        doc = json.loads(to_chrome_trace(t))
        ev = doc["traceEvents"][0]
        assert ev["name"] == "sgemm"
        assert ev["ph"] == "X"
        assert ev["args"]["grid"] == [4, 1, 1]
        assert ev["tid"] == "stream 1"

    def test_chrome_trace_empty_timeline(self):
        doc = json.loads(to_chrome_trace(Timeline()))
        assert doc == {"traceEvents": []}

    def test_trace_events_one_per_record(self):
        t = Timeline()          # no device name: pid falls back to "gpu"
        t.add(rec(stream=1, start=0, end=10))
        t.add(rec(stream=2, start=5, end=15))
        events = t.trace_events()
        assert len(events) == 2
        assert {e["pid"] for e in events} == {"gpu"}
        assert {e["tid"] for e in events} == {"stream 1", "stream 2"}

    def test_overlapping_records_on_one_stream_all_rendered(self):
        # Overlap within one stream cannot happen on real hardware, but
        # the renderers must not lose or merge such records (they can be
        # produced by hand-built timelines and by future preemption
        # models).
        t = Timeline("P100")
        t.add(rec(name="a", stream=1, start=0.0, end=10.0))
        t.add(rec(name="b", stream=1, start=5.0, end=15.0))
        doc = json.loads(to_chrome_trace(t))
        assert len(doc["traceEvents"]) == 2
        assert t.max_concurrency() == 2
        lanes = ascii_timeline(t, width=30)
        assert "a" in lanes and "b" in lanes

    def test_ascii_width_clamped_to_at_least_one_column(self):
        t = Timeline("P100")
        t.add(rec(name="k", start=0.0, end=10.0))
        for width in (0, -5, 1):
            out = ascii_timeline(t, width=width)
            assert "1 cols" in out
            assert "k" in out

    def test_ascii_fractional_width_truncated(self):
        t = Timeline("P100")
        t.add(rec(name="k", start=0.0, end=10.0))
        assert "2 cols" in ascii_timeline(t, width=2.9)
