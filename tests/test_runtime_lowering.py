"""Tests for layer -> kernel lowering."""

import math

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.config import ConvConfig
from repro.nn.layers import (
    ConvolutionLayer,
    DropoutLayer,
    InnerProductLayer,
    LRNLayer,
    PoolingLayer,
    ReLULayer,
)
from repro.nn.zoo import build_cifar10, build_siamese
from repro.nn.zoo.table5 import CAFFENET_CONVS, GOOGLENET_CONVS
from repro.runtime.lowering import (
    conv_works,
    lower_conv_backward,
    lower_conv_forward,
    lower_layer,
    lower_net,
)

RNG = lambda s=0: np.random.default_rng(s)


class TestConvForward:
    def test_one_chain_per_sample(self):
        cfg = ConvConfig("c", n=7, ci=3, hw=8, co=4, f=3, s=1, p=1)
        work = lower_conv_forward(cfg)
        assert len(work.parallel_chains) == 7
        assert work.serial_kernels == ()

    def test_chain_is_im2col_sgemm_gemmk(self):
        cfg = ConvConfig("c", n=2, ci=3, hw=8, co=4, f=3, s=1, p=1)
        chain = lower_conv_forward(cfg).parallel_chains[0]
        assert [k.name for k in chain] == ["im2col", "sgemm", "gemmk"]

    def test_1x1_conv_skips_im2col(self):
        cfg = ConvConfig("c", n=2, ci=832, hw=7, co=384, f=1, s=1, p=0)
        chain = lower_conv_forward(cfg).parallel_chains[0]
        assert [k.name for k in chain] == ["sgemm", "gemmk"]

    def test_gemm_shape_from_config(self):
        cfg = CAFFENET_CONVS[1]   # conv2: 256 x 729 x 2400
        chain = lower_conv_forward(cfg).parallel_chains[0]
        sgemm = next(k for k in chain if k.name == "sgemm")
        assert sgemm.total_flops == pytest.approx(
            2.0 * cfg.co * cfg.out_spatial * cfg.k_gemm
        )

    def test_tags_carry_sample_index(self):
        cfg = ConvConfig("conv9", n=3, ci=1, hw=6, co=2, f=3, s=1, p=0)
        work = lower_conv_forward(cfg)
        assert work.parallel_chains[2].kernels[0].tag == "conv9/s2"

    def test_key(self):
        cfg = ConvConfig("conv1", n=1, ci=1, hw=6, co=2, f=3, s=1, p=0)
        assert lower_conv_forward(cfg).key == "conv1/forward"


class TestConvBackward:
    def test_chains_and_serial_reduction(self):
        cfg = ConvConfig("c", n=4, ci=3, hw=8, co=4, f=3, s=1, p=1)
        work = lower_conv_backward(cfg)
        assert len(work.parallel_chains) == 4
        names = [k.name for k in work.parallel_chains[0]]
        assert names == ["sgemm", "sgemm", "col2im"]
        assert [k.name for k in work.serial_kernels] == ["axpy", "gemmk"]

    def test_1x1_backward_skips_col2im(self):
        cfg = ConvConfig("c", n=2, ci=16, hw=7, co=8, f=1, s=1, p=0)
        names = [k.name for k in lower_conv_backward(cfg).parallel_chains[0]]
        assert names == ["sgemm", "sgemm"]


class TestLayerLowering:
    def test_conv_layer(self):
        layer = ConvolutionLayer("conv", 4, 3, pad=1)
        layer.setup([(5, 3, 8, 8)], RNG())
        work = lower_layer(layer, "forward")
        assert len(work.parallel_chains) == 5

    def test_conv_before_setup_rejected(self):
        with pytest.raises(NetworkError):
            lower_layer(ConvolutionLayer("conv", 4, 3), "forward")

    def test_pooling_whole_batch(self):
        layer = PoolingLayer("pool", 3, 2)
        layer.setup([(4, 8, 16, 16)], RNG())
        work = lower_layer(layer, "forward")
        assert work.parallel_chains == ()
        (k,) = work.serial_kernels
        assert k.name == "maxpool"
        assert k.launch.total_threads >= 4 * 8 * 8 * 8

    def test_relu(self):
        layer = ReLULayer("r")
        layer.setup([(2, 100)], RNG())
        work = lower_layer(layer, "forward", [(2, 100)])
        assert work.serial_kernels[0].name == "relu"

    def test_lrn_two_kernels(self):
        layer = LRNLayer("n")
        layer.setup([(2, 8, 4, 4)], RNG())
        work = lower_layer(layer, "forward", [(2, 8, 4, 4)])
        assert [k.name for k in work.serial_kernels] == \
            ["lrn_scale", "lrn_output"]

    def test_inner_product_forward_and_backward(self):
        layer = InnerProductLayer("ip", 10)
        layer.setup([(4, 20)], RNG())
        fwd = lower_layer(layer, "forward", [(4, 20)])
        assert [k.name for k in fwd.serial_kernels] == ["sgemm", "gemmk"]
        bwd = lower_layer(layer, "backward", [(4, 20)])
        assert [k.name for k in bwd.serial_kernels] == \
            ["sgemm", "sgemm", "gemmk"]

    def test_dropout(self):
        layer = DropoutLayer("d", 0.5)
        layer.setup([(2, 50)], RNG())
        work = lower_layer(layer, "forward", [(2, 50)])
        assert work.serial_kernels[0].name == "dropout"

    def test_accuracy_has_no_gpu_work(self):
        from repro.nn.layers import AccuracyLayer
        layer = AccuracyLayer("acc")
        layer.setup([(2, 5), (2,)], RNG())
        assert lower_layer(layer, "forward", [(2, 5), (2,)]) is None


class TestNetLowering:
    def test_cifar10_forward_order(self):
        net = build_cifar10(batch=4)
        works = lower_net(net, "forward")
        keys = [w.layer for w in works]
        assert keys[0] == "conv1"
        assert "ip2" in keys and "loss" in keys
        assert "accuracy" not in keys     # host-side

    def test_backward_reversed(self):
        net = build_cifar10(batch=4, with_accuracy=False)
        fwd = lower_net(net, "forward")
        bwd = lower_net(net, "backward")
        assert bwd[0].layer == fwd[-1].layer
        assert all(w.phase == "backward" for w in bwd)

    def test_conv_layers_parallel_others_serial(self):
        net = build_siamese(batch=4)
        works = lower_net(net, "forward")
        for w in works:
            if w.layer.startswith("conv"):
                assert len(w.parallel_chains) == 4
            else:
                assert w.parallel_chains == ()


class TestConvWorks:
    def test_shape_driven_no_net_needed(self):
        works = conv_works(GOOGLENET_CONVS, "forward")
        assert len(works) == 6
        assert works[0].key == "conv_1/forward"
        assert len(works[0].parallel_chains) == 32

    def test_batch_override(self):
        works = conv_works(CAFFENET_CONVS[:1], "forward", batch_override=8)
        assert len(works[0].parallel_chains) == 8

    def test_backward_phase(self):
        works = conv_works(CAFFENET_CONVS[:1], "backward")
        assert works[0].phase == "backward"
