"""Import-surface tests: every advertised export exists and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.gpusim",
    "repro.kernels",
    "repro.cupti",
    "repro.milp",
    "repro.nn",
    "repro.nn.layers",
    "repro.nn.zoo",
    "repro.data",
    "repro.core",
    "repro.runtime",
    "repro.comm",
    "repro.bench",
    "repro.serve",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_packages_have_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_version_exposed():
    import repro
    assert repro.__version__.count(".") == 2


def test_key_entry_points_importable():
    from repro.core import GLP4NN                       # noqa: F401
    from repro.gpusim import GPU, get_device            # noqa: F401
    from repro.runtime import (                         # noqa: F401
        GLP4NNExecutor,
        NaiveExecutor,
        TrainingSession,
        lower_net,
    )
    from repro.nn.zoo import NETWORKS                   # noqa: F401


def test_public_items_documented():
    """Spot-check: public classes/functions carry doc comments."""
    import inspect

    from repro.core import framework, runtime_scheduler
    from repro.gpusim import engine
    from repro.runtime import fusion, graph

    for module in (framework, runtime_scheduler, engine, graph, fusion):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", "") != module.__name__:
                    continue  # re-exports
                assert obj.__doc__, f"{module.__name__}.{name} undocumented"
