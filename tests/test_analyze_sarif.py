"""SARIF 2.1.0 export: rule metadata, severity levels, schema validity.

The schema check validates against a vendored subset of the OASIS
SARIF 2.1.0 schema (``tests/fixtures/sarif-2.1.0-subset.schema.json``)
so it runs offline; it skips cleanly when ``jsonschema`` is not
installed (the CI image has no network and a minimal wheel set).
"""

import json
import pathlib

import pytest

from repro.analyze.deadlock import DeadlockReport, deadlock_verdict_for
from repro.analyze.elide import (ElisionReport, _entry, certified_minimize)
from repro.analyze.hazards import HazardReport, verdict_for
from repro.analyze.lint import LintReport, LintViolation
from repro.analyze.program import DispatchProgram
from repro.analyze.sarif import RULE_META, to_sarif

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _racy_program() -> DispatchProgram:
    prog = DispatchProgram("sarif-racy")
    prog.launch("k1", stream=1, writes={"x"}, layer="conv1", chain=0)
    prog.launch("k2", stream=2, writes={"x"}, layer="conv2", chain=1)
    prog.sync()
    return prog


def _deadlocked_program() -> DispatchProgram:
    prog = DispatchProgram("sarif-deadlock")
    prog.launch("k1", stream=1, writes={"x"}, chain=0)
    prog.wait(event=7, stream=1)
    prog.record(event=7, stream=1)
    prog.sync()
    return prog


def _redundant_program() -> DispatchProgram:
    prog = DispatchProgram("sarif-redundant")
    prog.launch("a", stream=1, writes={"a"}, chain=0)
    prog.record(event=1, stream=1)
    prog.wait(event=1, stream=2)
    prog.wait(event=1, stream=2)   # duplicate: provably redundant
    prog.launch("b", stream=2, reads={"a"}, writes={"b"}, chain=1)
    prog.sync()
    return prog


def _full_log() -> dict:
    hazards = HazardReport(
        device="p100", pool_size=4, batch=4, seed=0,
        entries=[verdict_for(_racy_program(), network="t", plan="rr")])
    deadlock = DeadlockReport(
        device="p100", pool_size=4, batch=4, seed=0,
        entries=[deadlock_verdict_for(_deadlocked_program(),
                                      network="t", plan="rr")])
    elision = ElisionReport(
        device="p100", pool_size=4, batch=4, seed=0,
        entries=[_entry(certified_minimize(_redundant_program()),
                        network="t", plan="rr")])
    lint = LintReport(rules=["unseeded-rng"], files_checked=1,
                      suppressed=2)
    lint.violations.append(LintViolation(
        rule="unseeded-rng", path="src/x.py", line=3,
        message="random.Random() without a seed"))
    return to_sarif(hazards=hazards, deadlock=deadlock,
                    elision=elision, lint=lint)


def test_rule_meta_covers_all_analyzer_rules():
    from repro.analyze.capacity import CAPACITY_RULES
    from repro.analyze.deadlock import DEADLOCK_RULES
    from repro.analyze.elide import ELIDE_RULE
    expected = {f"hazard/{k}" for k in ("RAW", "WAR", "WAW")}
    expected |= set(DEADLOCK_RULES) | set(CAPACITY_RULES) | {ELIDE_RULE}
    assert expected <= set(RULE_META)
    for rule_id, (level, short, full, anchor) in RULE_META.items():
        assert level in ("none", "note", "warning", "error"), rule_id
        assert short and full, rule_id


def test_severity_levels_by_family():
    assert RULE_META["hazard/RAW"][0] == "error"
    assert RULE_META["deadlock/cycle"][0] == "error"
    assert RULE_META["deadlock/never-recorded"][0] == "error"
    assert RULE_META["capacity/over-subscription"][0] == "warning"
    assert RULE_META["capacity/stream-pool"][0] == "warning"
    assert RULE_META["elide/redundant-sync"][0] == "note"


def test_log_structure_and_rule_metadata():
    log = _full_log()
    assert log["version"] == "2.1.0"
    names = [r["tool"]["driver"]["name"] for r in log["runs"]]
    assert names == ["repro-analyze-hazards", "repro-analyze-deadlock",
                     "repro-analyze-elide", "repro-analyze-lint"]
    for run in log["runs"]:
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["fullDescription"]["text"], rule["id"]
            assert rule["helpUri"].startswith("https://"), rule["id"]
            assert rule["defaultConfiguration"]["level"] in (
                "none", "note", "warning", "error")
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            assert result["ruleId"] in ids
            assert result["message"]["text"]


def test_results_carry_expected_levels():
    log = _full_log()
    by_name = {r["tool"]["driver"]["name"]: r for r in log["runs"]}
    hazard_levels = {r["level"]
                     for r in by_name["repro-analyze-hazards"]["results"]}
    assert hazard_levels == {"error"}
    deadlock = by_name["repro-analyze-deadlock"]["results"]
    assert deadlock and all(r["level"] == "error" for r in deadlock)
    assert {r["ruleId"] for r in deadlock} == {"deadlock/self-wait"}
    elide = by_name["repro-analyze-elide"]["results"]
    assert elide and all(r["level"] == "note" for r in elide)
    lint = by_name["repro-analyze-lint"]["results"]
    assert lint and all(r["level"] == "warning" for r in lint)


def test_run_properties_carry_suppressed_counts():
    log = _full_log()
    by_name = {r["tool"]["driver"]["name"]: r for r in log["runs"]}
    assert by_name["repro-analyze-hazards"]["properties"][
        "suppressed"] == 0
    assert by_name["repro-analyze-lint"]["properties"]["suppressed"] == 2
    props = by_name["repro-analyze-elide"]["properties"]
    assert props["waits_removed"] == 1
    assert props["records_removed"] == 0


def test_deadlock_results_locate_the_cycle():
    log = _full_log()
    by_name = {r["tool"]["driver"]["name"]: r for r in log["runs"]}
    result = by_name["repro-analyze-deadlock"]["results"][0]
    logical = result["locations"][0]["logicalLocations"]
    assert len(logical) >= 2   # wait + record of the self-wait cycle
    assert all("fullyQualifiedName" in loc for loc in logical)


def test_log_validates_against_vendored_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (FIXTURES / "sarif-2.1.0-subset.schema.json")
        .read_text(encoding="utf-8"))
    jsonschema.validate(_full_log(), schema)


def test_empty_reports_still_validate():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (FIXTURES / "sarif-2.1.0-subset.schema.json")
        .read_text(encoding="utf-8"))
    hazards = HazardReport(device="p100", pool_size=4, batch=4, seed=0)
    deadlock = DeadlockReport(device="p100", pool_size=4, batch=4, seed=0)
    log = to_sarif(hazards=hazards, deadlock=deadlock)
    jsonschema.validate(log, schema)
    assert all(run["results"] == [] for run in log["runs"])
