"""Tests for the network zoo against the paper's Table 5."""

import numpy as np
import pytest

from repro.nn.config import ConvConfig
from repro.nn.zoo import (
    NETWORKS,
    NETWORK_ORDER,
    TABLE5,
    build_caffenet,
    build_cifar10,
    build_googlenet,
    build_siamese,
)

RNG = lambda s=0: np.random.default_rng(s)


class TestTable5Configs:
    def test_network_order(self):
        assert NETWORK_ORDER == ("CIFAR10", "Siamese", "CaffeNet",
                                 "GoogLeNet")

    def test_row_counts(self):
        assert len(TABLE5["CIFAR10"]) == 3
        assert len(TABLE5["Siamese"]) == 4
        assert len(TABLE5["CaffeNet"]) == 5
        assert len(TABLE5["GoogLeNet"]) == 6

    @pytest.mark.parametrize("net,name,expect", [
        ("CIFAR10", "conv1", (100, 3, 32, 32, 5, 1, 2)),
        ("CIFAR10", "conv3", (100, 32, 8, 64, 5, 1, 2)),
        ("Siamese", "conv1", (64, 1, 28, 20, 5, 1, 0)),
        ("Siamese", "conv2_p", (64, 20, 12, 50, 5, 1, 0)),
        ("CaffeNet", "conv1", (256, 3, 227, 96, 11, 4, 0)),
        ("CaffeNet", "conv5", (256, 384, 13, 256, 3, 1, 1)),
        ("GoogLeNet", "conv_1", (32, 160, 7, 320, 3, 1, 1)),
        ("GoogLeNet", "conv_6", (32, 832, 7, 48, 1, 1, 0)),
    ])
    def test_rows_verbatim(self, net, name, expect):
        cfg = next(c for c in TABLE5[net] if c.name == name)
        n, ci, hw, co, f, s, p = expect
        assert (cfg.n, cfg.ci, cfg.hw, cfg.co, cfg.f, cfg.s, cfg.p) == \
            (n, ci, hw, co, f, s, p)

    def test_out_dims(self):
        conv1 = TABLE5["CaffeNet"][0]
        assert conv1.out_hw == 55           # (227 - 11)/4 + 1
        assert TABLE5["Siamese"][0].out_hw == 24

    def test_gemm_dims(self):
        conv2 = TABLE5["CaffeNet"][1]
        assert conv2.k_gemm == 96 * 25
        assert conv2.out_spatial == 27 * 27


class TestCIFAR10Net:
    def test_conv_shapes_match_table5(self):
        net = build_cifar10(batch=100)
        for cfg in TABLE5["CIFAR10"]:
            layer = net.layer(cfg.name)
            built = layer.config
            assert (built.ci, built.hw, built.co, built.f, built.s, built.p) \
                == (cfg.ci, cfg.hw, cfg.co, cfg.f, cfg.s, cfg.p)

    def test_forward_backward(self):
        net = build_cifar10(batch=4)
        rng = RNG(1)
        blobs = net.forward({
            "data": rng.normal(size=(4, 3, 32, 32)).astype(np.float32),
            "label": rng.integers(0, 10, size=4).astype(np.float32),
        })
        assert blobs["loss"].shape == (1,)
        net.backward()

    def test_trains_on_synthetic_data(self):
        from repro.data import BatchLoader, make_dataset
        from repro.nn.solver import Solver, SolverConfig
        net = build_cifar10(batch=50, seed=1)
        loader = BatchLoader(make_dataset("cifar10", 400, seed=3), 50, seed=7)
        solver = Solver(net, SolverConfig(base_lr=0.01, momentum=0.9,
                                          weight_decay=0.004))
        losses = [solver.step(loader.next_batch()) for _ in range(120)]
        assert losses[-1] < 0.5 * losses[0]


class TestSiameseNet:
    def test_conv_shapes_match_table5(self):
        net = build_siamese(batch=64)
        for cfg in TABLE5["Siamese"]:
            built = net.layer(cfg.name).config
            assert (built.n, built.ci, built.hw, built.co) == \
                (cfg.n, cfg.ci, cfg.hw, cfg.co)

    def test_twins_share_parameters(self):
        net = build_siamese(batch=4)
        for base in ("conv1", "conv2", "ip1", "ip2", "feat"):
            assert net.layer(base).params[0] is \
                net.layer(f"{base}_p").params[0]

    def test_branches_compute_identically(self):
        net = build_siamese(batch=2)
        rng = RNG(4)
        x = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        blobs = net.forward({
            "data": x, "data_p": x.copy(),
            "sim": np.ones(2, dtype=np.float32),
        })
        np.testing.assert_allclose(blobs["feat"], blobs["feat_p"], rtol=1e-5)
        assert float(blobs["loss"][0]) == pytest.approx(0.0, abs=1e-8)


class TestCaffeNet:
    def test_conv_shapes_match_table5(self):
        net = build_caffenet(batch=2, classes=10, fc_dim=16)
        for cfg in TABLE5["CaffeNet"]:
            built = net.layer(cfg.name).config
            assert (built.ci, built.hw, built.co, built.f, built.s, built.p) \
                == (cfg.ci, cfg.hw, cfg.co, cfg.f, cfg.s, cfg.p)

    def test_forward_backward_small(self):
        net = build_caffenet(batch=2, classes=10, fc_dim=16)
        rng = RNG(5)
        net.forward({
            "data": rng.normal(size=(2, 3, 227, 227)).astype(np.float32),
            "label": np.array([0.0, 3.0], dtype=np.float32),
        })
        net.backward()
        assert np.isfinite(net.loss_value())


class TestGoogLeNet:
    def test_table5_units_present_with_exact_shapes(self):
        net = build_googlenet(batch=2, classes=10)
        for cfg in TABLE5["GoogLeNet"]:
            built = net.layer(cfg.name).config
            assert (built.ci, built.hw, built.co, built.f, built.s, built.p) \
                == (cfg.ci, cfg.hw, cfg.co, cfg.f, cfg.s, cfg.p)

    def test_inception_concat_widths(self):
        net = build_googlenet(batch=2, classes=10)
        assert net.blob_shapes["inception_5a/out"] == (2, 832, 7, 7)
        assert net.blob_shapes["inception_5b/out"] == (2, 1024, 7, 7)

    def test_forward_backward(self):
        net = build_googlenet(batch=2, classes=10)
        rng = RNG(6)
        net.forward({
            "data": rng.normal(size=(2, 832, 7, 7)).astype(np.float32),
            "label": np.array([1.0, 2.0], dtype=np.float32),
        })
        net.backward()
        assert np.isfinite(net.loss_value())


class TestRegistry:
    def test_all_networks_registered(self):
        assert set(NETWORKS) == set(NETWORK_ORDER)

    def test_batches_match_table5(self):
        assert NETWORKS["CIFAR10"].batch == 100
        assert NETWORKS["Siamese"].batch == 64
        assert NETWORKS["CaffeNet"].batch == 256
        assert NETWORKS["GoogLeNet"].batch == 32

    def test_datasets_match_table4(self):
        assert NETWORKS["CIFAR10"].dataset == "cifar10"
        assert NETWORKS["Siamese"].dataset == "mnist"
        assert NETWORKS["CaffeNet"].dataset == "imagenet"


class TestLeNet:
    def test_builds_and_trains(self):
        import numpy as np
        from repro.data import BatchLoader, make_dataset
        from repro.nn.solver import Solver, SolverConfig
        from repro.nn.zoo import build_lenet
        net = build_lenet(batch=32, seed=4)
        loader = BatchLoader(make_dataset("mnist", 300, seed=2), 32, seed=6)
        solver = Solver(net, SolverConfig(base_lr=0.02, momentum=0.9))
        losses = [solver.step(loader.next_batch()) for _ in range(120)]
        assert losses[-1] < 0.5 * losses[0]

    def test_is_the_siamese_branch(self):
        """LeNet's conv shapes equal the Siamese branch convs (Table 5)."""
        from repro.nn.zoo import build_lenet
        net = build_lenet(batch=64)
        c1 = net.layer("conv1").config
        c2 = net.layer("conv2").config
        assert (c1.ci, c1.hw, c1.co, c1.f) == (1, 28, 20, 5)
        assert (c2.ci, c2.hw, c2.co, c2.f) == (20, 12, 50, 5)
