"""Tests for the SGD solver and learning-rate policies."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layer import LayerDef
from repro.nn.layers import InnerProductLayer, SoftmaxWithLossLayer
from repro.nn.net import Net
from repro.nn.solver import Solver, SolverConfig


def linear_net(seed=0):
    return Net(
        "lin",
        [
            LayerDef(InnerProductLayer("ip", 3), ["data"], ["ip"]),
            LayerDef(SoftmaxWithLossLayer("loss"), ["ip", "label"], ["loss"]),
        ],
        input_shapes={"data": (8, 4), "label": (8,)},
        seed=seed,
    )


def batch(seed=1):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=8)
    protos = np.eye(4, dtype=np.float32)[:3] * 3
    data = protos[labels] + rng.normal(0, 0.2, size=(8, 4))
    return {"data": data.astype(np.float32),
            "label": labels.astype(np.float32)}


class TestLrPolicies:
    def test_fixed(self):
        cfg = SolverConfig(base_lr=0.1, lr_policy="fixed")
        assert cfg.learning_rate(0) == cfg.learning_rate(999) == 0.1

    def test_step(self):
        cfg = SolverConfig(base_lr=1.0, lr_policy="step", gamma=0.1,
                           stepsize=100)
        assert cfg.learning_rate(99) == pytest.approx(1.0)
        assert cfg.learning_rate(100) == pytest.approx(0.1)
        assert cfg.learning_rate(250) == pytest.approx(0.01)

    def test_inv(self):
        cfg = SolverConfig(base_lr=1.0, lr_policy="inv", gamma=0.001,
                           power=0.75)
        assert cfg.learning_rate(0) == pytest.approx(1.0)
        assert cfg.learning_rate(1000) == pytest.approx(2 ** -0.75)

    def test_exp(self):
        cfg = SolverConfig(base_lr=1.0, lr_policy="exp", gamma=0.9)
        assert cfg.learning_rate(2) == pytest.approx(0.81)

    def test_unknown_policy(self):
        with pytest.raises(NetworkError):
            SolverConfig(lr_policy="cosine").learning_rate(0)


class TestUpdateRule:
    def test_single_step_matches_manual_sgd(self):
        net = linear_net()
        cfg = SolverConfig(base_lr=0.5, momentum=0.0, weight_decay=0.0)
        solver = Solver(net, cfg)
        b = batch()
        # compute the expected update by hand
        net.forward(b)
        net.backward()
        expected = {}
        for blob, lr_mult, _ in net.unique_params():
            expected[blob.name] = blob.data - 0.5 * lr_mult * blob.diff
        # fresh identical net, one solver step
        net2 = linear_net()
        solver2 = Solver(net2, cfg)
        solver2.step(b)
        for blob, _, _ in net2.unique_params():
            np.testing.assert_allclose(blob.data, expected[blob.name],
                                       rtol=1e-5, atol=1e-7)

    def test_momentum_accumulates(self):
        cfg = SolverConfig(base_lr=0.1, momentum=0.9, weight_decay=0.0)
        net = linear_net()
        solver = Solver(net, cfg)
        b = batch()
        solver.step(b)
        v1 = {id(p): v.copy() for p, v in
              zip([q for q, _, _ in net.unique_params()],
                  solver._momentum.values())}
        solver.step(b)
        # second step's velocity includes decayed first-step velocity
        for blob, _, _ in net.unique_params():
            v = solver._momentum[id(blob)]
            assert np.abs(v).sum() > 0

    def test_weight_decay_shrinks_weights(self):
        net = linear_net()
        w = net.layer("ip").params[0]
        w.data[...] = 10.0  # dominate gradients
        solver = Solver(net, SolverConfig(base_lr=0.01, momentum=0.0,
                                          weight_decay=1.0))
        norm0 = float(np.abs(w.data).sum())
        solver.step(batch())
        assert float(np.abs(w.data).sum()) < norm0

    def test_iteration_counter_and_history(self):
        solver = Solver(linear_net(), SolverConfig(momentum=0.0))
        solver.step(batch())
        solver.step(batch(2))
        assert solver.iteration == 2
        assert len(solver.loss_history) == 2


class TestTraining:
    def test_loss_decreases_on_separable_problem(self):
        solver = Solver(linear_net(),
                        SolverConfig(base_lr=0.1, momentum=0.9,
                                     weight_decay=0.0))
        losses = [solver.step(batch(s)) for s in range(40)]
        assert min(losses[-5:]) < 0.5 * losses[0]

    def test_determinism(self):
        def run():
            solver = Solver(linear_net(seed=7),
                            SolverConfig(base_lr=0.05, momentum=0.9))
            return [solver.step(batch(s)) for s in range(10)]

        assert run() == run()

    def test_evaluate_switches_modes(self):
        from repro.nn.layers import AccuracyLayer, DropoutLayer
        from repro.nn.layer import LayerDef as LD
        net = Net(
            "e",
            [
                LD(DropoutLayer("d", 0.5), ["data"], ["dd"]),
                LD(InnerProductLayer("ip", 3), ["dd"], ["ip"]),
                LD(SoftmaxWithLossLayer("loss"), ["ip", "label"], ["loss"]),
                LD(AccuracyLayer("acc"), ["ip", "label"], ["acc"]),
            ],
            input_shapes={"data": (8, 4), "label": (8,)},
        )
        solver = Solver(net)
        acc = solver.evaluate(batch(), "acc")
        assert 0.0 <= acc <= 1.0
        assert net.layer("d").train_mode is True  # restored
