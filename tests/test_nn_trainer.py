"""Tests for the Caffe-style training orchestrator."""

import pytest

from repro.data import BatchLoader, make_dataset
from repro.errors import ReproError
from repro.nn.solver import Solver, SolverConfig
from repro.nn.trainer import Trainer
from repro.nn.zoo import build_cifar10


def make_trainer(test_interval=10, test_iter=2, snapshot_interval=0,
                 display=None):
    from repro.data.synthetic import Dataset
    net = build_cifar10(batch=20, seed=3)
    solver = Solver(net, SolverConfig(base_lr=0.01, momentum=0.9,
                                      weight_decay=0.004))
    # one generator call so train and test share the class prototypes
    full = make_dataset("cifar10", 300, seed=1)
    train_ds = Dataset("cifar10", full.images[:200], full.labels[:200])
    test_ds = Dataset("cifar10", full.images[200:], full.labels[200:])
    train = BatchLoader(train_ds, 20, seed=2)
    test = BatchLoader(test_ds, 20, seed=4)
    return Trainer(solver, train, test_loader=test,
                   test_interval=test_interval, test_iter=test_iter,
                   snapshot_interval=snapshot_interval, display=display)


class TestConstruction:
    def test_test_interval_requires_loader(self):
        net = build_cifar10(batch=20, seed=3)
        solver = Solver(net)
        train = BatchLoader(make_dataset("cifar10", 100, seed=1), 20)
        with pytest.raises(ReproError):
            Trainer(solver, train, test_interval=5)

    def test_invalid_intervals(self):
        net = build_cifar10(batch=20, seed=3)
        solver = Solver(net)
        train = BatchLoader(make_dataset("cifar10", 100, seed=1), 20)
        with pytest.raises(ReproError):
            Trainer(solver, train, test_iter=0)


class TestLoop:
    def test_test_phases_fire_on_interval(self):
        trainer = make_trainer(test_interval=10)
        events = trainer.run(30)
        test_events = [e for e in events if e.test_accuracy is not None]
        assert [e.iteration for e in test_events] == [10, 20, 30]
        for e in test_events:
            assert 0.0 <= e.test_accuracy <= 1.0
            assert e.test_loss > 0

    def test_snapshots_collected(self):
        trainer = make_trainer(test_interval=0, snapshot_interval=15)
        trainer.run(30)
        assert len(trainer.snapshots) == 2
        assert trainer.snapshots[0]["iteration"] == 15

    def test_display_callback(self):
        seen = []
        trainer = make_trainer(test_interval=5, display=seen.append)
        trainer.run(10)
        assert len(seen) == 2

    def test_train_mode_restored_after_test(self):
        trainer = make_trainer(test_interval=5)
        trainer.run(5)
        # dropout-free net, but the mode flag must still be train
        for layer in trainer.solver.net.layers:
            if hasattr(layer, "train_mode"):
                assert layer.train_mode

    def test_accuracy_improves_with_training(self):
        trainer = make_trainer(test_interval=40, test_iter=3)
        trainer.run(120)
        accs = [e.test_accuracy for e in trainer.events
                if e.test_accuracy is not None]
        assert accs[-1] > accs[0]
        assert trainer.best_accuracy >= accs[-1] - 1e-9

    def test_best_accuracy_requires_tests(self):
        trainer = make_trainer(test_interval=0)
        trainer.run(3)
        with pytest.raises(ReproError):
            trainer.best_accuracy
