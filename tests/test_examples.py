"""Smoke tests for the example scripts."""

import os
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def example_env() -> dict:
    """Subprocess environment with ``<repo>/src`` on ``PYTHONPATH``.

    The examples import ``repro`` from the source tree; a bare
    ``sys.executable`` subprocess would not find it unless the package is
    installed.  Every example-subprocess test must use this env.
    """
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
        env=example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert "GLP4NN" in result.stdout
    assert "analytical model decision" in result.stdout
