"""Smoke tests for the example scripts."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "GLP4NN" in result.stdout
    assert "analytical model decision" in result.stdout
