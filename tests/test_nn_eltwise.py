"""Tests for Eltwise and Flatten layers (residual-style topologies)."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    EltwiseLayer,
    FlattenLayer,
    InnerProductLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net
from tests.conftest import assert_grad_close, numeric_gradient

RNG = lambda s=0: np.random.default_rng(s)


def setup_eltwise(op="sum", coeffs=None, shape=(2, 3, 4, 4), n=2, seed=0):
    layer = EltwiseLayer("e", operation=op, coeffs=coeffs)
    layer.setup([shape] * n, RNG(seed))
    return layer


class TestEltwiseSum:
    def test_default_coeffs(self):
        layer = setup_eltwise()
        a = np.ones((2, 3, 4, 4), dtype=np.float32)
        b = 2 * np.ones((2, 3, 4, 4), dtype=np.float32)
        (y,) = layer.forward([a, b])
        assert (y == 3.0).all()

    def test_custom_coeffs(self):
        layer = setup_eltwise(coeffs=[1.0, -1.0])
        a = np.full((2, 3, 4, 4), 5.0, dtype=np.float32)
        b = np.full((2, 3, 4, 4), 3.0, dtype=np.float32)
        (y,) = layer.forward([a, b])
        assert (y == 2.0).all()

    def test_backward_scales_by_coeff(self):
        layer = setup_eltwise(coeffs=[2.0, -0.5])
        a = np.zeros((2, 3, 4, 4), dtype=np.float32)
        layer.forward([a, a])
        dout = np.ones_like(a)
        da, db = layer.backward([dout], [a, a], [None])
        assert (da == 2.0).all() and (db == -0.5).all()

    def test_coeffs_require_sum(self):
        with pytest.raises(NetworkError):
            EltwiseLayer("e", operation="max", coeffs=[1, 1])

    def test_coeff_count_checked(self):
        layer = EltwiseLayer("e", coeffs=[1.0])
        with pytest.raises(NetworkError):
            layer.setup([(1, 2), (1, 2)], RNG())


class TestEltwiseProdMax:
    def test_prod_forward(self):
        layer = setup_eltwise("prod")
        a = np.full((2, 3, 4, 4), 2.0, dtype=np.float32)
        b = np.full((2, 3, 4, 4), 3.0, dtype=np.float32)
        (y,) = layer.forward([a, b])
        assert (y == 6.0).all()

    def test_prod_gradient(self):
        layer = setup_eltwise("prod", shape=(2, 5))
        rng = RNG(3)
        a = rng.normal(size=(2, 5)).astype(np.float32) + 2.0
        b = rng.normal(size=(2, 5)).astype(np.float32) + 2.0
        dout = rng.normal(size=(2, 5)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward([a, b])[0] * dout))

        (y,) = layer.forward([a, b])
        da, db = layer.backward([dout], [a, b], [y])
        assert_grad_close(da, numeric_gradient(loss, a))
        assert_grad_close(db, numeric_gradient(loss, b))

    def test_max_routes_gradient_to_winner(self):
        layer = setup_eltwise("max", shape=(1, 4))
        a = np.array([[1, 5, 1, 5]], dtype=np.float32)
        b = np.array([[5, 1, 5, 1]], dtype=np.float32)
        (y,) = layer.forward([a, b])
        np.testing.assert_array_equal(y, [[5, 5, 5, 5]])
        dout = np.ones_like(a)
        da, db = layer.backward([dout], [a, b], [y])
        np.testing.assert_array_equal(da, [[0, 1, 0, 1]])
        np.testing.assert_array_equal(db, [[1, 0, 1, 0]])

    def test_shape_mismatch_rejected(self):
        layer = EltwiseLayer("e")
        with pytest.raises(NetworkError):
            layer.setup([(1, 2), (1, 3)], RNG())

    def test_single_bottom_rejected(self):
        layer = EltwiseLayer("e")
        with pytest.raises(NetworkError):
            layer.setup([(1, 2)], RNG())


class TestFlatten:
    def test_forward_shape(self):
        layer = FlattenLayer("f")
        tops = layer.setup([(4, 2, 3, 3)], RNG())
        assert tops == [(4, 18)]
        x = RNG(1).normal(size=(4, 2, 3, 3)).astype(np.float32)
        (y,) = layer.forward([x])
        assert y.shape == (4, 18)

    def test_backward_restores_shape(self):
        layer = FlattenLayer("f")
        layer.setup([(4, 2, 3, 3)], RNG())
        x = np.zeros((4, 2, 3, 3), dtype=np.float32)
        layer.forward([x])
        dout = RNG(2).normal(size=(4, 18)).astype(np.float32)
        (dx,) = layer.backward([dout], [x], [None])
        assert dx.shape == x.shape
        np.testing.assert_array_equal(dx.reshape(4, 18), dout)


class TestResidualTopology:
    def test_residual_block_trains(self):
        """x -> ip -> relu -> ip, joined with the identity via Eltwise SUM."""
        net = Net(
            "res",
            [
                LayerDef(InnerProductLayer("fc1", 6), ["data"], ["h1"]),
                LayerDef(ReLULayer("relu"), ["h1"], ["h1r"]),
                LayerDef(InnerProductLayer("fc2", 6), ["h1r"], ["h2"]),
                LayerDef(EltwiseLayer("join"), ["h1", "h2"], ["res"]),
                LayerDef(InnerProductLayer("out", 3), ["res"], ["logits"]),
                LayerDef(SoftmaxWithLossLayer("loss"), ["logits", "label"],
                         ["loss"]),
            ],
            input_shapes={"data": (8, 4), "label": (8,)},
        )
        from repro.nn.solver import Solver, SolverConfig
        rng = RNG(5)
        labels = rng.integers(0, 3, 8)
        data = np.eye(4, dtype=np.float32)[:3][labels] * 2 \
            + rng.normal(0, 0.1, (8, 4)).astype(np.float32)
        batch = {"data": data, "label": labels.astype(np.float32)}
        solver = Solver(net, SolverConfig(base_lr=0.1, momentum=0.9,
                                          weight_decay=0.0))
        losses = [solver.step(batch) for _ in range(40)]
        assert losses[-1] < 0.3 * losses[0]

    def test_lowering(self):
        layer = EltwiseLayer("e")
        layer.setup([(2, 8), (2, 8)], RNG())
        from repro.runtime.lowering import lower_layer
        work = lower_layer(layer, "forward", [(2, 8), (2, 8)])
        assert work.serial_kernels[0].name == "eltwise_sum"

        flat = FlattenLayer("f")
        flat.setup([(2, 2, 2, 2)], RNG())
        assert lower_layer(flat, "forward", [(2, 2, 2, 2)]) is None
