"""Fault-plan fuzzer: degraded runs must still match serial numerics."""

from __future__ import annotations

from repro.verify.fault_fuzz import (
    FAULT_TEMPLATES,
    FaultRoundOutcome,
    fuzz_faults,
    random_fault_plan,
)


def test_random_plans_are_seeded_and_survivable() -> None:
    plan = random_fault_plan(seed=0, round_=3)
    assert plan == random_fault_plan(seed=0, round_=3)
    assert plan != random_fault_plan(seed=0, round_=4)
    assert 1 <= len(plan.specs) <= 3
    for spec in plan.specs:
        # Curation: transient specs stay under the retry budget (3);
        # persistent specs only target sites with a serial fallback.
        if spec.kind == "transient":
            assert spec.max_fires <= 3
        else:
            assert spec.site in ("stream_create", "milp_solve",
                                 "profiler_record")


def test_template_draws_stay_in_curated_ranges() -> None:
    import random
    rng = random.Random(0)
    for template in FAULT_TEMPLATES:
        for _ in range(20):
            spec = template(rng)
            assert spec.kind in ("transient", "persistent")
            assert spec.max_fires <= 4


def test_fuzz_faults_campaign_on_lenet() -> None:
    report = fuzz_faults(network="lenet", seed=0, rounds=3, batch=4,
                         iterations=1)
    assert report.ok, report.render()
    assert len(report.rounds) == 3
    # Outcomes carry full accounting whether or not anything fired.
    for outcome in report.rounds:
        assert outcome.fires >= 0
        assert outcome.iterations_completed <= 1
        if not outcome.aborted:
            assert outcome.iterations_completed == 1
    assert "OK" in report.render()
    assert report.to_dict()["ok"] is True


def test_abort_is_acceptable_divergence_is_not() -> None:
    aborted = FaultRoundOutcome(round=0, plan_name="p", aborted=True,
                                abort_reason="DegradedError: boom")
    assert aborted.ok
    diverged = FaultRoundOutcome(round=1, plan_name="p",
                                 divergence="iteration 0: blob[x]")
    assert not diverged.ok
    assert diverged.to_dict()["ok"] is False
