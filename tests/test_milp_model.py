"""Tests for the algebraic modelling layer."""

import math

import pytest

from repro.errors import SolverError
from repro.milp import Model, SolveStatus
from repro.milp.model import LinExpr


class TestExpressions:
    def _model(self):
        m = Model()
        return m, m.var("x", 0, 10), m.var("y", 0, 10)

    def test_addition_and_scaling(self):
        m, x, y = self._model()
        e = 2 * x + y / 2 - 3
        assert e.coeffs[x] == 2 and e.coeffs[y] == pytest.approx(0.5)
        assert e.const == -3

    def test_subtraction(self):
        m, x, y = self._model()
        e = x - y
        assert e.coeffs[x] == 1 and e.coeffs[y] == -1

    def test_rsub(self):
        m, x, _ = self._model()
        e = 5 - x
        assert e.const == 5 and e.coeffs[x] == -1

    def test_negation(self):
        m, x, _ = self._model()
        e = -(2 * x + 1)
        assert e.coeffs[x] == -2 and e.const == -1

    def test_value_evaluation(self):
        m, x, y = self._model()
        e = 3 * x + 2 * y + 1
        assert e.value({"x": 2.0, "y": 0.5}) == pytest.approx(8.0)

    def test_comparison_builds_constraint(self):
        m, x, y = self._model()
        con = (x + y <= 5)
        assert con.sense == "<="
        con2 = (x + y >= 2)
        assert con2.sense == "<="  # normalized with flipped sign
        con3 = (x == y)
        assert con3.sense == "=="


class TestModelSolve:
    def test_doc_example(self):
        m = Model("toy")
        x = m.int_var("x", lo=0, hi=10)
        y = m.int_var("y", lo=0, hi=10)
        m.add_constr(3 * x + 4 * y <= 24)
        m.maximize(2 * x + 3 * y)
        sol = m.solve()
        assert sol.objective == pytest.approx(18.0)
        assert sol[y] == 6.0

    def test_minimize(self):
        m = Model()
        x = m.var("x", lo=2, hi=9)
        m.minimize(x)
        assert m.solve().objective == pytest.approx(2.0)

    def test_equality_constraint(self):
        m = Model()
        x = m.var("x", 0, 10)
        y = m.var("y", 0, 10)
        m.add_constr(x + y == 7)
        m.minimize(x)
        sol = m.solve()
        assert sol[x] == pytest.approx(0.0)
        assert sol[y] == pytest.approx(7.0)

    def test_infeasible_status(self):
        m = Model()
        x = m.var("x", 0, 1)
        m.add_constr(x >= 5)
        m.minimize(x)
        assert m.solve().status is SolveStatus.INFEASIBLE

    def test_objective_orientation_preserved(self):
        m = Model()
        x = m.var("x", 0, 4)
        m.maximize(3 * x)
        assert m.solve().objective == pytest.approx(12.0)

    def test_integer_rounding_in_solution(self):
        m = Model()
        x = m.int_var("x", 0, 10)
        m.add_constr(2 * x <= 7)
        m.maximize(x)
        sol = m.solve()
        assert sol[x] == 3.0 and sol[x] == int(sol[x])

    def test_duplicate_name_rejected(self):
        m = Model()
        m.var("x")
        with pytest.raises(SolverError, match="duplicate"):
            m.var("x")

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(SolverError):
            m.var("x", lo=2, hi=1)

    def test_solve_without_objective_rejected(self):
        m = Model()
        m.var("x")
        with pytest.raises(SolverError, match="objective"):
            m.solve()

    def test_add_constr_rejects_bool(self):
        m = Model()
        m.var("x")
        with pytest.raises(SolverError):
            m.add_constr(True)  # type: ignore[arg-type]

    def test_nodes_counted_for_integer_programs(self):
        m = Model()
        x = m.int_var("x", 0, 10)
        y = m.int_var("y", 0, 10)
        m.add_constr(3 * x + 7 * y <= 22)
        m.maximize(2 * x + 5 * y)
        sol = m.solve()
        assert sol.status.ok
        assert sol.nodes_explored >= 1
