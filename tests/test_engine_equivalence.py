"""The optimized engine must replay the recorded goldens bit-for-bit.

The fixtures under ``tests/fixtures/engine_goldens/`` were captured from the
pre-optimization engine (before the gpusim fast path landed); every
optimization since is required to be observationally invisible, so each
workload's canonical timeline must match its golden line-for-line and
fingerprint-for-fingerprint.  Regenerate deliberately with
``python -m repro.verify.engine_equiv --record`` only when the engine's
*semantics* change on purpose.
"""

import json

import pytest

from repro.errors import ReproError
from repro.verify.engine_equiv import (
    DEFAULT_GOLDEN_DIR,
    ENGINE_WORKLOADS,
    fingerprint_lines,
    load_golden,
    record_engine_goldens,
    run_engine_equivalence,
    run_workload,
)

WORKLOADS = list(ENGINE_WORKLOADS)


def test_every_workload_has_a_committed_golden():
    for name in WORKLOADS:
        assert (DEFAULT_GOLDEN_DIR / f"{name}.json").is_file(), (
            f"missing golden for {name!r}; run "
            "python -m repro.verify.engine_equiv --record"
        )


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_replays_bit_for_bit(name):
    golden = load_golden(DEFAULT_GOLDEN_DIR, name)
    lines = run_workload(name)
    # Line-by-line first so a divergence points at the exact record.
    for i, (expected, actual) in enumerate(zip(golden["lines"], lines)):
        assert actual == expected, f"{name}: line {i} diverged"
    assert len(lines) == golden["line_count"]
    assert fingerprint_lines(lines) == golden["fingerprint"]


def test_report_flags_tampered_golden(tmp_path):
    # Record fresh goldens, corrupt one line, and make sure the harness
    # actually notices — guards against a vacuously-green equivalence check.
    record_engine_goldens(tmp_path, workloads=["dag_events"])
    path = tmp_path / "dag_events.json"
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc["lines"][0] = doc["lines"][0] + "-tampered"
    doc["fingerprint"] = fingerprint_lines(doc["lines"])
    path.write_text(json.dumps(doc), encoding="utf-8")

    report = run_engine_equivalence(tmp_path, workloads=["dag_events"])
    assert not report.ok
    (verdict,) = report.failures()
    assert verdict.workload == "dag_events"
    assert "line 0" in verdict.first_diff
    assert "DIVERGED" in report.render()


def test_fresh_recording_matches_itself(tmp_path):
    # Hermeticity: two recordings into different dirs are identical, so a
    # verdict can never depend on leftover global state from earlier tests.
    record_engine_goldens(tmp_path, workloads=["memcpy_streams"])
    report = run_engine_equivalence(tmp_path, workloads=["memcpy_streams"])
    assert report.ok, report.render()


def test_unknown_workload_rejected():
    with pytest.raises(ReproError, match="unknown engine workload"):
        run_workload("nonesuch")


def test_missing_golden_rejected(tmp_path):
    with pytest.raises(ReproError, match="missing engine golden"):
        load_golden(tmp_path, "dag_events")
