"""Tests for the kernel-fusion pass."""

import pytest

from repro.gpusim import GPU, get_device
from repro.kernels.costmodel import kernel_solo_time_us
from repro.kernels.ir import KernelChain
from repro.nn.zoo.table5 import CAFFENET_CONVS, SIAMESE_CONVS
from repro.runtime.executor import NaiveExecutor
from repro.runtime.fusion import (
    fuse_chain,
    fuse_work,
    make_fusion_transform,
    merge_specs,
)
from repro.runtime.lowering import lower_conv_forward
from tests.conftest import small_kernel

DEV = get_device("P100")


class TestMergeSpecs:
    def test_single_kernel_passthrough(self):
        k = small_kernel("x")
        assert merge_specs([k]) is k

    def test_work_is_conserved(self):
        a = small_kernel("a", blocks=2, flops=1000.0, bytes_=100.0)
        b = small_kernel("b", blocks=4, flops=500.0, bytes_=50.0)
        fused = merge_specs([a, b])
        assert fused.total_flops == pytest.approx(a.total_flops + b.total_flops)
        assert fused.total_bytes == pytest.approx(a.total_bytes + b.total_bytes)

    def test_carrier_geometry(self):
        a = small_kernel("a", blocks=2, threads=128)
        b = small_kernel("b", blocks=8, threads=256)   # bigger
        fused = merge_specs([a, b])
        assert fused.launch.grid == b.launch.grid
        assert fused.launch.block == b.launch.block

    def test_max_footprints(self):
        a = small_kernel("a", smem=4096, regs=33)
        b = small_kernel("b", smem=1024, regs=63)
        fused = merge_specs([a, b])
        assert fused.launch.shared_mem_per_block == 4096
        assert fused.launch.registers_per_thread == 63

    def test_name_lists_members(self):
        fused = merge_specs([small_kernel("im2col"), small_kernel("sgemm")])
        assert fused.name == "fused_im2col_sgemm"


class TestFuseChain:
    def test_small_kernels_collapse(self):
        chain = KernelChain(tuple(
            small_kernel(n, blocks=1, flops=100.0) for n in "abc"
        ))
        fused = fuse_chain(chain, DEV)
        assert len(fused) == 1

    def test_large_kernels_untouched(self):
        big = small_kernel("big", blocks=500, flops=1e6)
        chain = KernelChain((big, big.retagged("x")))
        fused = fuse_chain(chain, DEV)
        assert len(fused) == 2

    def test_mixed_chain_fuses_runs_only(self):
        tiny = lambda n: small_kernel(n, blocks=1, flops=10.0)
        big = small_kernel("big", blocks=500, flops=1e6)
        chain = KernelChain((tiny("a"), tiny("b"), big, tiny("c"), tiny("d")))
        fused = fuse_chain(chain, DEV)
        assert [k.name for k in fused] == ["fused_a_b", "big", "fused_c_d"]

    def test_threshold_zero_disables(self):
        chain = KernelChain(tuple(
            small_kernel(n, blocks=1, flops=10.0) for n in "ab"
        ))
        assert len(fuse_chain(chain, DEV, threshold_us=0.0)) == 2


class TestFuseWork:
    def test_siamese_conv1_fuses_to_one_per_sample(self):
        work = lower_conv_forward(SIAMESE_CONVS[0])
        fused, report = fuse_work(work, DEV)
        assert report.kernels_before == 64 * 3
        assert report.kernels_after == 64
        assert all(len(c) == 1 for c in fused.parallel_chains)

    def test_big_caffenet_layer_partially_fuses(self):
        work = lower_conv_forward(CAFFENET_CONVS[1])
        fused, report = fuse_work(work, DEV)
        # the big sgemm must survive unfused
        names = {k.name for c in fused.parallel_chains for k in c}
        assert any(n == "sgemm" for n in names)

    def test_serial_kernels_untouched(self):
        from repro.runtime.lowering import lower_conv_backward
        work = lower_conv_backward(SIAMESE_CONVS[0])
        fused, _ = fuse_work(work, DEV)
        assert fused.serial_kernels == work.serial_kernels

    def test_key_preserved(self):
        work = lower_conv_forward(SIAMESE_CONVS[0])
        fused, _ = fuse_work(work, DEV)
        assert fused.key == work.key


class TestFusionEndToEnd:
    def test_fusion_speeds_up_launch_bound_layer(self):
        """The paper's fusion hypothesis: small kernels benefit most."""
        work = lower_conv_forward(SIAMESE_CONVS[0])
        naive = NaiveExecutor(GPU(DEV, record_timeline=False))
        naive.run(work)
        t_plain = naive.run(work).elapsed_us

        fused, _ = fuse_work(work, DEV)
        naive2 = NaiveExecutor(GPU(DEV, record_timeline=False))
        naive2.run(fused)
        t_fused = naive2.run(fused).elapsed_us
        assert t_fused < 0.55 * t_plain   # ~3 launches -> 1

    def test_transform_plugs_into_framework(self):
        from repro.core import GLP4NN
        gpu = GPU(DEV, record_timeline=False)
        glp = GLP4NN([gpu], work_transform=make_fusion_transform(DEV))
        work = lower_conv_forward(SIAMESE_CONVS[0])
        glp.run_layer(gpu, work)
        run = glp.run_layer(gpu, work)
        # the profiled/cached kernels are the fused ones
        profile = glp.tracker.get(gpu, work.key)
        assert any(k.name.startswith("fused_") for k in profile.kernels)
        assert run.elapsed_us > 0
