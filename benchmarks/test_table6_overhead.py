"""Table 6: one-time overhead of GLP4NN."""

from benchmarks.conftest import run_once
from repro.bench.table6 import run_table6


def test_table6_ratio_below_paper_bound(benchmark):
    """The paper's bound: T_total / training < 0.1% everywhere."""
    result = run_once(benchmark, run_table6)
    print("\n" + result.render())
    assert result.extra["worst_ratio"] < 1e-3


def test_table6_tp_tracks_kernel_count(benchmark):
    """T_p is proportional to kernels collected: CaffeNet (N=256, five
    conv layers) pays the most, as in the paper."""
    result = run_once(benchmark, run_table6)
    t_p = {}
    for row in result.rows:
        t_p.setdefault(row[0], row[2])
    assert t_p["CaffeNet"] == max(t_p.values())


def test_table6_covers_all_networks_and_devices(benchmark):
    result = run_once(benchmark, run_table6)
    assert len(result.rows) == 4 * 3


def test_table6_components_positive(benchmark):
    result = run_once(benchmark, run_table6)
    for row in result.rows:
        assert row[2] > 0 and row[3] > 0
        assert abs(row[4] - (row[2] + row[3])) < 0.01
