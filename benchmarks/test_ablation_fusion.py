"""Ablation: kernel fusion (the paper's future-work item #2)."""

from benchmarks.conftest import run_once
from repro.bench.fusion_ablation import run_fusion_ablation


def test_fusion_rescues_degradation_layers(benchmark):
    """The Fig. 9 losers become clear winners once launches are fused."""
    result = run_once(benchmark, run_fusion_ablation)
    print("\n" + result.render())
    for row in result.rows:
        layer, _, _, glp, fused = row
        if "conv1" in layer:
            assert glp < 1.0 < fused
            assert fused > 2.0


def test_fusion_neutral_on_compute_heavy_layer(benchmark):
    result = run_once(benchmark, run_fusion_ablation)
    row = next(r for r in result.rows if "CaffeNet" in r[0])
    assert row[1] == row[2]                  # nothing fused
    assert abs(row[3] - row[4]) < 0.05       # same speedup


def test_fusion_reduces_launch_counts(benchmark):
    result = run_once(benchmark, run_fusion_ablation)
    for row in result.rows:
        if "conv1" in row[0]:
            assert row[2] <= row[1] // 3 + 1
