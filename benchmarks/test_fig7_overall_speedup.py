"""Fig. 7: per-iteration speedup of GLP4NN-Caffe over naive Caffe."""

from benchmarks.conftest import run_once
from repro.bench.fig7 import run_fig7
from repro.gpusim.device import PAPER_DEVICES


def test_fig7_glp4nn_never_slower_per_iteration(benchmark):
    result = run_once(benchmark, run_fig7)
    print("\n" + result.render())
    for row in result.rows:
        for s in row[1:]:
            assert s >= 0.97, f"{row[0]} regressed: {s}"


def test_fig7_clear_wins_exist(benchmark):
    result = run_once(benchmark, run_fig7)
    best = max(max(row[1:]) for row in result.rows)
    assert best >= 1.4


def test_fig7_every_network_improves_somewhere(benchmark):
    result = run_once(benchmark, run_fig7)
    for row in result.rows:
        assert max(row[1:]) > 1.0, f"{row[0]} never improved"


def test_fig7_details_consistent(benchmark):
    result = run_once(benchmark, run_fig7)
    details = result.extra["details"]
    assert len(details) == 4 * len(PAPER_DEVICES)
    for key, d in details.items():
        assert d["naive_us"] > 0 and d["glp4nn_us"] > 0
        assert d["speedup"] == d["naive_us"] / d["glp4nn_us"]
