"""Fig. 4: best observed stream count per CaffeNet layer per GPU."""

from benchmarks.conftest import run_once
from repro.bench.fig4 import run_fig4


def test_fig4_optimum_exceeds_one_somewhere(benchmark):
    result = run_once(benchmark, run_fig4)
    print("\n" + result.render())
    for device, bests in result.extra["best_by_device"].items():
        assert max(bests) > 1, f"no layer benefits from streams on {device}"


def test_fig4_optimum_varies_across_devices(benchmark):
    """Observation 2: no single stream count is optimal on every GPU."""
    result = run_once(benchmark, run_fig4)
    per_device = result.extra["best_by_device"]
    profiles = {tuple(v) for v in per_device.values()}
    assert len(profiles) >= 2


def test_fig4_optimum_varies_across_layers(benchmark):
    result = run_once(benchmark, run_fig4)
    for device, bests in result.extra["best_by_device"].items():
        if len(set(bests)) > 1:
            return
    raise AssertionError("optimal stream count never varied across layers")
