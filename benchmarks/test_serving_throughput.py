"""Serving throughput: GLP4NN vs naive goodput under identical load.

The serving analogue of the Fig. 7 training comparison: both executors
serve the *same* open-loop arrival trace, so the only variable is the
scheduling policy.  The arrival rate is calibrated per network to the
geometric mean of the two executors' measured service capacities — above
the naive executor's capacity (it saturates and misses deadlines) but
below GLP4NN's (it keeps up) — which makes the comparison self-adjusting
to cost-model changes instead of depending on hard-coded rates.

Also asserts the determinism contract: same seed, byte-identical reports.
"""

import functools

import pytest

from repro.gpusim import GPU
from repro.serve import (
    LoweredNetCache,
    make_executor,
    poisson_trace,
    resolve_device,
    resolve_net,
    serve_trace,
)

DEVICE = "titan-xp"
#: (network, max batch) pairs; batch sizes where batch-level concurrency
#: has room to matter (per-sample chains >= 8).
WORKLOADS = [("cifar10", 8), ("siamese", 16)]
DURATION_US = 25_000.0
SEED = 7


@functools.lru_cache(maxsize=None)
def service_capacity_rps(net: str, kind: str, batch: int) -> float:
    """Steady-state requests/s of one executor at a fixed batch size."""
    gpu = GPU(resolve_device(DEVICE), record_timeline=False)
    executor = make_executor(kind, gpu)
    cache = LoweredNetCache(resolve_net(net), (batch,), seed=SEED)
    _, works = cache.works_for(batch)
    for work in works:                 # warm-up / profiling pass
        executor.run(work)
    start = gpu.host_time
    for work in works:
        executor.run(work)
    batch_us = gpu.host_time - start
    return batch / batch_us * 1e6


@functools.lru_cache(maxsize=None)
def calibrated_load(net: str, batch: int) -> tuple[float, float]:
    """(arrival rps, slo µs) between the two executors' capacities."""
    naive = service_capacity_rps(net, "naive", batch)
    glp = service_capacity_rps(net, "glp4nn", batch)
    assert glp > naive, (
        f"{net}: GLP4NN serves no faster than naive "
        f"({glp:.0f} vs {naive:.0f} rps) — no rate can separate them"
    )
    rps = (naive * glp) ** 0.5
    slo_us = 2.5 * batch / glp * 1e6    # 2.5x a steady GLP4NN batch
    return rps, slo_us


@functools.lru_cache(maxsize=None)
def serve_pair(net: str, batch: int):
    rps, slo_us = calibrated_load(net, batch)
    trace = poisson_trace(rps=rps, duration_us=DURATION_US, slo_us=slo_us,
                          seed=SEED)
    kwargs = dict(max_batch=batch, max_wait_us=250.0, seed=SEED)
    naive = serve_trace(net, DEVICE, "naive", trace, **kwargs)
    glp = serve_trace(net, DEVICE, "glp4nn", trace, **kwargs)
    return trace, naive, glp


@pytest.mark.parametrize("net,batch", WORKLOADS)
def test_glp4nn_goodput_beats_naive(benchmark, net, batch):
    """The acceptance claim: strictly higher SLO attainment, same load."""
    trace, naive, glp = benchmark.pedantic(
        lambda: serve_pair(net, batch), rounds=1, iterations=1)
    print(f"\n{naive.render()}\n\n{glp.render()}")
    assert len(trace) > 50, "trace too short to say anything"
    assert glp.goodput > naive.goodput, (
        f"{net}: GLP4NN goodput {glp.goodput:.3f} does not beat naive "
        f"{naive.goodput:.3f} at {trace.rps:.0f} rps"
    )


@pytest.mark.parametrize("net,batch", WORKLOADS)
def test_glp4nn_keeps_up_while_naive_saturates(net, batch):
    """The calibrated rate really sits between the two capacities."""
    _, naive, glp = serve_pair(net, batch)
    # GLP4NN sustains the offered load well (most requests on time)...
    assert glp.goodput >= 0.75
    # ...while the saturated naive executor leaves a clear miss tail.
    assert naive.late + naive.shed_queue + naive.shed_admission > 0
    assert naive.requests == glp.requests == naive.ok + naive.late \
        + naive.shed_queue + naive.shed_admission + naive.failed


@pytest.mark.parametrize("net,batch", WORKLOADS[:1])
def test_tail_latency_improves(net, batch):
    _, naive, glp = serve_pair(net, batch)
    assert glp.latency_p99_us is not None and naive.latency_p99_us is not None
    assert glp.latency_p99_us < naive.latency_p99_us


def test_reports_are_byte_identical_across_runs():
    """Same seed, same report — text and JSON, byte for byte."""
    net, batch = WORKLOADS[0]
    rps, slo_us = calibrated_load(net, batch)
    reports = []
    for _ in range(2):
        trace = poisson_trace(rps=rps, duration_us=DURATION_US,
                              slo_us=slo_us, seed=SEED)
        reports.append(serve_trace(net, DEVICE, "glp4nn", trace,
                                   max_batch=batch, max_wait_us=250.0,
                                   seed=SEED))
    first, second = reports
    assert first.render() == second.render()
    assert first.to_json() == second.to_json()
