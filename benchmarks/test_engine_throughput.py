"""Engine wall-clock throughput: the BENCH_9 perf-regression gate.

Two layers of protection:

* structural checks on the committed ``BENCH_9.json`` — every metric
  present, the pre-optimization baseline recorded, and the headline
  ≥2x events/sec win actually in the file (the PR-9 acceptance bar);
* a live smoke measurement of the synthetic-DAG metric, compared
  against the committed number after rescaling by the calibration
  ratio (``local_calibration / recorded_calibration``) so a slower
  machine does not read as an engine regression.  A real regression
  of more than 20% fails the gate.
"""

import json
import pathlib

import pytest

from benchmarks.conftest import run_once
from repro.bench.engine_throughput import METRICS, calibrate, run_engine_throughput

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fail if the machine cannot reach this fraction of the committed
#: (calibration-rescaled) events/sec.
REGRESSION_FLOOR = 0.8


@pytest.fixture(scope="module")
def committed():
    return json.loads((ROOT / "BENCH_9.json").read_text(encoding="utf-8"))


def test_committed_bench_has_every_metric(committed):
    assert committed["bench"] == "engine_throughput"
    for name, (unit, _) in METRICS.items():
        entry = committed["metrics"][name]
        assert entry["unit"] == unit
        assert entry["median"] > 0
        assert len(entry["samples"]) == committed["repeats"]
    assert committed["calibration_seconds"] > 0


def test_committed_baseline_shows_multi_x_win(committed):
    """The PR-9 acceptance bar: ≥2x median events/sec on the synthetic DAG,
    with both numbers (before and after) recorded in the committed file."""
    baseline = committed["baseline"]
    assert baseline["metrics"]["dag_events_per_sec"]["median"] > 0
    assert committed["metrics"]["dag_events_per_sec"]["median"] > 0
    speedups = committed["speedup_vs_baseline"]
    assert speedups["dag_events_per_sec"] >= 2.0
    assert speedups["conv_events_per_sec"] >= 1.5


def test_live_dag_throughput_within_20pct_of_committed(benchmark, committed):
    """The live regression gate the CI perf-smoke job runs."""
    # Full-size DAG (not --quick): the committed median is full-mode, and
    # quick mode's smaller DAG amortizes per-run setup worse, which would
    # read as a phantom regression.
    result = run_once(
        benchmark,
        lambda: run_engine_throughput(
            repeats=3, quick=False, metrics=["dag_events_per_sec"]),
    )
    entry = result["metrics"]["dag_events_per_sec"]
    # Best of three: the gate asks "can this machine still reach the
    # committed speed", so one noisy sample must not fail the build.
    local_best = max(entry["samples"])

    recorded_cal = committed["calibration_seconds"]
    local_cal = calibrate()
    # events/sec scales inversely with interpreter slowness: a machine
    # whose calibration loop takes 2x longer should achieve ~half the
    # committed events/sec without that being a regression.  The rescale
    # is one-sided — a *faster* calibration loop does not raise the bar,
    # because the pure-Python loop correlates imperfectly with engine
    # throughput and must never manufacture a phantom regression.
    expected_here = (committed["metrics"]["dag_events_per_sec"]["median"]
                     * min(1.0, recorded_cal / local_cal))
    floor = REGRESSION_FLOOR * expected_here
    print(f"\nengine perf smoke: {local_best:.0f} events/sec local "
          f"(floor {floor:.0f}, committed "
          f"{committed['metrics']['dag_events_per_sec']['median']:.0f} "
          f"at cal {recorded_cal:.4f}s vs local cal {local_cal:.4f}s)")
    assert local_best >= floor, (
        f"engine throughput regressed >20%: {local_best:.0f} events/sec "
        f"< floor {floor:.0f} (calibration-rescaled from committed "
        f"BENCH_9.json)"
    )
