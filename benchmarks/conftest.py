"""Benchmark-suite configuration.

Experiment results are cached per process (several tests assert different
properties of one experiment) and dumped to ``results/`` next to the repo
root so EXPERIMENTS.md can reference them.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)
os.environ.setdefault("REPRO_RESULTS_DIR", str(RESULTS_DIR))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
