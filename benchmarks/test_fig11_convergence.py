"""Fig. 11: convergence invariance under GLP4NN."""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.fig11 import run_fig11


def test_fig11_same_shuffle_is_bit_identical(benchmark):
    """Scheduling never touches the math: with the same shuffle seed the
    loss curves coincide exactly, which is stronger than the paper's
    visual overlap."""
    result = run_once(benchmark, run_fig11)
    print("\n" + result.render())
    assert result.extra["max_same_shuffle_gap"] == 0.0


def test_fig11_training_converges(benchmark):
    result = run_once(benchmark, run_fig11)
    caffe = result.extra["caffe"]
    assert caffe[-1] < 0.6 * caffe[0]


def test_fig11_different_shuffle_differs_but_converges_alike(benchmark):
    """The paper attributes the residual curve difference to shuffling."""
    result = run_once(benchmark, run_fig11)
    caffe = np.array(result.extra["caffe"])
    other = np.array(result.extra["glp4nn_other_shuffle"])
    assert np.abs(caffe - other).max() > 0.0       # curves differ...
    assert abs(caffe[-1] - other[-1]) < 0.35       # ...ends agree


def test_fig11_losses_are_finite(benchmark):
    result = run_once(benchmark, run_fig11)
    for key in ("caffe", "glp4nn_same_shuffle", "glp4nn_other_shuffle"):
        assert np.isfinite(result.extra[key]).all()
