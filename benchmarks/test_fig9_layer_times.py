"""Fig. 9: per-layer elapsed time and the degradation cases."""

from benchmarks.conftest import run_once
from repro.bench.fig9 import run_fig9


def _rows(result):
    return {row[0]: row for row in result.rows}


def test_fig9_tiny_conv1_layers_degrade(benchmark):
    """The paper's finding: ~2 ms layers are slower under GLP4NN."""
    result = run_once(benchmark, run_fig9)
    print("\n" + result.render())
    rows = _rows(result)
    for name in ("C-conv1", "S-conv1", "S-conv1_p"):
        assert rows[name][4] < 1.0, f"{name} unexpectedly accelerated"
        assert rows[name][4] > 0.9, f"{name} degraded too much"


def test_fig9_deeper_layers_accelerate(benchmark):
    rows = _rows(run_once(benchmark, run_fig9))
    for name in ("C-conv2", "C-conv3", "S-conv2", "S-conv2_p"):
        assert rows[name][4] > 1.2, f"{name} did not accelerate"


def test_fig9_network_totals_improve(benchmark):
    rows = _rows(run_once(benchmark, run_fig9))
    assert rows["C-total"][4] > 1.0
    assert rows["S-total"][4] > 1.0


def test_fig9_degrading_layers_are_the_2ms_ones(benchmark):
    """The paper ties the losses to layers finishing within ~2 ms."""
    rows = _rows(run_once(benchmark, run_fig9))
    for name in ("C-conv1", "S-conv1", "S-conv1_p"):
        assert rows[name][2] < 3.0   # naive time in ms
