"""Ablation: DAG dispatch vs layer barriers (future-work item #1)."""

from benchmarks.conftest import run_once
from repro.bench.graph_ablation import run_graph_ablation


def test_graph_dispatch_beats_layer_barriers(benchmark):
    result = run_once(benchmark, run_graph_ablation)
    print("\n" + result.render())
    dag = next(r for r in result.rows if "DAG" in r[0])
    assert dag[2] > 1.0


def test_graph_covers_all_branch_kernels(benchmark):
    result = run_once(benchmark, run_graph_ablation)
    # 1x1 branch: 32x2 kernels; 3x3: 32x(2+3); 5x5: 32x(2+3)
    assert result.extra["kernels"] == 32 * (2 + 5 + 5)
