"""Fig. 10: memory consumption of GLP4NN's tracker."""

from benchmarks.conftest import run_once
from repro.bench.fig10 import run_fig10
from repro.cupti import CONFIG_RECORD_BYTES, TIMESTAMP_BYTES


def test_fig10_cupti_dominates(benchmark):
    result = run_once(benchmark, run_fig10)
    print("\n" + result.render())
    for row in result.rows:
        _, _, kernels, mem_tt, mem_k, mem_cupti, total = row
        assert mem_cupti > 10 * (mem_tt + mem_k)
        assert total == mem_tt + mem_k + mem_cupti


def test_fig10_per_kernel_memory_is_device_independent(benchmark):
    """The paper: mem_tt and mem_K depend only on the kernel count."""
    result = run_once(benchmark, run_fig10)
    by_net = {}
    for row in result.rows:
        by_net.setdefault(row[0], set()).add((row[2], row[3], row[4]))
    for net, configs in by_net.items():
        assert len(configs) == 1, f"{net} memory varied across devices"


def test_fig10_bytes_match_record_sizes(benchmark):
    result = run_once(benchmark, run_fig10)
    for row in result.rows:
        kernels, mem_tt, mem_k = row[2], row[3], row[4]
        assert mem_tt == kernels * TIMESTAMP_BYTES
        assert mem_k == kernels * CONFIG_RECORD_BYTES


def test_fig10_caffenet_records_most_kernels(benchmark):
    """N=256 and five conv layers make CaffeNet the biggest profile."""
    result = run_once(benchmark, run_fig10)
    kernels = {row[0]: row[2] for row in result.rows}
    assert kernels["CaffeNet"] == max(kernels.values())
