"""Fig. 3: multi-stream kernel timeline of conv1 (MNIST)."""

from benchmarks.conftest import run_once
from repro.bench.fig3 import STREAMS, run_fig3


def test_fig3_kernels_overlap_across_streams(benchmark):
    result = run_once(benchmark, run_fig3)
    print("\n" + result.render())
    assert result.extra["max_concurrency"] >= 2


def test_fig3_every_stream_carries_kernels(benchmark):
    result = run_once(benchmark, run_fig3)
    assert len(result.rows) == STREAMS
    assert all(row[1] > 0 for row in result.rows)


def test_fig3_round_robin_balances_load(benchmark):
    result = run_once(benchmark, run_fig3)
    counts = [row[1] for row in result.rows]
    assert max(counts) == min(counts)   # 64 samples over 4 streams


def test_fig3_conv1_is_launch_bound(benchmark):
    """conv1's sub-launch-latency kernels cannot overlap — the mechanism
    behind the paper's Fig. 9 degradation cases."""
    result = run_once(benchmark, run_fig3)
    assert result.extra["conv1_concurrency"] == 1
