"""Ablations of GLP4NN's design choices."""

from benchmarks.conftest import run_once
from repro.bench.ablations import run_ablations


def test_ablation_launch_bound_protects_tiny_layers(benchmark):
    """Dropping Eq. 7's launch-pipeline bound over-parallelizes the tiny
    Siamese conv1 (many more streams for no gain or a loss)."""
    result = run_once(benchmark, run_ablations)
    print("\n" + result.render())
    tiny = next(r for r in result.rows if "Siamese" in r[0])
    with_bound_streams, without_bound_streams = tiny[2], tiny[4]
    assert without_bound_streams > with_bound_streams
    assert tiny[3] <= tiny[1] + 0.02   # no-bound never beats the bound here


def test_ablation_model_at_least_matches_greedy(benchmark):
    result = run_once(benchmark, run_ablations)
    for row in result.rows:
        model_speedup, greedy_speedup = row[1], row[5]
        assert model_speedup >= greedy_speedup - 0.05


def test_ablation_model_close_to_max_streams_without_the_cost(benchmark):
    """The model's small pools achieve most of what max streams does."""
    result = run_once(benchmark, run_ablations)
    for row in result.rows:
        model_speedup, max_streams_speedup = row[1], row[7]
        assert model_speedup >= 0.9 * max_streams_speedup
