"""Ablation: the two analyzer implementations."""

from benchmarks.conftest import run_once
from repro.bench.analyzer_comparison import run_analyzer_comparison


def test_both_analyzers_competitive(benchmark):
    """Neither analyzer collapses anywhere; each has a regime it wins.

    The predictive model sidesteps the launch-bound conv1 loss entirely
    (it picks one stream); the occupancy MILP extracts more overlap from
    saturated layers whose chains the closed-form predictor over-serializes.
    """
    result = run_once(benchmark, run_analyzer_comparison)
    print("\n" + result.render())
    for row in result.rows:
        occupancy, predictive = row[1], row[3]
        assert predictive >= 0.6 * occupancy
        assert occupancy >= 0.6 * predictive
        assert min(occupancy, predictive) >= 0.95  # never a real regression


def test_predictive_avoids_conv1_degradation(benchmark):
    result = run_once(benchmark, run_analyzer_comparison)
    conv1 = next(r for r in result.rows if "Siamese/conv1" == r[0])
    assert conv1[3] >= 0.999    # exactly the naive time: no loss


def test_predictive_leaner_on_launch_bound_layers(benchmark):
    result = run_once(benchmark, run_analyzer_comparison)
    conv1 = next(r for r in result.rows if "Siamese/conv1" == r[0])
    assert conv1[4] <= conv1[2]   # predictive pool <= occupancy pool
