"""Certified sync-elision: the BENCH_10 acceptance bar.

The elider must actually fire (at least one plan per inception unit
loses waits), a minimized run must never be slower than its original,
and the committed BENCH_10.json must regenerate exactly.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.sync_elision import UNITS, run_sync_elision_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _by_unit(result):
    plans = {}
    for row in result.extra["plans"]:
        plans.setdefault(row["unit"], []).append(row)
    return plans


def test_elider_fires_on_every_unit(benchmark):
    result = run_once(benchmark, run_sync_elision_bench)
    print("\n" + result.render())
    for unit, rows in _by_unit(result).items():
        assert any(r["waits_removed"] > 0 for r in rows), unit


def test_minimized_never_slower(benchmark):
    result = run_once(benchmark, run_sync_elision_bench)
    for row in result.extra["plans"]:
        if row["eager_min_us"] is not None:
            assert row["eager_min_us"] <= row["eager_us"], row
        if row["graph_min_us"] is not None:
            assert row["graph_min_us"] <= row["graph_us"], row


def test_removed_waits_bounded_by_waits(benchmark):
    result = run_once(benchmark, run_sync_elision_bench)
    for row in result.extra["plans"]:
        assert 0 <= row["waits_removed"] <= row["waits"], row


def test_committed_bench_10_matches_fresh_run(benchmark):
    """BENCH_10.json is fully simulated, hence exactly regenerable."""
    result = run_once(benchmark, run_sync_elision_bench)
    committed = json.loads(
        (ROOT / "BENCH_10.json").read_text(encoding="utf-8"))
    assert committed["units"] == list(UNITS)
    assert committed["plans"] == result.extra["plans"]
