"""Table 1: architecture feature table."""

from benchmarks.conftest import run_once
from repro.bench.table1 import run_table1


def test_table1_architecture_features(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n" + result.render())
    # exact reproduction of the paper's concurrency column
    assert result.column("Max Concurrent Kernels") == [1, 16, 32, 16, 128, 128]
    streams = result.column("CUDA Streams")
    assert streams[0] == "no" and all(s == "yes" for s in streams[1:])
