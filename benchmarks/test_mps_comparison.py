"""GLP4NN vs multi-threaded dispatch (the CPU-thread trade-off)."""

from benchmarks.conftest import run_once
from repro.bench.mps_comparison import THREAD_COUNTS, run_mps_comparison


def test_glp4nn_uses_one_host_thread(benchmark):
    result = run_once(benchmark, run_mps_comparison)
    print("\n" + result.render())
    for row in result.rows:
        assert row[2] == 1


def test_thread_dispatch_pays_contention(benchmark):
    """Per-launch driver contention means k threads never scale ideally."""
    result = run_once(benchmark, run_mps_comparison)
    for row in result.rows:
        glp = row[1]
        eight_thread = row[3 + 2 * THREAD_COUNTS.index(8)]
        # 8 threads never buy 8x over GLP4NN
        assert eight_thread < 8 * max(glp, 0.9)


def test_glp4nn_competitive_on_compute_bound_layers(benchmark):
    """Where kernels are long enough to overlap from one pipeline, the
    stream pool matches low thread counts without the CPU cost."""
    result = run_once(benchmark, run_mps_comparison)
    heavy = next(r for r in result.rows if "CaffeNet" in r[0])
    two_thread = heavy[3 + 2 * THREAD_COUNTS.index(2)]
    assert heavy[1] >= two_thread
