"""Fig. 8: stream-pool sizes chosen by the analytical model."""

from benchmarks.conftest import run_once
from repro.bench.fig8 import run_fig8
from repro.gpusim.device import PAPER_DEVICES, get_device


def test_fig8_pool_sizes_within_device_limits(benchmark):
    result = run_once(benchmark, run_fig8)
    print("\n" + result.render())
    for row in result.rows:
        for device, c_out in zip(PAPER_DEVICES, row[2:]):
            assert 1 <= c_out <= get_device(device).max_concurrent_kernels


def test_fig8_configuration_is_device_dependent(benchmark):
    result = run_once(benchmark, run_fig8)
    varied = sum(1 for row in result.rows if len(set(row[2:])) > 1)
    assert varied >= len(result.rows) // 3


def test_fig8_configuration_is_layer_dependent(benchmark):
    result = run_once(benchmark, run_fig8)
    for i, device in enumerate(PAPER_DEVICES):
        col = [row[2 + i] for row in result.rows]
        assert len(set(col)) > 1, f"constant configuration on {device}"


def test_fig8_covers_all_table5_layers(benchmark):
    result = run_once(benchmark, run_fig8)
    assert len(result.rows) == 3 + 4 + 5 + 6
