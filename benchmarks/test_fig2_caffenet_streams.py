"""Fig. 2: CaffeNet conv-layer speedup vs stream count on P100."""

from benchmarks.conftest import run_once
from repro.bench.fig2 import STREAM_COUNTS, run_fig2


def test_fig2_speedup_grows_then_plateaus(benchmark):
    result = run_once(benchmark, run_fig2)
    print("\n" + result.render())
    for row in result.rows:
        speedups = row[2:]
        # multi-stream never collapses performance
        assert min(speedups) > 0.85
        # the best configuration is a real improvement on most layers
        assert max(speedups) >= 1.0


def test_fig2_majority_of_layers_accelerate(benchmark):
    result = run_once(benchmark, run_fig2)
    best = [max(row[2:]) for row in result.rows]
    assert sum(1 for b in best if b > 1.3) >= 3


def test_fig2_peak_speedup_in_paper_range(benchmark):
    """The paper's per-layer speedups reach roughly 4x."""
    result = run_once(benchmark, run_fig2)
    peak = max(max(row[2:]) for row in result.rows)
    assert 2.5 <= peak <= 6.0


def test_fig2_saturation_shape(benchmark):
    """Speedup at 32 streams is not much beyond the 8-stream point —
    the plateau the paper motivates the analytical model with."""
    result = run_once(benchmark, run_fig2)
    i8 = 2 + STREAM_COUNTS.index(8)
    i32 = 2 + STREAM_COUNTS.index(32)
    for row in result.rows:
        assert row[i32] <= row[i8] * 1.35
