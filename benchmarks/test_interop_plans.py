"""Inter-operator stream plans: the BENCH_8 acceptance bar.

The opara plan must beat *both* the layer-serial floor and the naive
round-robin spread wall-clock on every inception unit, eagerly and as a
graph launch, with every executed plan certified.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.interop_plans import UNITS, run_interop_plans_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _by_unit(result):
    plans = {}
    for row in result.extra["plans"]:
        plans.setdefault(row["unit"], {})[row["policy"]] = row
    return plans


def test_opara_beats_both_baselines(benchmark):
    result = run_once(benchmark, run_interop_plans_bench)
    print("\n" + result.render())
    for unit, rows in _by_unit(result).items():
        opara = rows["opara"]
        assert opara["eager_us"] < rows["layer-serial"]["eager_us"], unit
        assert opara["eager_us"] < rows["round-robin"]["eager_us"], unit
        assert opara["graph_us"] < rows["layer-serial"]["graph_us"], unit
        assert opara["graph_us"] < rows["round-robin"]["graph_us"], unit


def test_every_plan_certified(benchmark):
    result = run_once(benchmark, run_interop_plans_bench)
    assert all(row["certified"] for row in result.extra["plans"])


def test_opara_syncs_less_than_round_robin(benchmark):
    result = run_once(benchmark, run_interop_plans_bench)
    for unit, rows in _by_unit(result).items():
        assert (rows["opara"]["sync_ops"]
                < rows["round-robin"]["sync_ops"]), unit


def test_committed_bench_8_matches_fresh_run(benchmark):
    """BENCH_8.json is fully simulated, hence exactly regenerable."""
    result = run_once(benchmark, run_interop_plans_bench)
    committed = json.loads(
        (ROOT / "BENCH_8.json").read_text(encoding="utf-8"))
    assert committed["units"] == list(UNITS)
    assert committed["plans"] == result.extra["plans"]
